//! Training-set construction for the **novel-item** variant of TS-PPR
//! (§4.3 of the paper: "Besides the RRC problem, TS-PPR can be used in
//! novel item recommendation as well").
//!
//! A positive is a *novel* consumption (`x_t ∉ W_{u,t-1}` and never
//! consumed before by this user); negatives are sampled uniformly from the
//! items the user has not consumed up to `t` (the classical BPR
//! assumption: observed ≻ unobserved). The pre-sample strategy bounds the
//! otherwise-enormous negative space, exactly as the paper argues.

use crate::extractor::{FeatureContext, FeaturePipeline};
use crate::sampling::TrainingSet;
use crate::train_stats::TrainStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrc_sequence::{Dataset, ItemId, WindowState};

/// Parameters of novel-item training-set construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NovelSamplingConfig {
    /// Window capacity `|W|` (features still need the live window).
    pub window: usize,
    /// Negatives per positive.
    pub negatives_per_positive: usize,
    /// Seed for negative sampling.
    pub seed: u64,
    /// Cap on rejection-sampling attempts per negative before giving up
    /// (only relevant when a user has consumed almost the whole catalogue).
    pub max_attempts: usize,
}

impl Default for NovelSamplingConfig {
    fn default() -> Self {
        NovelSamplingConfig {
            window: 100,
            negatives_per_positive: 10,
            seed: 0x1107e1,
            max_attempts: 64,
        }
    }
}

/// Build a [`TrainingSet`] whose positives are first-time consumptions and
/// whose negatives are unconsumed items.
pub fn build_novel_training_set(
    train: &Dataset,
    stats: &TrainStats,
    pipeline: &FeaturePipeline,
    cfg: &NovelSamplingConfig,
) -> TrainingSet {
    assert!(!pipeline.is_empty(), "feature pipeline must be non-empty");
    let num_items = train.num_items();
    let mut set = TrainingSet::empty(pipeline.len(), train.num_users());
    let mut fbuf = Vec::with_capacity(pipeline.len());

    for (user, seq) in train.iter() {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (user.0 as u64).wrapping_mul(0x51ED));
        let mut window = WindowState::new(cfg.window);
        let mut seen = vec![false; num_items];
        for (t_idx, &item) in seq.events().iter().enumerate() {
            let is_first_time = !seen[item.index()];
            if is_first_time && num_items > 1 {
                let ctx = FeatureContext {
                    window: &window,
                    stats,
                };
                pipeline.extract_into(&ctx, item, &mut fbuf);
                let f_pos = set.push_feature_raw(&fbuf);
                let mut negs: Vec<(ItemId, u32)> = Vec::new();
                let mut used: Vec<ItemId> = Vec::new();
                for _ in 0..cfg.negatives_per_positive {
                    let mut found = None;
                    for _ in 0..cfg.max_attempts {
                        let cand = ItemId(rng.gen_range(0..num_items as u32));
                        if cand != item && !seen[cand.index()] && !used.contains(&cand) {
                            found = Some(cand);
                            break;
                        }
                    }
                    if let Some(neg) = found {
                        pipeline.extract_into(&ctx, neg, &mut fbuf);
                        let f_neg = set.push_feature_raw(&fbuf);
                        negs.push((neg, f_neg));
                        used.push(neg);
                    }
                }
                if !negs.is_empty() {
                    set.push_positive_raw(user, item, t_idx, f_pos, &negs);
                }
            }
            seen[item.index()] = true;
            window.push(item);
        }
        set.finish_user_raw(user);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::Sequence;

    fn fixture() -> (Dataset, TrainStats) {
        let d = Dataset::new(
            vec![
                Sequence::from_raw(vec![0, 1, 0, 2, 1]),
                Sequence::from_raw(vec![3, 3, 4]),
            ],
            6,
        );
        let stats = TrainStats::compute(&d, 10);
        (d, stats)
    }

    #[test]
    fn positives_are_first_time_consumptions() {
        let (d, stats) = fixture();
        let set = build_novel_training_set(
            &d,
            &stats,
            &FeaturePipeline::standard(),
            &NovelSamplingConfig {
                window: 10,
                negatives_per_positive: 3,
                seed: 1,
                max_attempts: 64,
            },
        );
        // First-time events: u0 {0@0, 1@1, 2@3}; u1 {3@0, 4@2}.
        assert_eq!(set.num_positives(), 5);
        let items: Vec<u32> = set.positives().iter().map(|p| p.item.0).collect();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn negatives_are_unconsumed_at_event_time() {
        let (d, stats) = fixture();
        let set = build_novel_training_set(
            &d,
            &stats,
            &FeaturePipeline::standard(),
            &NovelSamplingConfig {
                window: 10,
                negatives_per_positive: 4,
                seed: 2,
                max_attempts: 64,
            },
        );
        // Recompute seen-sets to validate every negative.
        for p in set.positives() {
            let seq = d.sequence(p.user);
            let seen: std::collections::HashSet<u32> =
                seq.events()[..p.t].iter().map(|i| i.0).collect();
            for n in set.negatives_of(p) {
                assert!(
                    !seen.contains(&n.item.0),
                    "negative {} was consumed",
                    n.item
                );
                assert_ne!(n.item, p.item);
            }
        }
    }

    #[test]
    fn novel_features_have_zero_dynamics() {
        let (d, stats) = fixture();
        let set = build_novel_training_set(
            &d,
            &stats,
            &FeaturePipeline::standard(),
            &NovelSamplingConfig::default(),
        );
        for p in set.positives() {
            for n in set.negatives_of(p) {
                let f = set.feature(n.f_neg);
                // Unconsumed items: recency (idx 2) and familiarity (idx 3)
                // are exactly zero.
                assert_eq!(f[2], 0.0);
                assert_eq!(f[3], 0.0);
            }
        }
    }

    #[test]
    fn deterministic() {
        let (d, stats) = fixture();
        let cfg = NovelSamplingConfig::default();
        let a = build_novel_training_set(&d, &stats, &FeaturePipeline::standard(), &cfg);
        let b = build_novel_training_set(&d, &stats, &FeaturePipeline::standard(), &cfg);
        let qa: Vec<(u32, u32)> = a.iter_quadruples().map(|q| (q.pos.0, q.neg.0)).collect();
        let qb: Vec<(u32, u32)> = b.iter_quadruples().map(|q| (q.pos.0, q.neg.0)).collect();
        assert_eq!(qa, qb);
    }

    #[test]
    fn single_item_universe_produces_nothing() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 0])], 1);
        let stats = TrainStats::compute(&d, 10);
        let set = build_novel_training_set(
            &d,
            &stats,
            &FeaturePipeline::standard(),
            &NovelSamplingConfig::default(),
        );
        assert!(set.is_empty());
    }
}
