//! The [`Feature`] trait and the standard four-feature pipeline of §4.4.

use crate::train_stats::TrainStats;
use rrc_sequence::{ItemId, WindowState};

/// Everything a feature may look at when valuing a `(u, v, t)` interaction:
/// the user's window state as of time `t` and the training-set statistics.
#[derive(Debug, Clone, Copy)]
pub struct FeatureContext<'a> {
    /// The user's window `W_{u,t-1}` (its `time()` is the current `t`).
    pub window: &'a WindowState,
    /// Static per-item statistics from the training split.
    pub stats: &'a TrainStats,
}

/// One time-sensitive behavioral feature — a component of the paper's
/// `f_{uvt}` vector. Implement this to append domain-specific features to
/// the pipeline; all features must return values in `[0, 1]` so the shared
/// regularisation scales sensibly.
pub trait Feature: Send + Sync {
    /// Short stable identifier ("IP", "IR", "RE", "DF" for the paper's
    /// four).
    fn name(&self) -> &'static str;
    /// Value of the feature for `item` in the given context.
    fn value(&self, ctx: &FeatureContext<'_>, item: ItemId) -> f64;
}

/// Item quality `q̄_v` (Eqs. 16–17) — "IP" (item popularity) in Fig. 7.
#[derive(Debug, Clone, Copy, Default)]
pub struct ItemQuality;

impl Feature for ItemQuality {
    fn name(&self) -> &'static str {
        "IP"
    }
    fn value(&self, ctx: &FeatureContext<'_>, item: ItemId) -> f64 {
        ctx.stats.quality(item)
    }
}

/// Item reconsumption ratio `r_v` (Eq. 18) — "IR" in Fig. 7.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReconsumptionRatio;

impl Feature for ReconsumptionRatio {
    fn name(&self) -> &'static str {
        "IR"
    }
    fn value(&self, ctx: &FeatureContext<'_>, item: ItemId) -> f64 {
        ctx.stats.recon_ratio(item)
    }
}

/// Which decay shape the recency feature uses. The paper defaults to the
/// hyperbolic form (found superior in its ref. [14]) and offers the
/// exponential as the alternative of Eq. 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecencyKind {
    /// `c_vt = 1 / (t − l_ut(v))` (Eq. 19).
    #[default]
    Hyperbolic,
    /// `c_vt = e^{−(t − l_ut(v))}` (Eq. 20).
    Exponential,
}

/// Recency `c_vt` (Eqs. 19–20) — "RE" in Fig. 7. Items never consumed get
/// recency 0 (infinite gap).
#[derive(Debug, Clone, Copy, Default)]
pub struct Recency {
    /// Decay shape.
    pub kind: RecencyKind,
}

impl Recency {
    /// Hyperbolic recency (the paper's default).
    pub fn hyperbolic() -> Self {
        Recency {
            kind: RecencyKind::Hyperbolic,
        }
    }

    /// Exponential recency (Eq. 20).
    pub fn exponential() -> Self {
        Recency {
            kind: RecencyKind::Exponential,
        }
    }
}

impl Feature for Recency {
    fn name(&self) -> &'static str {
        "RE"
    }
    fn value(&self, ctx: &FeatureContext<'_>, item: ItemId) -> f64 {
        match ctx.window.last_seen(item) {
            None => 0.0,
            Some(last) => {
                let gap = (ctx.window.time() - last) as f64; // >= 1
                match self.kind {
                    RecencyKind::Hyperbolic => 1.0 / gap,
                    RecencyKind::Exponential => (-gap).exp(),
                }
            }
        }
    }
}

/// Dynamic familiarity `m_vt` (Eq. 21) — "DF" in Fig. 7.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicFamiliarity;

impl Feature for DynamicFamiliarity {
    fn name(&self) -> &'static str {
        "DF"
    }
    fn value(&self, ctx: &FeatureContext<'_>, item: ItemId) -> f64 {
        ctx.window.familiarity(item)
    }
}

/// An ordered collection of features: the concrete realisation of the
/// paper's observable feature vector `f_{uvt}` (dimension `F = len()`).
pub struct FeaturePipeline {
    features: Vec<Box<dyn Feature>>,
}

impl FeaturePipeline {
    /// An empty pipeline; push features with [`FeaturePipeline::push`].
    pub fn empty() -> Self {
        FeaturePipeline { features: vec![] }
    }

    /// The paper's standard four-feature vector
    /// `f = {q̄_v, r_v, c_vt, m_vt}ᵀ` with hyperbolic recency.
    pub fn standard() -> Self {
        Self::standard_with_recency(RecencyKind::Hyperbolic)
    }

    /// The standard vector with a chosen recency shape.
    pub fn standard_with_recency(kind: RecencyKind) -> Self {
        let mut p = Self::empty();
        p.push(ItemQuality);
        p.push(ReconsumptionRatio);
        p.push(Recency { kind });
        p.push(DynamicFamiliarity);
        p
    }

    /// Append a feature (builder style also available via [`Self::with`]).
    pub fn push<F: Feature + 'static>(&mut self, feature: F) {
        self.features.push(Box::new(feature));
    }

    /// Builder-style [`Self::push`].
    pub fn with<F: Feature + 'static>(mut self, feature: F) -> Self {
        self.push(feature);
        self
    }

    /// A copy of this pipeline with the named feature removed — the Fig. 7
    /// ablation ("-IP", "-IR", "-RE", "-DF"). Unknown names are a no-op.
    pub fn without(&self, name: &str) -> Self
    where
        Self: Sized,
    {
        // Features are stateless markers, so rebuilding by name is enough.
        let mut p = Self::empty();
        for f in &self.features {
            if f.name() != name {
                p.features.push(rebuild(f.as_ref()));
            }
        }
        p
    }

    /// Feature dimension `F`.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True iff no features are registered.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The feature names, in vector order.
    pub fn names(&self) -> Vec<&'static str> {
        self.features.iter().map(|f| f.name()).collect()
    }

    /// Extract the full vector for `item` into `out` (cleared first).
    pub fn extract_into(&self, ctx: &FeatureContext<'_>, item: ItemId, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.features.iter().map(|f| f.value(ctx, item)));
    }

    /// Extract the full vector for `item` as a fresh allocation.
    pub fn extract(&self, ctx: &FeatureContext<'_>, item: ItemId) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.features.len());
        self.extract_into(ctx, item, &mut out);
        out
    }
}

impl std::fmt::Debug for FeaturePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeaturePipeline")
            .field("features", &self.names())
            .finish()
    }
}

/// Recreate a known feature by name. The standard features carry no state,
/// so this lossless rebuild keeps `without` simple; custom features fall
/// back to a panic with a clear message (ablation of custom features should
/// construct the pipeline explicitly instead).
fn rebuild(f: &dyn Feature) -> Box<dyn Feature> {
    match f.name() {
        "IP" => Box::new(ItemQuality),
        "IR" => Box::new(ReconsumptionRatio),
        "RE" => Box::new(Recency::hyperbolic()),
        "DF" => Box::new(DynamicFamiliarity),
        other => panic!(
            "FeaturePipeline::without cannot rebuild custom feature {other:?}; \
             construct the ablated pipeline explicitly"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::{Dataset, Sequence};

    fn fixture() -> (TrainStats, WindowState) {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 0, 2, 0, 1])], 4);
        let stats = TrainStats::compute(&d, 10);
        let window = WindowState::warmed(10, d.sequence(rrc_sequence::UserId(0)).events());
        (stats, window)
    }

    #[test]
    fn standard_pipeline_shape() {
        let p = FeaturePipeline::standard();
        assert_eq!(p.len(), 4);
        assert_eq!(p.names(), vec!["IP", "IR", "RE", "DF"]);
        assert!(!p.is_empty());
    }

    #[test]
    fn standard_values_in_unit_interval() {
        let (stats, window) = fixture();
        let ctx = FeatureContext {
            window: &window,
            stats: &stats,
        };
        let p = FeaturePipeline::standard();
        for raw in 0..4u32 {
            let v = p.extract(&ctx, ItemId(raw));
            assert_eq!(v.len(), 4);
            for (f, name) in v.iter().zip(p.names()) {
                assert!((0.0..=1.0).contains(f), "{name}={f} for item {raw}");
            }
        }
    }

    #[test]
    fn recency_values_match_definitions() {
        let (stats, window) = fixture();
        let ctx = FeatureContext {
            window: &window,
            stats: &stats,
        };
        // History: 0 1 0 2 0 1 (t = 6). Item 1 last seen at step 5 → gap 1.
        assert_eq!(Recency::hyperbolic().value(&ctx, ItemId(1)), 1.0);
        // Item 0 last seen at step 4 → gap 2.
        assert_eq!(Recency::hyperbolic().value(&ctx, ItemId(0)), 0.5);
        assert!((Recency::exponential().value(&ctx, ItemId(0)) - (-2.0f64).exp()).abs() < 1e-12);
        // Never consumed → 0 under both shapes.
        assert_eq!(Recency::hyperbolic().value(&ctx, ItemId(3)), 0.0);
        assert_eq!(Recency::exponential().value(&ctx, ItemId(3)), 0.0);
    }

    #[test]
    fn familiarity_matches_window() {
        let (stats, window) = fixture();
        let ctx = FeatureContext {
            window: &window,
            stats: &stats,
        };
        // 0 appears 3 times in 6 events.
        assert_eq!(DynamicFamiliarity.value(&ctx, ItemId(0)), 0.5);
        assert_eq!(DynamicFamiliarity.value(&ctx, ItemId(3)), 0.0);
    }

    #[test]
    fn without_removes_exactly_one() {
        let p = FeaturePipeline::standard();
        for name in ["IP", "IR", "RE", "DF"] {
            let q = p.without(name);
            assert_eq!(q.len(), 3);
            assert!(!q.names().contains(&name));
        }
        // Unknown name: no-op.
        assert_eq!(p.without("XX").len(), 4);
    }

    #[test]
    fn custom_feature_appends() {
        struct Constant;
        impl Feature for Constant {
            fn name(&self) -> &'static str {
                "CONST"
            }
            fn value(&self, _: &FeatureContext<'_>, _: ItemId) -> f64 {
                0.25
            }
        }
        let p = FeaturePipeline::standard().with(Constant);
        assert_eq!(p.len(), 5);
        let (stats, window) = fixture();
        let ctx = FeatureContext {
            window: &window,
            stats: &stats,
        };
        assert_eq!(p.extract(&ctx, ItemId(0))[4], 0.25);
    }

    #[test]
    fn extract_into_reuses_buffer() {
        let (stats, window) = fixture();
        let ctx = FeatureContext {
            window: &window,
            stats: &stats,
        };
        let p = FeaturePipeline::standard();
        let mut buf = vec![99.0; 10];
        p.extract_into(&ctx, ItemId(0), &mut buf);
        assert_eq!(buf.len(), 4);
    }
}
