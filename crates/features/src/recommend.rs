//! The [`Recommender`] trait implemented by every model in the workspace.

use crate::train_stats::TrainStats;
use rrc_sequence::{ItemId, UserId, WindowState};

/// The context available when a recommendation is requested: which user,
/// their window state as of the current time, the training statistics, and
/// the minimum gap Ω.
#[derive(Debug, Clone, Copy)]
pub struct RecContext<'a> {
    /// The active user.
    pub user: UserId,
    /// The user's window `W_{u,t-1}`; `window.time()` is the current `t`.
    pub window: &'a WindowState,
    /// Static statistics from the training split.
    pub stats: &'a TrainStats,
    /// Minimum gap Ω: items consumed within the last Ω steps are never
    /// recommended (§5.1).
    pub omega: usize,
}

impl<'a> RecContext<'a> {
    /// The eligible candidate set for this request (in-window, at least Ω
    /// steps old), sorted by item id.
    pub fn candidates(&self) -> Vec<ItemId> {
        self.window.eligible_candidates(self.omega)
    }
}

/// A repeat-consumption recommender.
///
/// Implementations provide a scoring function; the default `recommend`
/// ranks the eligible candidates by score (descending), breaking ties by
/// item id for determinism, and returns the top `n`.
pub trait Recommender {
    /// Human-readable name used in experiment reports.
    fn name(&self) -> &str;

    /// Preference score of `item` for the context's user at the current
    /// time — the model's `r_uvt`. Higher is better. Only called for items
    /// in the eligible candidate set.
    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64;

    /// Top-`n` recommendation list over the eligible candidates.
    fn recommend(&self, ctx: &RecContext<'_>, n: usize) -> Vec<ItemId> {
        let mut scored: Vec<(f64, ItemId)> = ctx
            .candidates()
            .into_iter()
            .map(|v| (self.score(ctx, v), v))
            .collect();
        top_n(&mut scored, n)
    }
}

/// Select the `n` highest-scoring items, ties broken by ascending item id.
/// Exposed for recommenders that build their own scored lists.
pub fn top_n(scored: &mut [(f64, ItemId)], n: usize) -> Vec<ItemId> {
    scored.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.cmp(&b.1))
    });
    scored.iter().take(n).map(|&(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::{Dataset, Sequence};

    struct ById;
    impl Recommender for ById {
        fn name(&self) -> &str {
            "by-id"
        }
        fn score(&self, _: &RecContext<'_>, item: ItemId) -> f64 {
            item.0 as f64
        }
    }

    fn fixture() -> (TrainStats, WindowState) {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 2, 3, 4])], 8);
        let stats = TrainStats::compute(&d, 10);
        // t = 8 after warm-up; items 0..=4 seen at steps 0..=4.
        let window = WindowState::warmed(10, &[0, 1, 2, 3, 4, 5, 6, 7].map(ItemId));
        (stats, window)
    }

    #[test]
    fn candidates_respect_omega() {
        let (stats, window) = fixture();
        let ctx = RecContext {
            user: UserId(0),
            window: &window,
            stats: &stats,
            omega: 3,
        };
        // t = 8, Ω = 3 → steps >= 5 excluded: items 5, 6, 7 out.
        assert_eq!(
            ctx.candidates(),
            vec![ItemId(0), ItemId(1), ItemId(2), ItemId(3), ItemId(4)]
        );
    }

    #[test]
    fn default_recommend_ranks_by_score() {
        let (stats, window) = fixture();
        let ctx = RecContext {
            user: UserId(0),
            window: &window,
            stats: &stats,
            omega: 3,
        };
        let top = ById.recommend(&ctx, 3);
        assert_eq!(top, vec![ItemId(4), ItemId(3), ItemId(2)]);
        // Asking for more than exist returns all candidates.
        assert_eq!(ById.recommend(&ctx, 100).len(), 5);
    }

    #[test]
    fn top_n_breaks_ties_by_item_id() {
        let mut scored = vec![
            (1.0, ItemId(9)),
            (1.0, ItemId(2)),
            (2.0, ItemId(5)),
            (1.0, ItemId(4)),
        ];
        assert_eq!(top_n(&mut scored, 3), vec![ItemId(5), ItemId(2), ItemId(4)]);
    }

    #[test]
    fn top_n_handles_nan_scores_without_panicking() {
        let mut scored = vec![(f64::NAN, ItemId(1)), (1.0, ItemId(2))];
        let out = top_n(&mut scored, 2);
        assert_eq!(out.len(), 2);
    }
}
