//! Feature-rank distributions of reconsumed items — the analysis behind
//! Fig. 4 of the paper.
//!
//! For every eligible repeat event, each feature ranks the window's
//! eligible candidates; the rank the *actually reconsumed* item achieves is
//! tallied. A steeply-decaying histogram means the feature is
//! discriminative (people reconsume what it ranks highly); a flat histogram
//! means it is not. The paper uses this to argue its four features are
//! representative, and to explain why TS-PPR's margin is larger on Gowalla
//! (steeper curves) than Last.fm.

use crate::extractor::{FeatureContext, FeaturePipeline};
use crate::train_stats::TrainStats;
use rrc_sequence::{classify, ConsumptionKind, Dataset, WindowState};

/// Histogram of the reconsumed item's rank under one feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankHistogram {
    /// Feature name ("IP", "IR", "RE", "DF", ...).
    pub feature: String,
    /// `counts[r]` = number of eligible repeats whose item ranked `r + 1`
    /// among the window's eligible candidates under this feature.
    pub counts: Vec<u64>,
}

impl RankHistogram {
    /// Total tallied events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of events whose item ranked in the top `k`.
    pub fn top_k_fraction(&self, k: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let top: u64 = self.counts.iter().take(k).sum();
        top as f64 / total as f64
    }

    /// A crude steepness measure: mean rank (1-based) of the reconsumed
    /// item. Lower = steeper = more discriminative.
    pub fn mean_rank(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(r, &c)| (r + 1) as f64 * c as f64)
            .sum();
        weighted / total as f64
    }
}

/// Compute one histogram per pipeline feature by scanning every user's
/// sequence (Fig. 4's setting: `|W| = 100`, `Ω = 10` on the full data).
///
/// For each eligible repeat of item `v` at time `t`, the eligible
/// candidates of `W_{u,t-1}` are ranked by each feature value (descending,
/// ties broken by item id) and the rank of `v` is tallied into that
/// feature's histogram.
pub fn rank_distributions(
    data: &Dataset,
    stats: &TrainStats,
    pipeline: &FeaturePipeline,
    window_capacity: usize,
    omega: usize,
) -> Vec<RankHistogram> {
    let names = pipeline.names();
    let mut histograms: Vec<RankHistogram> = names
        .iter()
        .map(|n| RankHistogram {
            feature: n.to_string(),
            counts: vec![0; window_capacity],
        })
        .collect();

    let mut fbuf = Vec::with_capacity(pipeline.len());
    for (_, seq) in data.iter() {
        let mut win = WindowState::new(window_capacity);
        for &item in seq.events() {
            if classify(&win, item, omega) == ConsumptionKind::EligibleRepeat {
                let candidates = win.eligible_candidates(omega);
                let ctx = FeatureContext {
                    window: &win,
                    stats,
                };
                // Value every candidate under every feature in one pass.
                let mut values: Vec<Vec<f64>> = Vec::with_capacity(candidates.len());
                for &c in &candidates {
                    pipeline.extract_into(&ctx, c, &mut fbuf);
                    values.push(fbuf.clone());
                }
                let target = candidates
                    .iter()
                    .position(|&c| c == item)
                    .expect("eligible repeat is among candidates");
                for (fi, hist) in histograms.iter_mut().enumerate() {
                    // Rank = 1 + number of candidates strictly better, or
                    // equal-valued with a smaller item id (the tie rule).
                    let tv = values[target][fi];
                    let mut rank = 0usize;
                    for (ci, v) in values.iter().enumerate() {
                        if ci == target {
                            continue;
                        }
                        if v[fi] > tv || (v[fi] == tv && candidates[ci] < item) {
                            rank += 1;
                        }
                    }
                    if rank < hist.counts.len() {
                        hist.counts[rank] += 1;
                    }
                }
            }
            win.push(item);
        }
    }
    histograms
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::Sequence;

    #[test]
    fn histogram_totals_equal_eligible_repeats() {
        // "1 2 3 1 2 3 1" with W=10, Ω=2: repeats at t=3,4,5,6 all have gap
        // 3 > 2 → 4 eligible repeats.
        let d = Dataset::new(vec![Sequence::from_raw(vec![1, 2, 3, 1, 2, 3, 1])], 4);
        let stats = TrainStats::compute(&d, 10);
        let p = FeaturePipeline::standard();
        let hists = rank_distributions(&d, &stats, &p, 10, 2);
        assert_eq!(hists.len(), 4);
        for h in &hists {
            assert_eq!(h.total(), 4, "feature {}", h.feature);
        }
    }

    #[test]
    fn recency_ranks_cyclic_reconsumption_first() {
        // In a strict cycle "1 2 3 1 2 3 ...", the next reconsumed item is
        // always the *oldest* of the three — so under recency (which favours
        // the newest) it always ranks LAST, and under a hypothetical
        // "staleness" it would rank first. Check the recency histogram puts
        // everything at the worst rank.
        let d = Dataset::new(vec![Sequence::from_raw(vec![1, 2, 3, 1, 2, 3, 1, 2, 3])], 4);
        let stats = TrainStats::compute(&d, 10);
        let p = FeaturePipeline::standard();
        let hists = rank_distributions(&d, &stats, &p, 10, 1);
        let re = hists.iter().find(|h| h.feature == "RE").unwrap();
        // Candidates per event: ≤ 3 (minus Ω-recent ones); reconsumed item
        // is the least recent → never rank 1 once there are ≥ 2 candidates.
        assert_eq!(re.counts[0], 0, "recency histogram: {:?}", re.counts);
    }

    #[test]
    fn familiarity_ranks_dominant_item_first() {
        // Item 1 dominates the window; it is also what gets reconsumed.
        let d = Dataset::new(
            vec![Sequence::from_raw(vec![1, 1, 1, 2, 3, 1, 2, 1, 3, 1])],
            4,
        );
        let stats = TrainStats::compute(&d, 10);
        let p = FeaturePipeline::standard();
        let hists = rank_distributions(&d, &stats, &p, 10, 1);
        let df = hists.iter().find(|h| h.feature == "DF").unwrap();
        // Most mass at rank 1.
        assert!(
            df.counts[0] >= df.counts.iter().skip(1).sum::<u64>(),
            "familiarity histogram: {:?}",
            df.counts
        );
    }

    #[test]
    fn helpers_compute_sane_values() {
        let h = RankHistogram {
            feature: "X".into(),
            counts: vec![6, 3, 1],
        };
        assert_eq!(h.total(), 10);
        assert!((h.top_k_fraction(1) - 0.6).abs() < 1e-12);
        assert!((h.top_k_fraction(2) - 0.9).abs() < 1e-12);
        assert!((h.mean_rank() - 1.5).abs() < 1e-12);
        let empty = RankHistogram {
            feature: "Y".into(),
            counts: vec![0, 0],
        };
        assert_eq!(empty.top_k_fraction(1), 0.0);
        assert_eq!(empty.mean_rank(), 0.0);
    }
}
