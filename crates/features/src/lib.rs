//! Behavioral feature extraction and training-set construction for
//! repeat-consumption models (§4.4 and §4.2.2 of the paper).
//!
//! The paper represents each temporal user–item interaction by an
//! `F`-dimensional observable feature vector `f_{uvt}`; with the four
//! generic, domain-independent features:
//!
//! | feature | kind | definition |
//! |---|---|---|
//! | item quality `q̄_v` | static | min–max-normalised `ln(1 + n_v)` (Eqs. 16–17) |
//! | item reconsumption ratio `r_v` | static | fraction of `v`'s observations that are repeats (Eq. 18) |
//! | recency `c_vt` | dynamic | `1/(t − l_ut(v))`, or `e^{−(t − l_ut(v))}` (Eqs. 19–20) |
//! | dynamic familiarity `m_vt` | dynamic | `count(v ∈ W_ut) / |W_ut|` (Eq. 21) |
//!
//! This crate provides:
//!
//! * [`TrainStats`] — the static per-item statistics, computed once over the
//!   training split;
//! * the [`Feature`] trait and [`FeaturePipeline`] — an extensible feature
//!   registry whose [`FeaturePipeline::standard`] instance is the paper's
//!   `f = {q̄_v, r_v, c_vt, m_vt}ᵀ`, with [`FeaturePipeline::without`] for
//!   the Fig. 7 ablations and room for domain-specific additions;
//! * [`Recommender`] / [`RecContext`] — the trait every model in the
//!   workspace implements;
//! * [`TrainingSet`] — the pre-sampled quadruples `(u, v_i, v_j, t)` with
//!   their pre-extracted feature vectors (the paper's pre-sample strategy
//!   with `S` negatives per positive);
//! * [`distribution`] — the feature-rank histograms of Fig. 4.

pub mod distribution;
pub mod extractor;
pub mod novel;
pub mod recommend;
pub mod sampling;
pub mod train_stats;

pub use distribution::{rank_distributions, RankHistogram};
pub use extractor::{
    DynamicFamiliarity, Feature, FeatureContext, FeaturePipeline, ItemQuality, Recency,
    RecencyKind, ReconsumptionRatio,
};
pub use novel::{build_novel_training_set, NovelSamplingConfig};
pub use recommend::{RecContext, Recommender};
pub use sampling::{Quadruple, SamplingConfig, TrainingSet};
pub use train_stats::TrainStats;
