//! The **Pop** baseline: rank by global item popularity `ln(1 + n_v)`
//! (§5.2; item popularity was found to be a key factor of repeat
//! consumption in Anderson et al. 2014).

use rrc_features::{RecContext, Recommender};
use rrc_sequence::ItemId;

/// Ranks eligible candidates by their training-set log-frequency. Stateless
/// — the popularity table lives in the shared [`rrc_features::TrainStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PopRecommender;

impl Recommender for PopRecommender {
    fn name(&self) -> &str {
        "Pop"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        ctx.stats.log_popularity(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_features::TrainStats;
    use rrc_sequence::{Dataset, Sequence, UserId, WindowState};

    #[test]
    fn ranks_by_training_frequency() {
        // Item 0 seen 3x, item 1 2x, item 2 1x in training.
        let train = Dataset::new(vec![Sequence::from_raw(vec![0, 0, 0, 1, 1, 2])], 4);
        let stats = TrainStats::compute(&train, 10);
        // Window far in the "future" containing all three.
        let w = WindowState::warmed(10, &[2, 1, 0].map(ItemId));
        // Advance time so everything is at least omega old.
        let mut w2 = w.clone();
        for raw in [3u32, 3, 3] {
            w2.push(ItemId(raw));
        }
        let ctx = RecContext {
            user: UserId(0),
            window: &w2,
            stats: &stats,
            omega: 2,
        };
        let rec = PopRecommender.recommend(&ctx, 3);
        assert_eq!(rec, vec![ItemId(0), ItemId(1), ItemId(2)]);
        assert_eq!(PopRecommender.name(), "Pop");
    }

    #[test]
    fn unseen_items_score_zero() {
        let train = Dataset::new(vec![Sequence::from_raw(vec![0])], 4);
        let stats = TrainStats::compute(&train, 10);
        let w = WindowState::warmed(10, &[3].map(ItemId));
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 1,
        };
        assert_eq!(PopRecommender.score(&ctx, ItemId(3)), 0.0);
    }
}
