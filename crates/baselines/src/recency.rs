//! The **Recency** baseline: rank by exponential recency `e^{−Δt_uv}`
//! where `Δt_uv` is the gap since the user's last consumption of the item
//! (§5.2).

use rrc_features::{RecContext, Recommender};
use rrc_sequence::ItemId;

/// Ranks eligible candidates by `e^{−Δt}` — most-recently-consumed first.
///
/// Note that with the paper's Ω-gap exclusion the freshest Ω steps are
/// never candidates, which is exactly why this baseline loses to Pop in the
/// paper's setting (§5.3): the strongest part of the recency signal is cut
/// off.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecencyRecommender;

impl Recommender for RecencyRecommender {
    fn name(&self) -> &str {
        "Recency"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        match ctx.window.last_seen(item) {
            None => 0.0,
            Some(last) => {
                let gap = (ctx.window.time() - last) as f64;
                (-gap).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_features::TrainStats;
    use rrc_sequence::{Dataset, Sequence, UserId, WindowState};

    #[test]
    fn fresher_items_rank_higher() {
        let train = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 2])], 8);
        let stats = TrainStats::compute(&train, 10);
        // Push 0 (oldest), then 1, then 2, then filler to satisfy Ω.
        let w = WindowState::warmed(10, &[0, 1, 2, 7, 7, 7].map(ItemId));
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 2,
        };
        let rec = RecencyRecommender.recommend(&ctx, 3);
        assert_eq!(rec, vec![ItemId(2), ItemId(1), ItemId(0)]);
        assert_eq!(RecencyRecommender.name(), "Recency");
    }

    #[test]
    fn score_matches_exponential_decay() {
        let train = Dataset::new(vec![Sequence::from_raw(vec![0])], 4);
        let stats = TrainStats::compute(&train, 10);
        let w = WindowState::warmed(10, &[0, 1, 1, 1].map(ItemId)); // 0 at step 0, t=4
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 1,
        };
        let s = RecencyRecommender.score(&ctx, ItemId(0));
        assert!((s - (-4.0f64).exp()).abs() < 1e-15);
        assert_eq!(RecencyRecommender.score(&ctx, ItemId(3)), 0.0);
    }
}
