//! A personalized interest-forgetting Markov recommender — the paper's
//! reference [14] (Chen, Wang & Wang, AAAI 2015), whose finding that
//! *hyperbolic* decay models interest forgetting best is why Eq. 19 uses
//! `1/gap`.
//!
//! The model blends first-order Markov transitions from *every* window
//! item, each weighted by a hyperbolic forgetting curve over its age:
//!
//! ```text
//! score(v | W) = Σ_{l ∈ W} (1 / gap(l)) · P̂(v | l)
//! ```
//!
//! so recently-consumed sources dominate but older context still votes.
//! It is a strictly richer baseline than the plain last-item Markov chain
//! in [`crate::markov`], and an ablation between "transition structure
//! only" (Markov), "transition + forgetting" (this), and "features +
//! factors" (TS-PPR).

use crate::markov::MarkovChainModel;
use rrc_features::{RecContext, Recommender};
use rrc_sequence::{Dataset, ItemId};

/// Markov transitions weighted by hyperbolic interest forgetting.
#[derive(Debug, Clone)]
pub struct ForgettingMarkovModel {
    chain: MarkovChainModel,
}

impl ForgettingMarkovModel {
    /// Fit the underlying transition counts on the training split.
    pub fn fit(train: &Dataset, smoothing: f64) -> Self {
        ForgettingMarkovModel {
            chain: MarkovChainModel::fit(train, smoothing),
        }
    }

    /// Borrow the underlying chain.
    pub fn chain(&self) -> &MarkovChainModel {
        &self.chain
    }

    /// The forgetting-weighted transition score for `item`, given the
    /// distinct window sources with their last-seen steps.
    pub fn score_from_window(
        &self,
        sources: impl Iterator<Item = (ItemId, usize)>,
        now: usize,
        item: ItemId,
    ) -> f64 {
        let mut acc = 0.0;
        for (source, last_seen) in sources {
            let gap = (now.saturating_sub(last_seen)).max(1) as f64;
            acc += self.chain.transition_prob(source, item) / gap;
        }
        acc
    }
}

/// [`Recommender`] adapter.
#[derive(Debug, Clone)]
pub struct ForgettingMarkovRecommender {
    model: ForgettingMarkovModel,
}

impl ForgettingMarkovRecommender {
    /// Wrap a fitted model.
    pub fn new(model: ForgettingMarkovModel) -> Self {
        ForgettingMarkovRecommender { model }
    }

    /// Borrow the model.
    pub fn model(&self) -> &ForgettingMarkovModel {
        &self.model
    }
}

impl Recommender for ForgettingMarkovRecommender {
    fn name(&self) -> &str {
        "IF-Markov"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        let now = ctx.window.time();
        let sources = ctx.window.distinct_items().map(|s| {
            (
                s,
                ctx.window.last_seen(s).expect("window item has last_seen"),
            )
        });
        self.model.score_from_window(sources, now, item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_features::TrainStats;
    use rrc_sequence::{Sequence, UserId, WindowState};

    fn train() -> Dataset {
        // 0→1 always; 2→3 always.
        Dataset::new(vec![Sequence::from_raw(vec![0, 1, 0, 1, 2, 3, 2, 3])], 4)
    }

    #[test]
    fn recent_source_outvotes_old_source() {
        let model = ForgettingMarkovModel::fit(&train(), 0.0);
        // Window: 0 consumed long ago, 2 just now. 2→3 should beat 0→1.
        let sources = [(ItemId(0), 0usize), (ItemId(2), 9usize)];
        let now = 10;
        let s3 = model.score_from_window(sources.iter().copied(), now, ItemId(3));
        let s1 = model.score_from_window(sources.iter().copied(), now, ItemId(1));
        assert!(s3 > s1, "recent source should dominate: {s3} vs {s1}");
        // Flip the ages and the ordering flips.
        let flipped = [(ItemId(0), 9usize), (ItemId(2), 0usize)];
        let s3f = model.score_from_window(flipped.iter().copied(), now, ItemId(3));
        let s1f = model.score_from_window(flipped.iter().copied(), now, ItemId(1));
        assert!(s1f > s3f);
    }

    #[test]
    fn score_accumulates_over_sources() {
        let model = ForgettingMarkovModel::fit(&train(), 0.0);
        // Both sources transition to item 1? Only 0 does; score from a
        // single source equals p/gap.
        let single = model.score_from_window(std::iter::once((ItemId(0), 8usize)), 10, ItemId(1));
        assert!((single - 1.0 / 2.0).abs() < 1e-12); // P(1|0)=1, gap 2
    }

    #[test]
    fn recommender_integrates_with_window() {
        let model = ForgettingMarkovModel::fit(&train(), 0.0);
        let rec = ForgettingMarkovRecommender::new(model);
        let stats = TrainStats::compute(&train(), 10);
        // Live window: ... 0 (older), 2 (newest): expect 3 ranked above 1.
        let w = WindowState::warmed(10, &[1, 3, 0, 2].map(ItemId));
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 1,
        };
        assert!(rec.score(&ctx, ItemId(3)) > rec.score(&ctx, ItemId(1)));
        assert_eq!(rec.name(), "IF-Markov");
        assert!(rec.model().chain().num_observed_transitions() > 0);
    }

    #[test]
    fn unknown_items_score_zero_without_smoothing() {
        let model = ForgettingMarkovModel::fit(&train(), 0.0);
        let rec = ForgettingMarkovRecommender::new(model);
        let stats = TrainStats::compute(&train(), 10);
        let w = WindowState::warmed(10, &[0].map(ItemId));
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 0,
        };
        assert_eq!(rec.score(&ctx, ItemId(2)), 0.0);
    }
}
