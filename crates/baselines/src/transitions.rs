//! Shared transition-event extraction for the FPMC family.

use rand::rngs::StdRng;
use rand::Rng;
use rrc_sequence::{classify, ConsumptionKind, Dataset, ItemId, UserId, WindowState};

/// One extracted transition event: `user` reconsumed `pos` out of basket
/// `basket`; `negs` are sampled non-chosen eligible candidates.
#[derive(Debug, Clone)]
pub struct Transition {
    pub user: UserId,
    pub pos: ItemId,
    pub negs: Vec<ItemId>,
    pub basket: Vec<ItemId>,
}

/// Walk the training split extracting eligible-repeat transitions with up
/// to `negatives_per_positive` sampled negatives each. The basket is the
/// distinct-item content of the window at the event.
pub fn collect_transitions(
    train: &Dataset,
    window: usize,
    omega: usize,
    negatives_per_positive: usize,
    rng: &mut StdRng,
) -> Vec<Transition> {
    let mut out = Vec::new();
    for (user, seq) in train.iter() {
        let mut win = WindowState::new(window);
        for &item in seq.events() {
            if classify(&win, item, omega) == ConsumptionKind::EligibleRepeat {
                let mut candidates = win.eligible_candidates(omega);
                candidates.retain(|&v| v != item);
                if !candidates.is_empty() {
                    let s = negatives_per_positive.min(candidates.len());
                    for k in 0..s {
                        let j = rng.gen_range(k..candidates.len());
                        candidates.swap(k, j);
                    }
                    let mut basket: Vec<ItemId> = win.distinct_items().collect();
                    basket.sort_unstable();
                    out.push(Transition {
                        user,
                        pos: item,
                        negs: candidates[..s].to_vec(),
                        basket,
                    });
                }
            }
            win.push(item);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rrc_sequence::Sequence;

    #[test]
    fn transitions_have_valid_structure() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![1, 2, 3, 4, 1, 2])], 5);
        let mut rng = StdRng::seed_from_u64(1);
        let ts = collect_transitions(&d, 10, 2, 3, &mut rng);
        assert!(!ts.is_empty());
        for t in &ts {
            assert!(!t.negs.contains(&t.pos));
            assert!(t.basket.contains(&t.pos));
            for pair in t.basket.windows(2) {
                assert!(pair[0] < pair[1], "basket must be sorted/deduped");
            }
            assert!(t.negs.len() <= 3);
        }
    }
}
