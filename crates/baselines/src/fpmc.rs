//! **FPMC** — Factorizing Personalized Markov Chains (Rendle, Freudenthaler
//! & Schmidt-Thieme, WWW 2010), adapted to the RRC problem as in §5.2 of
//! the paper: the "basket" is the set of distinct items in the current
//! window, and the model scores the transition from that basket to each
//! candidate item.
//!
//! The transition tensor is factorised with the pairwise-interaction model
//! (Tucker decomposition with a superdiagonal core, the form Rendle et al.
//! train in practice):
//!
//! ```text
//! x̂(u, i | B) = ⟨v_u^{UI}, v_i^{IU}⟩ + (1/|B|) Σ_{l ∈ B} ⟨v_i^{IL}, v_l^{LI}⟩
//! ```
//!
//! trained with S-BPR: sequential Bayesian personalized ranking over
//! (next-item, sampled-negative) pairs, with negatives drawn — as in the
//! RRC adaptation — from the same window's eligible candidates.

use crate::transitions::{collect_transitions, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrc_core::parallel::{
    merge_item_updates, run_on_shards, shard_for, shard_stream_seed, split_block, ParallelConfig,
    TrainMode,
};
use rrc_features::{RecContext, Recommender};
use rrc_linalg::{sigmoid, DMatrix, GaussianSampler};
use rrc_sequence::{Dataset, ItemId, UserId};
use std::sync::atomic::{AtomicU64, Ordering};

/// FPMC hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FpmcConfig {
    /// Number of users.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Latent dimension of each factor pair.
    pub k: usize,
    /// Learning rate.
    pub alpha: f64,
    /// L2 regularisation.
    pub gamma: f64,
    /// Sweeps over the extracted transition events.
    pub max_sweeps: usize,
    /// Window capacity used to extract transitions.
    pub window: usize,
    /// Minimum gap Ω for eligible transitions.
    pub omega: usize,
    /// Negatives per positive.
    pub negatives_per_positive: usize,
    /// RNG seed.
    pub seed: u64,
}

impl FpmcConfig {
    /// Defaults aligned with the TS-PPR experimental setting.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        FpmcConfig {
            num_users,
            num_items,
            k: 16,
            alpha: 0.05,
            gamma: 0.05,
            max_sweeps: 20,
            window: 100,
            omega: 10,
            negatives_per_positive: 10,
            seed: 0xF9,
        }
    }
}

/// The four factor matrices of the pairwise-interaction FPMC model.
#[derive(Debug, Clone, PartialEq)]
pub struct FpmcModel {
    k: usize,
    /// user → item interaction, user side (`|U| × K`).
    ui: DMatrix,
    /// user → item interaction, item side (`|V| × K`).
    iu: DMatrix,
    /// basket → item transition, target-item side (`|V| × K`).
    il: DMatrix,
    /// basket → item transition, basket-item side (`|V| × K`).
    li: DMatrix,
}

impl FpmcModel {
    /// Gaussian initialisation with standard deviation `0.1` (Rendle's
    /// customary choice).
    pub fn init<R: Rng + ?Sized>(
        rng: &mut R,
        num_users: usize,
        num_items: usize,
        k: usize,
    ) -> Self {
        let mut g = GaussianSampler::new(0.0, 0.1);
        FpmcModel {
            k,
            ui: g.sample_matrix(rng, num_users, k),
            iu: g.sample_matrix(rng, num_items, k),
            il: g.sample_matrix(rng, num_items, k),
            li: g.sample_matrix(rng, num_items, k),
        }
    }

    /// Build from explicit factor matrices (used by `rrc-store`).
    ///
    /// # Panics
    /// Panics when the matrices disagree on `K` or the item count.
    pub fn from_parts(k: usize, ui: DMatrix, iu: DMatrix, il: DMatrix, li: DMatrix) -> Self {
        assert!(k > 0, "K must be positive");
        for (name, m) in [("UI", &ui), ("IU", &iu), ("IL", &il), ("LI", &li)] {
            assert_eq!(m.cols(), k, "{name} has wrong latent dimension");
        }
        assert!(
            iu.rows() == il.rows() && il.rows() == li.rows(),
            "item-side matrices disagree on the item count"
        );
        FpmcModel { k, ui, iu, il, li }
    }

    /// Borrow the four factor matrices as `(UI, IU, IL, LI)` — the inverse
    /// view of [`Self::from_parts`], for persistence.
    pub fn parts(&self) -> (&DMatrix, &DMatrix, &DMatrix, &DMatrix) {
        (&self.ui, &self.iu, &self.il, &self.li)
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.ui.rows()
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.iu.rows()
    }

    /// Latent dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The transition score `x̂(u, i | B)`.
    pub fn score(&self, user: UserId, item: ItemId, basket: &[ItemId]) -> f64 {
        let mf: f64 = dot(self.ui.row(user.index()), self.iu.row(item.index()));
        if basket.is_empty() {
            return mf;
        }
        let il = self.il.row(item.index());
        let mut fmc = 0.0;
        for &l in basket {
            fmc += dot(il, self.li.row(l.index()));
        }
        mf + fmc / basket.len() as f64
    }

    /// True iff every parameter is finite.
    pub fn is_finite(&self) -> bool {
        self.ui.is_finite() && self.iu.is_finite() && self.il.is_finite() && self.li.is_finite()
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// S-BPR trainer for [`FpmcModel`].
#[derive(Debug, Clone)]
pub struct FpmcTrainer {
    config: FpmcConfig,
}

impl FpmcTrainer {
    /// Create a trainer.
    pub fn new(config: FpmcConfig) -> Self {
        assert!(config.omega < config.window, "omega must be < window");
        assert!(config.k > 0, "K must be positive");
        FpmcTrainer { config }
    }

    /// Extract transition events from the training split and run S-BPR.
    pub fn train(&self, train: &Dataset) -> FpmcModel {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let transitions = self.transitions(train, &mut rng);
        let mut model = FpmcModel::init(&mut rng, cfg.num_users, cfg.num_items, cfg.k);
        if transitions.is_empty() {
            return model;
        }

        let k = cfg.k;
        let a = cfg.alpha;
        let g = cfg.gamma;
        let mut eta = vec![0.0; k]; // (1/|B|) Σ_l v_l^{LI}
        let mut ui_old = vec![0.0; k];

        let steps = cfg.max_sweeps * transitions.len();
        rrc_obs::global()
            .counter("train_steps_total")
            .add(steps as u64);
        for _ in 0..steps {
            let tr = &transitions[rng.gen_range(0..transitions.len())];
            let neg = tr.negs[rng.gen_range(0..tr.negs.len())];
            let margin =
                model.score(tr.user, tr.pos, &tr.basket) - model.score(tr.user, neg, &tr.basket);
            let delta = 1.0 - sigmoid(margin);

            // η = mean basket factor.
            eta.iter_mut().for_each(|x| *x = 0.0);
            for &l in &tr.basket {
                let row = model.li.row(l.index());
                for r in 0..k {
                    eta[r] += row[r];
                }
            }
            let inv_b = 1.0 / tr.basket.len().max(1) as f64;
            eta.iter_mut().for_each(|x| *x *= inv_b);

            ui_old.copy_from_slice(model.ui.row(tr.user.index()));
            // v_u^{UI}.
            {
                let iu_pos = model.iu.row(tr.pos.index()).to_vec();
                let iu_neg = model.iu.row(neg.index()).to_vec();
                let row = model.ui.row_mut(tr.user.index());
                for r in 0..k {
                    row[r] += a * (delta * (iu_pos[r] - iu_neg[r]) - g * row[r]);
                }
            }
            // v_i^{IU} / v_j^{IU}.
            {
                let row = model.iu.row_mut(tr.pos.index());
                for r in 0..k {
                    row[r] += a * (delta * ui_old[r] - g * row[r]);
                }
            }
            {
                let row = model.iu.row_mut(neg.index());
                for r in 0..k {
                    row[r] += a * (-delta * ui_old[r] - g * row[r]);
                }
            }
            // v_i^{IL} / v_j^{IL} against η.
            let il_diff: Vec<f64>;
            {
                let pos_row = model.il.row(tr.pos.index()).to_vec();
                let neg_row = model.il.row(neg.index()).to_vec();
                il_diff = pos_row
                    .iter()
                    .zip(neg_row.iter())
                    .map(|(p, n)| p - n)
                    .collect();
                let row = model.il.row_mut(tr.pos.index());
                for r in 0..k {
                    row[r] += a * (delta * eta[r] - g * row[r]);
                }
            }
            {
                let row = model.il.row_mut(neg.index());
                for r in 0..k {
                    row[r] += a * (-delta * eta[r] - g * row[r]);
                }
            }
            // Every basket item's v_l^{LI}.
            for &l in &tr.basket {
                let row = model.li.row_mut(l.index());
                for r in 0..k {
                    row[r] += a * (delta * il_diff[r] * inv_b - g * row[r]);
                }
            }
        }
        model
    }

    /// Train under a [`ParallelConfig`] — the multi-threaded counterpart of
    /// [`Self::train`], built on the shared machinery of
    /// `rrc_core::parallel`. Sharded mode partitions transitions by their
    /// user's shard ([`shard_for`]) and merges the three shared item
    /// matrices (`IU`, `IL`, `LI`) at sweep barriers; with one shard it is
    /// byte-identical to the serial trainer, and its output depends only on
    /// `(seed, shards)`, never the thread count. Hogwild mode runs
    /// lock-free over an atomic arena of all four matrices.
    pub fn train_parallel(&self, train: &Dataset, par: &ParallelConfig) -> FpmcModel {
        match par.mode {
            TrainMode::Serial => self.train(train),
            TrainMode::Sharded => self.train_sharded(train, par),
            TrainMode::Hogwild => self.train_hogwild(train, par),
        }
    }

    fn train_sharded(&self, train: &Dataset, par: &ParallelConfig) -> FpmcModel {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let transitions = self.transitions(train, &mut rng);
        let model = FpmcModel::init(&mut rng, cfg.num_users, cfg.num_items, cfg.k);
        if transitions.is_empty() {
            return model;
        }

        let k = cfg.k;
        let a = cfg.alpha;
        let g = cfg.gamma;
        let d = transitions.len();
        let total_steps = cfg.max_sweeps * d;
        rrc_obs::global()
            .counter("train_steps_total")
            .add(total_steps as u64);

        /// One shard: its transitions, the `UI` rows of the users it owns,
        /// and block-local copies of the three shared item matrices.
        struct Shard {
            trans: Vec<Transition>,
            users: Vec<UserId>,
            ui: DMatrix,
            iu: DMatrix,
            il: DMatrix,
            li: DMatrix,
            rng: StdRng,
            eta: Vec<f64>,
            ui_old: Vec<f64>,
        }

        let shards = par.shards;
        let FpmcModel {
            ui: mut ui_res,
            mut iu,
            mut il,
            mut li,
            ..
        } = model;
        let mut shard_trans: Vec<Vec<Transition>> = (0..shards).map(|_| Vec::new()).collect();
        for tr in transitions {
            shard_trans[shard_for(tr.user, shards)].push(tr);
        }
        let mut local_of = vec![u32::MAX; cfg.num_users];
        let mut init_rng = Some(rng);
        let mut states: Vec<Shard> = Vec::with_capacity(shards);
        for (s, trans) in shard_trans.into_iter().enumerate() {
            let mut users: Vec<UserId> = Vec::new();
            for tr in &trans {
                if local_of[tr.user.index()] == u32::MAX {
                    local_of[tr.user.index()] = users.len() as u32;
                    users.push(tr.user);
                }
            }
            let mut su = DMatrix::zeros(users.len(), k);
            for (row, &user) in users.iter().enumerate() {
                su.row_mut(row).copy_from_slice(ui_res.row(user.index()));
            }
            let (siu, sil, sli) = if trans.is_empty() {
                (
                    DMatrix::zeros(0, 0),
                    DMatrix::zeros(0, 0),
                    DMatrix::zeros(0, 0),
                )
            } else {
                (iu.clone(), il.clone(), li.clone())
            };
            states.push(Shard {
                trans,
                users,
                ui: su,
                iu: siu,
                il: sil,
                li: sli,
                rng: match s {
                    0 => init_rng.take().expect("init stream taken once"),
                    _ => StdRng::seed_from_u64(shard_stream_seed(cfg.seed, s)),
                },
                eta: vec![0.0; k],
                ui_old: vec![0.0; k],
            });
        }
        let mut cum = vec![0u64; shards + 1];
        for s in 0..shards {
            cum[s + 1] = cum[s] + states[s].trans.len() as u64;
        }

        // One sweep (|transitions| draws) per synchronisation block.
        let mut merge_scratch = Vec::new();
        let mut step = 0usize;
        while step < total_steps {
            let block = d.min(total_steps - step);
            let alloc = split_block(block, &cum);
            {
                let alloc = &alloc;
                let local_of = &local_of;
                let (iu_base, il_base, li_base) = (&iu, &il, &li);
                run_on_shards(par.threads, &mut states, &|_w, s_idx, st| {
                    let n = alloc[s_idx];
                    if n == 0 {
                        return;
                    }
                    st.iu.as_mut_slice().copy_from_slice(iu_base.as_slice());
                    st.il.as_mut_slice().copy_from_slice(il_base.as_slice());
                    st.li.as_mut_slice().copy_from_slice(li_base.as_slice());
                    for _ in 0..n {
                        let tr = &st.trans[st.rng.gen_range(0..st.trans.len())];
                        let neg = tr.negs[st.rng.gen_range(0..tr.negs.len())];
                        let urow = local_of[tr.user.index()] as usize;
                        // score(pos) − score(neg), exactly as
                        // FpmcModel::score computes them.
                        let score = |item: ItemId| -> f64 {
                            let mf = dot(st.ui.row(urow), st.iu.row(item.index()));
                            if tr.basket.is_empty() {
                                return mf;
                            }
                            let il_row = st.il.row(item.index());
                            let mut fmc = 0.0;
                            for &l in &tr.basket {
                                fmc += dot(il_row, st.li.row(l.index()));
                            }
                            mf + fmc / tr.basket.len() as f64
                        };
                        let margin = score(tr.pos) - score(neg);
                        let delta = 1.0 - sigmoid(margin);

                        st.eta.iter_mut().for_each(|x| *x = 0.0);
                        for &l in &tr.basket {
                            let row = st.li.row(l.index());
                            for (e, x) in st.eta.iter_mut().zip(row) {
                                *e += x;
                            }
                        }
                        let inv_b = 1.0 / tr.basket.len().max(1) as f64;
                        st.eta.iter_mut().for_each(|x| *x *= inv_b);

                        st.ui_old.copy_from_slice(st.ui.row(urow));
                        {
                            let iu_pos = st.iu.row(tr.pos.index()).to_vec();
                            let iu_neg = st.iu.row(neg.index()).to_vec();
                            let row = st.ui.row_mut(urow);
                            for r in 0..k {
                                row[r] += a * (delta * (iu_pos[r] - iu_neg[r]) - g * row[r]);
                            }
                        }
                        {
                            let row = st.iu.row_mut(tr.pos.index());
                            for (x, u0) in row.iter_mut().zip(&st.ui_old) {
                                *x += a * (delta * u0 - g * *x);
                            }
                        }
                        {
                            let row = st.iu.row_mut(neg.index());
                            for (x, u0) in row.iter_mut().zip(&st.ui_old) {
                                *x += a * (-delta * u0 - g * *x);
                            }
                        }
                        let il_diff: Vec<f64>;
                        {
                            let pos_row = st.il.row(tr.pos.index()).to_vec();
                            let neg_row = st.il.row(neg.index()).to_vec();
                            il_diff = pos_row
                                .iter()
                                .zip(neg_row.iter())
                                .map(|(p, n)| p - n)
                                .collect();
                            let row = st.il.row_mut(tr.pos.index());
                            for (x, e) in row.iter_mut().zip(&st.eta) {
                                *x += a * (delta * e - g * *x);
                            }
                        }
                        {
                            let row = st.il.row_mut(neg.index());
                            for (x, e) in row.iter_mut().zip(&st.eta) {
                                *x += a * (-delta * e - g * *x);
                            }
                        }
                        for &l in &tr.basket {
                            let row = st.li.row_mut(l.index());
                            for r in 0..k {
                                row[r] += a * (delta * il_diff[r] * inv_b - g * row[r]);
                            }
                        }
                    }
                });
            }
            for (base, pick) in [(&mut iu, 0usize), (&mut il, 1usize), (&mut li, 2usize)] {
                let mut actives: Vec<&mut DMatrix> = states
                    .iter_mut()
                    .enumerate()
                    .filter(|(s_idx, _)| alloc[*s_idx] > 0)
                    .map(|(_, st)| match pick {
                        0 => &mut st.iu,
                        1 => &mut st.il,
                        _ => &mut st.li,
                    })
                    .collect();
                merge_item_updates(base, &mut actives, &mut merge_scratch);
            }
            step += block;
        }

        for st in states.iter() {
            for (row, &user) in st.users.iter().enumerate() {
                ui_res.row_mut(user.index()).copy_from_slice(st.ui.row(row));
            }
        }
        FpmcModel {
            k,
            ui: ui_res,
            iu,
            il,
            li,
        }
    }

    fn train_hogwild(&self, train: &Dataset, par: &ParallelConfig) -> FpmcModel {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let transitions = self.transitions(train, &mut rng);
        let model = FpmcModel::init(&mut rng, cfg.num_users, cfg.num_items, cfg.k);
        if transitions.is_empty() {
            return model;
        }

        let k = cfg.k;
        let a = cfg.alpha;
        let g = cfg.gamma;
        let d = transitions.len();
        let total_steps = cfg.max_sweeps * d;
        rrc_obs::global()
            .counter("train_steps_total")
            .add(total_steps as u64);

        // Flat atomic arena: UI | IU | IL | LI.
        let cells: Vec<AtomicU64> = model
            .ui
            .as_slice()
            .iter()
            .chain(model.iu.as_slice())
            .chain(model.il.as_slice())
            .chain(model.li.as_slice())
            .map(|x| AtomicU64::new(x.to_bits()))
            .collect();
        let cells = &cells[..];
        let get = |i: usize| f64::from_bits(cells[i].load(Ordering::Relaxed));
        let set = |i: usize, x: f64| cells[i].store(x.to_bits(), Ordering::Relaxed);
        let nu = cfg.num_users;
        let ni = cfg.num_items;
        let ui_off = |u: UserId| u.index() * k;
        let iu_off = |v: ItemId| (nu + v.index()) * k;
        let il_off = |v: ItemId| (nu + ni + v.index()) * k;
        let li_off = |v: ItemId| (nu + 2 * ni + v.index()) * k;

        struct Worker {
            rng: StdRng,
            ui: Vec<f64>,
            iu_pos: Vec<f64>,
            iu_neg: Vec<f64>,
            il_pos: Vec<f64>,
            il_neg: Vec<f64>,
            eta: Vec<f64>,
        }
        let threads = par.threads.max(1);
        let mut workers: Vec<Worker> = (0..threads)
            .map(|w| Worker {
                rng: match w {
                    0 => std::mem::replace(&mut rng, StdRng::seed_from_u64(0)),
                    _ => StdRng::seed_from_u64(shard_stream_seed(cfg.seed, w)),
                },
                ui: vec![0.0; k],
                iu_pos: vec![0.0; k],
                iu_neg: vec![0.0; k],
                il_pos: vec![0.0; k],
                il_neg: vec![0.0; k],
                eta: vec![0.0; k],
            })
            .collect();
        let cum: Vec<u64> = (0..=threads as u64).collect();
        let transitions = &transitions[..];

        let mut step = 0usize;
        while step < total_steps {
            let block = d.min(total_steps - step);
            let alloc = split_block(block, &cum);
            let alloc = &alloc;
            run_on_shards(threads, &mut workers, &|_t, w_idx, wk| {
                let n = alloc[w_idx];
                for _ in 0..n {
                    let tr = &transitions[wk.rng.gen_range(0..transitions.len())];
                    let neg = tr.negs[wk.rng.gen_range(0..tr.negs.len())];
                    let (uo, ipo, ino, lpo, lno) = (
                        ui_off(tr.user),
                        iu_off(tr.pos),
                        iu_off(neg),
                        il_off(tr.pos),
                        il_off(neg),
                    );
                    let inv_b = 1.0 / tr.basket.len().max(1) as f64;
                    wk.eta.iter_mut().for_each(|x| *x = 0.0);
                    for &l in &tr.basket {
                        let lo = li_off(l);
                        for r in 0..k {
                            wk.eta[r] += get(lo + r);
                        }
                    }
                    let mut margin = 0.0;
                    for r in 0..k {
                        wk.ui[r] = get(uo + r);
                        wk.iu_pos[r] = get(ipo + r);
                        wk.iu_neg[r] = get(ino + r);
                        wk.il_pos[r] = get(lpo + r);
                        wk.il_neg[r] = get(lno + r);
                        // mf part + mean-basket transition part (η already
                        // holds Σ_l v_l^{LI}; multiply by 1/|B| once).
                        margin += wk.ui[r] * (wk.iu_pos[r] - wk.iu_neg[r]);
                        if !tr.basket.is_empty() {
                            margin += (wk.il_pos[r] - wk.il_neg[r]) * wk.eta[r] * inv_b;
                        }
                    }
                    wk.eta.iter_mut().for_each(|x| *x *= inv_b);
                    let delta = 1.0 - sigmoid(margin);
                    for r in 0..k {
                        set(
                            uo + r,
                            wk.ui[r] + a * (delta * (wk.iu_pos[r] - wk.iu_neg[r]) - g * wk.ui[r]),
                        );
                        set(
                            ipo + r,
                            wk.iu_pos[r] + a * (delta * wk.ui[r] - g * wk.iu_pos[r]),
                        );
                        set(
                            ino + r,
                            wk.iu_neg[r] + a * (-delta * wk.ui[r] - g * wk.iu_neg[r]),
                        );
                        set(
                            lpo + r,
                            wk.il_pos[r] + a * (delta * wk.eta[r] - g * wk.il_pos[r]),
                        );
                        set(
                            lno + r,
                            wk.il_neg[r] + a * (-delta * wk.eta[r] - g * wk.il_neg[r]),
                        );
                    }
                    for &l in &tr.basket {
                        let lo = li_off(l);
                        for r in 0..k {
                            let cur = get(lo + r);
                            let diff = wk.il_pos[r] - wk.il_neg[r];
                            set(lo + r, cur + a * (delta * diff * inv_b - g * cur));
                        }
                    }
                }
            });
            step += block;
        }

        let read = |off: usize, len: usize| (off..off + len).map(get).collect::<Vec<f64>>();
        FpmcModel {
            k,
            ui: DMatrix::from_vec(nu, k, read(0, nu * k)),
            iu: DMatrix::from_vec(ni, k, read(nu * k, ni * k)),
            il: DMatrix::from_vec(ni, k, read((nu + ni) * k, ni * k)),
            li: DMatrix::from_vec(ni, k, read((nu + 2 * ni) * k, ni * k)),
        }
    }

    fn transitions(&self, train: &Dataset, rng: &mut StdRng) -> Vec<Transition> {
        let cfg = &self.config;
        collect_transitions(
            train,
            cfg.window,
            cfg.omega,
            cfg.negatives_per_positive,
            rng,
        )
    }
}

/// [`Recommender`] adapter: basket = distinct items of the live window.
#[derive(Debug, Clone)]
pub struct FpmcRecommender {
    model: FpmcModel,
}

impl FpmcRecommender {
    /// Wrap a trained model.
    pub fn new(model: FpmcModel) -> Self {
        FpmcRecommender { model }
    }

    /// Borrow the model.
    pub fn model(&self) -> &FpmcModel {
        &self.model
    }
}

impl Recommender for FpmcRecommender {
    fn name(&self) -> &str {
        "FPMC"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        let mut basket: Vec<ItemId> = ctx.window.distinct_items().collect();
        basket.sort_unstable();
        self.model.score(ctx.user, item, &basket)
    }

    fn recommend(&self, ctx: &RecContext<'_>, n: usize) -> Vec<ItemId> {
        // Build the basket once for all candidates.
        let mut basket: Vec<ItemId> = ctx.window.distinct_items().collect();
        basket.sort_unstable();
        let mut scored: Vec<(f64, ItemId)> = ctx
            .candidates()
            .into_iter()
            .map(|v| (self.model.score(ctx.user, v, &basket), v))
            .collect();
        rrc_features::recommend::top_n(&mut scored, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_datagen::GeneratorConfig;
    use rrc_features::TrainStats;
    use rrc_sequence::WindowState;

    fn config(d: &Dataset) -> FpmcConfig {
        FpmcConfig {
            k: 8,
            max_sweeps: 15,
            window: 30,
            omega: 3,
            negatives_per_positive: 5,
            ..FpmcConfig::new(d.num_users(), d.num_items())
        }
    }

    #[test]
    fn score_is_mf_plus_mean_transition() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = FpmcModel::init(&mut rng, 2, 4, 3);
        let u = UserId(0);
        let i = ItemId(1);
        let basket = [ItemId(2), ItemId(3)];
        let mf = dot(m.ui.row(0), m.iu.row(1));
        let t2 = dot(m.il.row(1), m.li.row(2));
        let t3 = dot(m.il.row(1), m.li.row(3));
        let expect = mf + 0.5 * (t2 + t3);
        assert!((m.score(u, i, &basket) - expect).abs() < 1e-12);
        // Empty basket degrades to plain MF.
        assert!((m.score(u, i, &[]) - mf).abs() < 1e-12);
    }

    #[test]
    fn training_improves_pairwise_accuracy() {
        let data = GeneratorConfig::tiny().with_seed(13).generate();
        let cfg = config(&data);
        let trainer = FpmcTrainer::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let transitions = trainer.transitions(&data, &mut rng);
        assert!(!transitions.is_empty());
        let init = FpmcModel::init(&mut rng, cfg.num_users, cfg.num_items, cfg.k);
        let trained = trainer.train(&data);
        assert!(trained.is_finite());

        let acc = |m: &FpmcModel| {
            let mut wins = 0;
            let mut total = 0;
            for tr in &transitions {
                for &neg in &tr.negs {
                    if m.score(tr.user, tr.pos, &tr.basket) > m.score(tr.user, neg, &tr.basket) {
                        wins += 1;
                    }
                    total += 1;
                }
            }
            wins as f64 / total as f64
        };
        let before = acc(&init);
        let after = acc(&trained);
        assert!(after > before, "FPMC accuracy {before} → {after}");
        assert!(after > 0.6, "trained FPMC accuracy {after}");
    }

    #[test]
    fn empty_training_returns_initial_model() {
        let d = Dataset::new(vec![rrc_sequence::Sequence::from_raw(vec![0, 1, 2])], 3);
        let m = FpmcTrainer::new(config(&d)).train(&d);
        assert!(m.is_finite());
    }

    #[test]
    fn recommender_respects_candidates() {
        let data = GeneratorConfig::tiny().with_seed(4).generate();
        let model = FpmcTrainer::new(config(&data)).train(&data);
        let rec = FpmcRecommender::new(model);
        let stats = TrainStats::compute(&data, 30);
        let user = UserId(0);
        let window = WindowState::warmed(30, data.sequence(user).events());
        let ctx = RecContext {
            user,
            window: &window,
            stats: &stats,
            omega: 3,
        };
        let top = rec.recommend(&ctx, 5);
        let candidates = ctx.candidates();
        for v in &top {
            assert!(candidates.contains(v));
        }
        assert_eq!(rec.name(), "FPMC");
        assert!(rec.model().is_finite());
    }

    #[test]
    fn deterministic_training() {
        let data = GeneratorConfig::tiny().with_seed(19).generate();
        let a = FpmcTrainer::new(config(&data)).train(&data);
        let b = FpmcTrainer::new(config(&data)).train(&data);
        assert_eq!(a, b);
    }
}
