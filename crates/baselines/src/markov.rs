//! A first-order Markov-chain baseline: rank candidates by the empirical
//! transition probability from the user's *previous* item.
//!
//! This is the unfactorised ancestor of FPMC (its "MC" part; cf. Rendle et
//! al. 2010 §3.2) and a useful ablation: FPMC should beat it when the
//! transition matrix is sparse, and both should trail the feature-based
//! models on the RRC task.

use rrc_features::{RecContext, Recommender};
use rrc_sequence::{Dataset, ItemId};
use std::collections::HashMap;

/// Empirical item→item transition model with additive smoothing.
#[derive(Debug, Clone)]
pub struct MarkovChainModel {
    /// `transitions[a]` maps `b` to the count of observed `a → b` steps.
    transitions: Vec<HashMap<ItemId, u32>>,
    /// Total outgoing transitions per item.
    totals: Vec<u64>,
    /// Additive smoothing constant.
    alpha: f64,
    num_items: usize,
}

impl MarkovChainModel {
    /// Count consecutive-pair transitions over every training sequence.
    pub fn fit(train: &Dataset, alpha: f64) -> Self {
        assert!(alpha >= 0.0, "smoothing must be non-negative");
        let n = train.num_items();
        let mut transitions = vec![HashMap::new(); n];
        let mut totals = vec![0u64; n];
        for (_, seq) in train.iter() {
            for pair in seq.events().windows(2) {
                let (a, b) = (pair[0], pair[1]);
                *transitions[a.index()].entry(b).or_insert(0) += 1;
                totals[a.index()] += 1;
            }
        }
        MarkovChainModel {
            transitions,
            totals,
            alpha,
            num_items: n,
        }
    }

    /// Smoothed transition probability `P(next = b | prev = a)`.
    pub fn transition_prob(&self, a: ItemId, b: ItemId) -> f64 {
        let count = self.transitions[a.index()].get(&b).copied().unwrap_or(0) as f64;
        let total = self.totals[a.index()] as f64;
        (count + self.alpha) / (total + self.alpha * self.num_items as f64)
    }

    /// Number of distinct observed transitions.
    pub fn num_observed_transitions(&self) -> usize {
        self.transitions.iter().map(|m| m.len()).sum()
    }
}

/// [`Recommender`] adapter: the "previous item" is the newest event in the
/// live window.
#[derive(Debug, Clone)]
pub struct MarkovRecommender {
    model: MarkovChainModel,
}

impl MarkovRecommender {
    /// Wrap a fitted model.
    pub fn new(model: MarkovChainModel) -> Self {
        MarkovRecommender { model }
    }

    /// Borrow the model.
    pub fn model(&self) -> &MarkovChainModel {
        &self.model
    }
}

impl Recommender for MarkovRecommender {
    fn name(&self) -> &str {
        "Markov"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        match ctx.window.events().last() {
            None => 0.0,
            Some(prev) => self.model.transition_prob(prev, item),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_features::TrainStats;
    use rrc_sequence::{Sequence, UserId, WindowState};

    fn model() -> MarkovChainModel {
        // Transitions: 0→1 (2x), 1→0 (1x), 1→2 (1x), 2→0 (1x).
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 0, 1, 2, 0])], 3);
        MarkovChainModel::fit(&d, 0.0)
    }

    #[test]
    fn transition_counts_match_hand_count() {
        let m = model();
        assert_eq!(m.num_observed_transitions(), 4);
        assert!((m.transition_prob(ItemId(0), ItemId(1)) - 1.0).abs() < 1e-12);
        assert!((m.transition_prob(ItemId(1), ItemId(0)) - 0.5).abs() < 1e-12);
        assert!((m.transition_prob(ItemId(1), ItemId(2)) - 0.5).abs() < 1e-12);
        assert_eq!(m.transition_prob(ItemId(0), ItemId(2)), 0.0);
    }

    #[test]
    fn smoothing_gives_unseen_transitions_mass() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1])], 3);
        let m = MarkovChainModel::fit(&d, 1.0);
        let p_seen = m.transition_prob(ItemId(0), ItemId(1));
        let p_unseen = m.transition_prob(ItemId(0), ItemId(2));
        assert!(p_seen > p_unseen);
        assert!(p_unseen > 0.0);
        // Rows sum to 1 under smoothing.
        let row_sum: f64 = (0..3)
            .map(|b| m.transition_prob(ItemId(0), ItemId(b)))
            .sum();
        assert!((row_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recommender_uses_newest_window_event() {
        let m = model();
        let rec = MarkovRecommender::new(m);
        let d = Dataset::new(vec![Sequence::from_raw(vec![0])], 3);
        let stats = TrainStats::compute(&d, 10);
        // Window ends in item 1 → item 0 and 2 tie at 0.5/0.5; score checks.
        let w = WindowState::warmed(10, &[0, 2, 0, 1].map(ItemId));
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 1,
        };
        assert!((rec.score(&ctx, ItemId(0)) - 0.5).abs() < 1e-12);
        assert!((rec.score(&ctx, ItemId(2)) - 0.5).abs() < 1e-12);
        assert_eq!(rec.name(), "Markov");
    }

    #[test]
    fn empty_window_scores_zero() {
        let rec = MarkovRecommender::new(model());
        let d = Dataset::new(vec![Sequence::from_raw(vec![0])], 3);
        let stats = TrainStats::compute(&d, 10);
        let w = WindowState::new(5);
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 1,
        };
        assert_eq!(rec.score(&ctx, ItemId(0)), 0.0);
    }
}
