//! **Tucker-FPMC** — the general Tucker-decomposition form of the
//! factorized personalized Markov chain, as the paper literally describes
//! FPMC ("employs the Tucker Decomposition on a {user-item-item} transition
//! tensor", §5.2).
//!
//! The transition tensor entry is scored with a dense core `G` and three
//! factor matrices:
//!
//! ```text
//! x̂(u, i, l) = Σ_{a,b,c} G[a,b,c] · U[u,a] · V[i,b] · L[l,c]
//! x̂(u, i | B) = (1/|B|) Σ_{l ∈ B} x̂(u, i, l)
//! ```
//!
//! Rendle et al. train the *pairwise-interaction* special case
//! ([`crate::fpmc`]) because the full Tucker model is slower and no more
//! accurate; implementing both lets the repository verify that claim
//! (`reproduce ablation` compares them indirectly, and the unit tests here
//! check the special-case equivalence directly).

use crate::transitions::{collect_transitions, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrc_features::{RecContext, Recommender};
use rrc_linalg::{sigmoid, DMatrix, GaussianSampler, Tensor3};
use rrc_sequence::{Dataset, ItemId, UserId};

/// Tucker-FPMC hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TuckerFpmcConfig {
    /// Number of users.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Core dimensions `(k_U, k_I, k_L)`.
    pub core: (usize, usize, usize),
    /// Learning rate.
    pub alpha: f64,
    /// L2 regularisation.
    pub gamma: f64,
    /// Sweeps over the extracted transitions.
    pub max_sweeps: usize,
    /// Window capacity.
    pub window: usize,
    /// Minimum gap Ω.
    pub omega: usize,
    /// Negatives per positive.
    pub negatives_per_positive: usize,
    /// Whether the core `G` is trained or frozen (frozen superdiagonal =
    /// CP form).
    pub train_core: bool,
    /// RNG seed.
    pub seed: u64,
}

impl TuckerFpmcConfig {
    /// Defaults mirroring [`crate::FpmcConfig`] with an 8×8×8 core.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        TuckerFpmcConfig {
            num_users,
            num_items,
            core: (8, 8, 8),
            alpha: 0.05,
            gamma: 0.05,
            max_sweeps: 20,
            window: 100,
            omega: 10,
            negatives_per_positive: 10,
            train_core: true,
            seed: 0x7c,
        }
    }
}

/// The Tucker-FPMC model: core tensor + three factor matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct TuckerFpmcModel {
    core: Tensor3,
    u: DMatrix,
    v: DMatrix,
    l: DMatrix,
}

impl TuckerFpmcModel {
    /// Initialise: factors `~ N(0, 0.3²)`, core superdiagonal with value
    /// `4.0`. The trilinear score multiplies three small factors *and* the
    /// basket mean (which shrinks with `1/|B|`), so timid initialisation
    /// starves the gradients; these scales give the SGD usable signal from
    /// step one.
    pub fn init<R: Rng + ?Sized>(
        rng: &mut R,
        num_users: usize,
        num_items: usize,
        core: (usize, usize, usize),
    ) -> Self {
        let mut g = GaussianSampler::new(0.0, 0.3);
        let k = core.0.min(core.1).min(core.2);
        let mut t = Tensor3::zeros(core.0, core.1, core.2);
        for i in 0..k {
            t[(i, i, i)] = 4.0;
        }
        TuckerFpmcModel {
            core: t,
            u: g.sample_matrix(rng, num_users, core.0),
            v: g.sample_matrix(rng, num_items, core.1),
            l: g.sample_matrix(rng, num_items, core.2),
        }
    }

    /// Borrow the core tensor.
    pub fn core(&self) -> &Tensor3 {
        &self.core
    }

    /// Mean basket factor `z̄ = (1/|B|) Σ_{l∈B} L[l]`.
    fn basket_mean(&self, basket: &[ItemId]) -> Vec<f64> {
        let kc = self.core.shape().2;
        let mut z = vec![0.0; kc];
        if basket.is_empty() {
            return z;
        }
        for &l in basket {
            for (zc, &lc) in z.iter_mut().zip(self.l.row(l.index())) {
                *zc += lc;
            }
        }
        let inv = 1.0 / basket.len() as f64;
        z.iter_mut().for_each(|zc| *zc *= inv);
        z
    }

    /// The basket-conditioned transition score `x̂(u, i | B)` — the
    /// trilinear contraction is linear in `z`, so averaging the basket
    /// factors first is exact.
    pub fn score(&self, user: UserId, item: ItemId, basket: &[ItemId]) -> f64 {
        let z = self.basket_mean(basket);
        self.core
            .contract(self.u.row(user.index()), self.v.row(item.index()), &z)
    }

    /// True iff every parameter is finite.
    pub fn is_finite(&self) -> bool {
        self.core.is_finite() && self.u.is_finite() && self.v.is_finite() && self.l.is_finite()
    }
}

/// S-BPR trainer for [`TuckerFpmcModel`].
#[derive(Debug, Clone)]
pub struct TuckerFpmcTrainer {
    config: TuckerFpmcConfig,
}

impl TuckerFpmcTrainer {
    /// Create a trainer.
    pub fn new(config: TuckerFpmcConfig) -> Self {
        assert!(config.omega < config.window, "omega must be < window");
        assert!(
            config.core.0 > 0 && config.core.1 > 0 && config.core.2 > 0,
            "core dimensions must be positive"
        );
        TuckerFpmcTrainer { config }
    }

    /// Train on the extracted transitions.
    pub fn train(&self, train: &Dataset) -> TuckerFpmcModel {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let transitions: Vec<Transition> = collect_transitions(
            train,
            cfg.window,
            cfg.omega,
            cfg.negatives_per_positive,
            &mut rng,
        );
        let mut model = TuckerFpmcModel::init(&mut rng, cfg.num_users, cfg.num_items, cfg.core);
        if transitions.is_empty() {
            return model;
        }

        let a = cfg.alpha;
        let g = cfg.gamma;
        let steps = cfg.max_sweeps * transitions.len();
        for _ in 0..steps {
            let tr = &transitions[rng.gen_range(0..transitions.len())];
            let neg = tr.negs[rng.gen_range(0..tr.negs.len())];

            let z = model.basket_mean(&tr.basket);
            let x_old = model.u.row(tr.user.index()).to_vec();
            let yi_old = model.v.row(tr.pos.index()).to_vec();
            let yj_old = model.v.row(neg.index()).to_vec();

            let margin =
                model.core.contract(&x_old, &yi_old, &z) - model.core.contract(&x_old, &yj_old, &z);
            let delta = a * (1.0 - sigmoid(margin));

            // Gradients via mode contractions.
            let gx: Vec<f64> = model
                .core
                .contract_mode0(&yi_old, &z)
                .iter()
                .zip(model.core.contract_mode0(&yj_old, &z))
                .map(|(p, n)| p - n)
                .collect();
            let gyi = model.core.contract_mode1(&x_old, &z);
            let gz: Vec<f64> = model
                .core
                .contract_mode2(&x_old, &yi_old)
                .iter()
                .zip(model.core.contract_mode2(&x_old, &yj_old))
                .map(|(p, n)| p - n)
                .collect();

            // Factor updates with weight decay.
            {
                let row = model.u.row_mut(tr.user.index());
                for (r, gr) in row.iter_mut().zip(&gx) {
                    *r += delta * gr - a * g * *r;
                }
            }
            {
                let row = model.v.row_mut(tr.pos.index());
                for (r, gr) in row.iter_mut().zip(&gyi) {
                    *r += delta * gr - a * g * *r;
                }
            }
            {
                let row = model.v.row_mut(neg.index());
                for (r, gr) in row.iter_mut().zip(&gyi) {
                    *r += -delta * gr - a * g * *r;
                }
            }
            {
                let inv_b = 1.0 / tr.basket.len().max(1) as f64;
                for &l in &tr.basket {
                    let row = model.l.row_mut(l.index());
                    for (r, gr) in row.iter_mut().zip(&gz) {
                        *r += delta * gr * inv_b - a * g * *r;
                    }
                }
            }
            if cfg.train_core {
                // ∂margin/∂G = x ⊗ (y_i − y_j) ⊗ z. Unlike the factor rows
                // (decayed only when touched), the core would be decayed on
                // *every* step; a per-step multiplicative decay of (1 − αγ)
                // would shrink it by e^{−αγ·steps} ≈ 0 long before training
                // ends, so the tiny (k³-parameter) core is left unpenalised.
                let ydiff: Vec<f64> = yi_old.iter().zip(&yj_old).map(|(p, n)| p - n).collect();
                model.core.rank1_update(delta, &x_old, &ydiff, &z);
            }
        }
        model
    }
}

/// [`Recommender`] adapter: basket = distinct items of the live window.
#[derive(Debug, Clone)]
pub struct TuckerFpmcRecommender {
    model: TuckerFpmcModel,
}

impl TuckerFpmcRecommender {
    /// Wrap a trained model.
    pub fn new(model: TuckerFpmcModel) -> Self {
        TuckerFpmcRecommender { model }
    }

    /// Borrow the model.
    pub fn model(&self) -> &TuckerFpmcModel {
        &self.model
    }
}

impl Recommender for TuckerFpmcRecommender {
    fn name(&self) -> &str {
        "Tucker-FPMC"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        let mut basket: Vec<ItemId> = ctx.window.distinct_items().collect();
        basket.sort_unstable();
        self.model.score(ctx.user, item, &basket)
    }

    fn recommend(&self, ctx: &RecContext<'_>, n: usize) -> Vec<ItemId> {
        let mut basket: Vec<ItemId> = ctx.window.distinct_items().collect();
        basket.sort_unstable();
        let mut scored: Vec<(f64, ItemId)> = ctx
            .candidates()
            .into_iter()
            .map(|v| (self.model.score(ctx.user, v, &basket), v))
            .collect();
        rrc_features::recommend::top_n(&mut scored, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_datagen::GeneratorConfig;
    use rrc_features::TrainStats;
    use rrc_sequence::WindowState;

    fn config(d: &Dataset) -> TuckerFpmcConfig {
        TuckerFpmcConfig {
            core: (6, 6, 6),
            max_sweeps: 12,
            window: 30,
            omega: 3,
            negatives_per_positive: 5,
            ..TuckerFpmcConfig::new(d.num_users(), d.num_items())
        }
    }

    #[test]
    fn superdiagonal_core_matches_cp_score() {
        // With a frozen superdiagonal core (value 4), the score is the
        // scaled CP form 4·Σ_r U[u,r]·V[i,r]·z̄[r].
        let mut rng = StdRng::seed_from_u64(2);
        let m = TuckerFpmcModel::init(&mut rng, 2, 4, (3, 3, 3));
        let basket = [ItemId(1), ItemId(2)];
        let z = m.basket_mean(&basket);
        let cp: f64 = 4.0
            * (0..3)
                .map(|r| m.u.row(0)[r] * m.v.row(3)[r] * z[r])
                .sum::<f64>();
        assert!((m.score(UserId(0), ItemId(3), &basket) - cp).abs() < 1e-12);
        // Empty basket scores 0 (z̄ = 0).
        assert_eq!(m.score(UserId(0), ItemId(3), &[]), 0.0);
    }

    #[test]
    fn training_improves_pairwise_accuracy() {
        let data = GeneratorConfig::tiny().with_seed(23).generate();
        let cfg = config(&data);
        let trainer = TuckerFpmcTrainer::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let transitions = collect_transitions(&data, cfg.window, cfg.omega, 5, &mut rng);
        assert!(!transitions.is_empty());
        let init = TuckerFpmcModel::init(&mut rng, cfg.num_users, cfg.num_items, cfg.core);
        let trained = trainer.train(&data);
        assert!(trained.is_finite());

        let acc = |m: &TuckerFpmcModel| {
            let mut wins = 0;
            let mut total = 0;
            for tr in &transitions {
                for &neg in &tr.negs {
                    if m.score(tr.user, tr.pos, &tr.basket) > m.score(tr.user, neg, &tr.basket) {
                        wins += 1;
                    }
                    total += 1;
                }
            }
            wins as f64 / total as f64
        };
        let before = acc(&init);
        let after = acc(&trained);
        assert!(after > before, "Tucker-FPMC accuracy {before} → {after}");
        assert!(after > 0.6, "trained accuracy {after}");
    }

    #[test]
    fn frozen_core_stays_superdiagonal() {
        let data = GeneratorConfig::tiny().with_seed(29).generate();
        let mut cfg = config(&data);
        cfg.train_core = false;
        let trained = TuckerFpmcTrainer::new(cfg).train(&data);
        let core = trained.core();
        for a in 0..6 {
            for b in 0..6 {
                for c in 0..6 {
                    let expect = if a == b && b == c { 4.0 } else { 0.0 };
                    assert_eq!(core[(a, b, c)], expect);
                }
            }
        }
    }

    #[test]
    fn trained_core_departs_from_superdiagonal() {
        let data = GeneratorConfig::tiny().with_seed(29).generate();
        let trained = TuckerFpmcTrainer::new(config(&data)).train(&data);
        let core = trained.core();
        let mut off_diag_mass = 0.0;
        for a in 0..6 {
            for b in 0..6 {
                for c in 0..6 {
                    if !(a == b && b == c) {
                        off_diag_mass += core[(a, b, c)].abs();
                    }
                }
            }
        }
        assert!(off_diag_mass > 0.0, "core never updated");
    }

    #[test]
    fn recommender_respects_candidates() {
        let data = GeneratorConfig::tiny().with_seed(31).generate();
        let model = TuckerFpmcTrainer::new(config(&data)).train(&data);
        let rec = TuckerFpmcRecommender::new(model);
        let stats = TrainStats::compute(&data, 30);
        let user = UserId(0);
        let window = WindowState::warmed(30, data.sequence(user).events());
        let ctx = RecContext {
            user,
            window: &window,
            stats: &stats,
            omega: 3,
        };
        let top = rec.recommend(&ctx, 5);
        let candidates = ctx.candidates();
        for v in &top {
            assert!(candidates.contains(v));
        }
        assert_eq!(rec.name(), "Tucker-FPMC");
        assert!(rec.model().is_finite());
    }
    // temporary probe appended to fpmc_tucker tests
}
