//! **DYRC** — the mixed-weight repeat-consumption model of Anderson et al.
//! ("The dynamics of repeat consumption", WWW 2014), the strongest
//! non-factorisation baseline in the paper's comparison (§5.2, §5.3).
//!
//! DYRC treats each repeat event as a *choice* among the window candidates
//! and models the choice probability as a softmax over a weighted blend of
//! item quality and recency:
//!
//! ```text
//! P(choose v | W) ∝ exp(w_q · q̄_v + w_r · 1/gap(v))
//! ```
//!
//! The latent weights `(w_q, w_r)` are learned by maximising the
//! log-likelihood of the observed choices with full-batch gradient ascent —
//! matching the paper's description of DYRC as "a mixed weighted scheme
//! [that] learns the latent weights of item popularity and recency gap by
//! maximizing a log-likelihood function".

use rrc_features::{RecContext, Recommender, TrainStats};
use rrc_sequence::{classify, ConsumptionKind, Dataset, ItemId, WindowState};

/// Training parameters for DYRC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DyrcConfig {
    /// Window capacity `|W|`.
    pub window: usize,
    /// Minimum gap Ω for eligible choice events.
    pub omega: usize,
    /// Gradient-ascent step size.
    pub learning_rate: f64,
    /// Full-batch epochs.
    pub epochs: usize,
}

impl Default for DyrcConfig {
    fn default() -> Self {
        DyrcConfig {
            window: 100,
            omega: 10,
            learning_rate: 0.5,
            epochs: 200,
        }
    }
}

/// The learned mixed weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DyrcModel {
    /// Weight on normalised item quality `q̄_v`.
    pub w_quality: f64,
    /// Weight on hyperbolic recency `1/gap`.
    pub w_recency: f64,
}

impl DyrcModel {
    /// The blended score `w_q · q + w_r · rec` (the softmax logit).
    #[inline]
    pub fn logit(&self, quality: f64, recency: f64) -> f64 {
        self.w_quality * quality + self.w_recency * recency
    }
}

/// One observed choice: which candidate was reconsumed and every
/// candidate's `(quality, recency)` pair at that moment.
#[derive(Debug, Clone)]
struct ChoiceEvent {
    chosen: usize,
    feats: Vec<[f64; 2]>,
}

/// Maximum-likelihood trainer for [`DyrcModel`].
#[derive(Debug, Clone)]
pub struct DyrcTrainer {
    config: DyrcConfig,
}

impl DyrcTrainer {
    /// Create a trainer.
    pub fn new(config: DyrcConfig) -> Self {
        assert!(config.omega < config.window, "omega must be < window");
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        DyrcTrainer { config }
    }

    /// Extract choice events and fit the two weights.
    pub fn train(&self, train: &Dataset, stats: &TrainStats) -> DyrcModel {
        let events = self.collect_events(train, stats);
        let mut model = DyrcModel {
            w_quality: 0.0,
            w_recency: 0.0,
        };
        if events.is_empty() {
            return model;
        }
        let n = events.len() as f64;
        for _ in 0..self.config.epochs {
            let mut grad_q = 0.0;
            let mut grad_r = 0.0;
            for ev in &events {
                // Softmax over candidates (max-shifted).
                let logits: Vec<f64> = ev.feats.iter().map(|f| model.logit(f[0], f[1])).collect();
                let m = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> = logits.iter().map(|&l| (l - m).exp()).collect();
                let z: f64 = exps.iter().sum();
                // ∇ log P(chosen) = x_chosen − E_p[x].
                let mut eq = 0.0;
                let mut er = 0.0;
                for (f, e) in ev.feats.iter().zip(exps.iter()) {
                    let p = e / z;
                    eq += p * f[0];
                    er += p * f[1];
                }
                grad_q += ev.feats[ev.chosen][0] - eq;
                grad_r += ev.feats[ev.chosen][1] - er;
            }
            model.w_quality += self.config.learning_rate * grad_q / n;
            model.w_recency += self.config.learning_rate * grad_r / n;
        }
        model
    }

    /// Mean per-event log-likelihood of a model on the training choices
    /// (exposed for convergence tests).
    pub fn log_likelihood(&self, train: &Dataset, stats: &TrainStats, model: &DyrcModel) -> f64 {
        let events = self.collect_events(train, stats);
        if events.is_empty() {
            return 0.0;
        }
        let mut ll = 0.0;
        for ev in &events {
            let logits: Vec<f64> = ev.feats.iter().map(|f| model.logit(f[0], f[1])).collect();
            let m = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let z: f64 = logits.iter().map(|&l| (l - m).exp()).sum();
            ll += logits[ev.chosen] - m - z.ln();
        }
        ll / events.len() as f64
    }

    fn collect_events(&self, train: &Dataset, stats: &TrainStats) -> Vec<ChoiceEvent> {
        let mut events = Vec::new();
        for (_, seq) in train.iter() {
            let mut win = WindowState::new(self.config.window);
            for &item in seq.events() {
                if classify(&win, item, self.config.omega) == ConsumptionKind::EligibleRepeat {
                    let candidates = win.eligible_candidates(self.config.omega);
                    if candidates.len() >= 2 {
                        let t = win.time() as f64;
                        let feats: Vec<[f64; 2]> = candidates
                            .iter()
                            .map(|&v| {
                                let gap = t - win.last_seen(v).expect("candidate in window") as f64;
                                [stats.quality(v), 1.0 / gap.max(1.0)]
                            })
                            .collect();
                        let chosen = candidates
                            .iter()
                            .position(|&v| v == item)
                            .expect("eligible repeat is a candidate");
                        events.push(ChoiceEvent { chosen, feats });
                    }
                }
                win.push(item);
            }
        }
        events
    }
}

/// [`Recommender`] adapter for a trained DYRC model.
#[derive(Debug, Clone, Copy)]
pub struct DyrcRecommender {
    model: DyrcModel,
}

impl DyrcRecommender {
    /// Wrap a trained model.
    pub fn new(model: DyrcModel) -> Self {
        DyrcRecommender { model }
    }

    /// Borrow the model.
    pub fn model(&self) -> &DyrcModel {
        &self.model
    }
}

impl Recommender for DyrcRecommender {
    fn name(&self) -> &str {
        "DYRC"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        let recency = match ctx.window.last_seen(item) {
            None => 0.0,
            Some(last) => 1.0 / ((ctx.window.time() - last) as f64).max(1.0),
        };
        self.model.logit(ctx.stats.quality(item), recency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_datagen::GeneratorConfig;
    use rrc_sequence::{Sequence, UserId};

    fn small_config() -> DyrcConfig {
        DyrcConfig {
            window: 30,
            omega: 3,
            learning_rate: 0.5,
            epochs: 150,
        }
    }

    #[test]
    fn learns_positive_quality_weight_on_quality_driven_data() {
        // Item 0 is both frequent and what gets reconsumed.
        let d = Dataset::new(
            vec![Sequence::from_raw(vec![
                0, 1, 2, 3, 0, 4, 5, 6, 0, 7, 1, 2, 0, 3, 4, 0,
            ])],
            8,
        );
        let stats = TrainStats::compute(&d, 30);
        let trainer = DyrcTrainer::new(small_config());
        let model = trainer.train(&d, &stats);
        assert!(
            model.w_quality > 0.0,
            "quality weight should be positive: {model:?}"
        );
    }

    #[test]
    fn training_improves_log_likelihood() {
        let d = GeneratorConfig::tiny().with_seed(3).generate();
        let stats = TrainStats::compute(&d, 30);
        let trainer = DyrcTrainer::new(small_config());
        let zero = DyrcModel {
            w_quality: 0.0,
            w_recency: 0.0,
        };
        let trained = trainer.train(&d, &stats);
        let ll0 = trainer.log_likelihood(&d, &stats, &zero);
        let ll1 = trainer.log_likelihood(&d, &stats, &trained);
        assert!(ll1 > ll0, "LL should improve: {ll0} → {ll1}");
    }

    #[test]
    fn empty_data_returns_zero_model() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 2])], 3);
        let stats = TrainStats::compute(&d, 30);
        let model = DyrcTrainer::new(small_config()).train(&d, &stats);
        assert_eq!(model.w_quality, 0.0);
        assert_eq!(model.w_recency, 0.0);
    }

    #[test]
    fn recommender_scores_blend_quality_and_recency() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 0, 0, 1])], 4);
        let stats = TrainStats::compute(&d, 30);
        let model = DyrcModel {
            w_quality: 1.0,
            w_recency: 1.0,
        };
        let rec = DyrcRecommender::new(model);
        let w = WindowState::warmed(30, &[0, 1, 2, 2, 2].map(ItemId));
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 1,
        };
        // item 0: quality 1.0 (most frequent), gap 5 → 1.0 + 0.2.
        assert!((rec.score(&ctx, ItemId(0)) - 1.2).abs() < 1e-12);
        // never-consumed item: recency 0, quality from stats.
        assert!((rec.score(&ctx, ItemId(3)) - stats.quality(ItemId(3))).abs() < 1e-12);
        assert_eq!(rec.name(), "DYRC");
        assert_eq!(rec.model().w_quality, 1.0);
    }

    #[test]
    fn deterministic_training() {
        let d = GeneratorConfig::tiny().with_seed(8).generate();
        let stats = TrainStats::compute(&d, 30);
        let trainer = DyrcTrainer::new(small_config());
        assert_eq!(trainer.train(&d, &stats), trainer.train(&d, &stats));
    }

    #[test]
    #[should_panic(expected = "omega must be < window")]
    fn bad_config_rejected() {
        DyrcTrainer::new(DyrcConfig {
            window: 5,
            omega: 5,
            ..DyrcConfig::default()
        });
    }
}
