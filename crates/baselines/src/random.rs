//! The **Random** baseline: uniform recommendation from the eligible
//! candidates, "no weighting scheme on the items" (§5.2).

use rrc_features::{RecContext, Recommender};
use rrc_sequence::ItemId;

/// Scores every candidate with a deterministic pseudo-random hash of
/// `(seed, user, time, item)`, which makes the "random" ranking
/// reproducible across runs and across threads — important for the
/// evaluation harness — while remaining uniform in distribution.
#[derive(Debug, Clone, Copy)]
pub struct RandomRecommender {
    seed: u64,
}

impl RandomRecommender {
    /// A random recommender with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomRecommender { seed }
    }
}

impl Default for RandomRecommender {
    fn default() -> Self {
        Self::new(0xDECAF)
    }
}

/// SplitMix64 finaliser: a high-quality 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Recommender for RandomRecommender {
    fn name(&self) -> &str {
        "Random"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        let h = mix(self.seed
            ^ mix((ctx.user.0 as u64) << 32 | item.0 as u64)
            ^ mix(ctx.window.time() as u64));
        // Map to [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_features::TrainStats;
    use rrc_sequence::{Dataset, Sequence, UserId, WindowState};

    fn ctx_fixture() -> (TrainStats, WindowState) {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 2, 3, 4, 5])], 8);
        let stats = TrainStats::compute(&d, 10);
        let w = WindowState::warmed(10, d.sequence(UserId(0)).events());
        (stats, w)
    }

    #[test]
    fn scores_are_deterministic_and_in_unit_interval() {
        let (stats, w) = ctx_fixture();
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 1,
        };
        let r = RandomRecommender::new(7);
        for raw in 0..8u32 {
            let a = r.score(&ctx, ItemId(raw));
            let b = r.score(&ctx, ItemId(raw));
            assert_eq!(a, b);
            assert!((0.0..1.0).contains(&a));
        }
    }

    #[test]
    fn different_items_get_different_scores() {
        let (stats, w) = ctx_fixture();
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 1,
        };
        let r = RandomRecommender::default();
        let scores: Vec<f64> = (0..8u32).map(|i| r.score(&ctx, ItemId(i))).collect();
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            8,
            "hash collisions in tiny domain: {scores:?}"
        );
    }

    #[test]
    fn recommendation_covers_eligible_candidates() {
        let (stats, w) = ctx_fixture();
        let ctx = RecContext {
            user: UserId(0),
            window: &w,
            stats: &stats,
            omega: 2,
        };
        let r = RandomRecommender::default();
        let rec = r.recommend(&ctx, 100);
        let mut expected = ctx.candidates();
        let mut got = rec.clone();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert_eq!(r.name(), "Random");
    }

    #[test]
    fn ranking_changes_with_time() {
        // Same candidates, later time → different permutation (almost
        // surely). This is what distinguishes Random from a fixed order.
        let (stats, mut w) = ctx_fixture();
        let r = RandomRecommender::default();
        let before = {
            let ctx = RecContext {
                user: UserId(0),
                window: &w,
                stats: &stats,
                omega: 1,
            };
            r.recommend(&ctx, 5)
        };
        w.push(ItemId(7));
        let after = {
            let ctx = RecContext {
                user: UserId(0),
                window: &w,
                stats: &stats,
                omega: 1,
            };
            r.recommend(&ctx, 5)
        };
        assert_ne!(before, after);
    }
}
