//! Baseline recommenders for the RRC problem (§5.2 of the paper).
//!
//! | baseline | strategy |
//! |---|---|
//! | [`RandomRecommender`] | uniform over the eligible window candidates |
//! | [`PopRecommender`] | rank by global item popularity `ln(1 + n_v)` |
//! | [`RecencyRecommender`] | rank by exponential recency `e^{−Δt_uv}` |
//! | [`DyrcModel`] / [`DyrcRecommender`] | Anderson et al.'s mixed-weight quality × recency choice model, weights fit by maximum likelihood |
//! | [`FpmcModel`] / [`FpmcRecommender`] | factorized personalized Markov chains (Rendle et al. 2010), adapted to score window→item transitions, trained with S-BPR |
//! | [`MarkovChainModel`] / [`MarkovRecommender`] | unfactorised first-order Markov chain (ablation for FPMC, not in the paper's table) |
//! | [`ForgettingMarkovModel`] / [`ForgettingMarkovRecommender`] | hyperbolic interest-forgetting Markov (the paper's ref [14]; ablation) |
//! | [`TuckerFpmcModel`] / [`TuckerFpmcRecommender`] | the full Tucker-core FPMC the paper describes; verifies Rendle's claim that the pairwise special case suffices |
//!
//! The **Survival** baseline lives in its own crate (`rrc-survival`) because
//! it carries a full Cox proportional-hazards substrate.

pub mod dyrc;
pub mod forgetting;
pub mod fpmc;
pub mod fpmc_tucker;
pub mod markov;
pub mod pop;
pub mod random;
pub mod recency;
pub mod transitions;

pub use dyrc::{DyrcConfig, DyrcModel, DyrcRecommender, DyrcTrainer};
pub use forgetting::{ForgettingMarkovModel, ForgettingMarkovRecommender};
pub use fpmc::{FpmcConfig, FpmcModel, FpmcRecommender, FpmcTrainer};
pub use fpmc_tucker::{
    TuckerFpmcConfig, TuckerFpmcModel, TuckerFpmcRecommender, TuckerFpmcTrainer,
};
pub use markov::{MarkovChainModel, MarkovRecommender};
pub use pop::PopRecommender;
pub use random::RandomRecommender;
pub use recency::RecencyRecommender;
