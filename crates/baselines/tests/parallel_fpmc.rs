//! Parallel-training equivalence for the FPMC baseline: one shard is
//! identical to the serial trainer, sharded output is a pure function of
//! `(seed, shards)`, and Hogwild stays finite while still learning.

use rrc_baselines::fpmc::{FpmcConfig, FpmcModel, FpmcTrainer};
use rrc_core::parallel::ParallelConfig;
use rrc_datagen::GeneratorConfig;
use rrc_sequence::Dataset;

fn fixture() -> Dataset {
    GeneratorConfig::tiny().with_seed(13).generate()
}

fn config(d: &Dataset) -> FpmcConfig {
    FpmcConfig {
        k: 8,
        max_sweeps: 10,
        window: 30,
        omega: 3,
        negatives_per_positive: 5,
        ..FpmcConfig::new(d.num_users(), d.num_items())
    }
}

#[test]
fn fpmc_sharded_one_shard_matches_serial() {
    let data = fixture();
    let trainer = FpmcTrainer::new(config(&data));
    let serial = trainer.train(&data);
    let par = trainer.train_parallel(&data, &ParallelConfig::sharded(1));
    assert_eq!(serial, par, "FPMC 1-shard must equal serial training");
}

#[test]
fn fpmc_sharded_is_reproducible_and_thread_invariant() {
    let data = fixture();
    let trainer = FpmcTrainer::new(config(&data));
    let reference = trainer.train_parallel(&data, &ParallelConfig::sharded(1).with_shards(4));
    for threads in [2, 4, 8] {
        let run = trainer.train_parallel(&data, &ParallelConfig::sharded(threads).with_shards(4));
        assert_eq!(reference, run, "FPMC threads={threads} diverged");
    }
    // And run-to-run.
    let again = trainer.train_parallel(&data, &ParallelConfig::sharded(4));
    let twice = trainer.train_parallel(&data, &ParallelConfig::sharded(4));
    assert_eq!(again, twice);
}

#[test]
fn fpmc_hogwild_stays_finite_and_learns() {
    let data = fixture();
    let cfg = config(&data);
    let trainer = FpmcTrainer::new(cfg.clone());
    let model = trainer.train_parallel(&data, &ParallelConfig::hogwild(4));
    assert!(
        model.is_finite(),
        "racy FPMC updates must never produce NaN"
    );

    // Pairwise accuracy on the extracted transitions must beat chance by a
    // wide margin, like the serial trainer's.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed);
    let transitions = rrc_baselines::transitions::collect_transitions(
        &data,
        cfg.window,
        cfg.omega,
        cfg.negatives_per_positive,
        &mut rng,
    );
    assert!(!transitions.is_empty());
    let acc = pairwise_accuracy(&model, &transitions);
    assert!(acc > 0.6, "hogwild FPMC accuracy {acc}");
}

fn pairwise_accuracy(m: &FpmcModel, transitions: &[rrc_baselines::transitions::Transition]) -> f64 {
    let mut wins = 0usize;
    let mut total = 0usize;
    for tr in transitions {
        for &neg in &tr.negs {
            if m.score(tr.user, tr.pos, &tr.basket) > m.score(tr.user, neg, &tr.basket) {
                wins += 1;
            }
            total += 1;
        }
    }
    wins as f64 / total as f64
}
