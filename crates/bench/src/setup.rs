//! Shared experiment setup: dataset preparation and run-wide options.

use rrc_core::{ParallelConfig, TrainMode};
use rrc_datagen::{DatasetKind, GeneratorConfig};
use rrc_features::TrainStats;
use rrc_sequence::{Dataset, SplitDataset};

/// Options shared by every experiment run. Defaults reproduce the paper's
/// settings (Table 4: `|W| = 100`, `Ω = 10`, `S = 10`, `K = 40`) at a
/// laptop-friendly data scale.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Scale factor for the Gowalla-like preset.
    pub scale_gowalla: f64,
    /// Scale factor for the Last.fm-like preset.
    pub scale_lastfm: f64,
    /// Window capacity `|W|`.
    pub window: usize,
    /// Minimum gap Ω.
    pub omega: usize,
    /// Negatives per positive `S`.
    pub s: usize,
    /// Latent dimension `K`.
    pub k: usize,
    /// TS-PPR sweep cap.
    pub max_sweeps: usize,
    /// Threads for parallel evaluation and (non-serial) training.
    pub threads: usize,
    /// How SGD training is executed (serial / sharded / hogwild).
    pub train_mode: TrainMode,
    /// Base RNG seed.
    pub seed: u64,
    /// Save every trained TS-PPR model to `{base}.{dataset}.rrcm`.
    pub save_model: Option<String>,
    /// Load TS-PPR models from `{base}.{dataset}.rrcm` instead of
    /// training (falls back to training when the file is absent).
    pub load_model: Option<String>,
    /// Write a training checkpoint every N convergence checks (0 = off).
    pub checkpoint_every: usize,
    /// Base path for checkpoint files (`{base}.{dataset}.ckpt`).
    pub checkpoint_path: String,
    /// Resume training from `{base}.{dataset}.ckpt` when the file exists.
    pub resume: Option<String>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale_gowalla: 0.02,
            scale_lastfm: 0.05,
            window: 100,
            omega: 10,
            s: 10,
            k: 40,
            max_sweeps: 60,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            // Serial keeps default experiment output identical to the
            // original single-threaded driver; opt in with --train-mode.
            train_mode: TrainMode::Serial,
            seed: 20170419, // ICDE 2017
            save_model: None,
            load_model: None,
            checkpoint_every: 0,
            checkpoint_path: String::from("tsppr-checkpoint"),
            resume: None,
        }
    }
}

impl RunOptions {
    /// A reduced configuration for smoke tests and `--fast` runs.
    pub fn fast() -> Self {
        RunOptions {
            scale_gowalla: 0.006,
            scale_lastfm: 0.02,
            window: 50,
            omega: 5,
            s: 5,
            k: 16,
            max_sweeps: 15,
            ..Self::default()
        }
    }

    /// The parallel-training configuration these options describe.
    pub fn parallel(&self) -> ParallelConfig {
        ParallelConfig::new(self.train_mode, self.threads)
    }

    /// Model file for `kind` under the `--save-model`/`--load-model` base.
    pub fn model_file(base: &str, kind: DatasetKind) -> String {
        format!("{base}.{kind}.rrcm")
    }

    /// Checkpoint file for `kind` under a checkpoint base path.
    pub fn checkpoint_file(base: &str, kind: DatasetKind) -> String {
        format!("{base}.{kind}.ckpt")
    }

    /// Checkpointing and resume require a deterministic trainer; Hogwild
    /// cannot honour the bit-identical resume contract.
    pub fn validate_persistence(&self) -> Result<(), String> {
        if self.train_mode == TrainMode::Hogwild
            && (self.checkpoint_every > 0 || self.resume.is_some())
        {
            return Err(
                "--checkpoint-every/--resume require a deterministic trainer; \
                 use --train-mode serial or sharded"
                    .to_string(),
            );
        }
        Ok(())
    }
}

/// A prepared dataset: generated, filtered (`|S_u| × 70% ≥ |W|`), split
/// 70/30, with training statistics computed.
pub struct ExperimentData {
    /// Which preset this is.
    pub kind: DatasetKind,
    /// The full filtered dataset.
    pub data: Dataset,
    /// The per-user 70/30 split.
    pub split: SplitDataset,
    /// Training-split statistics.
    pub stats: TrainStats,
}

/// Generate + filter + split + compute stats for one preset.
pub fn prepare(kind: DatasetKind, opts: &RunOptions) -> ExperimentData {
    let config = match kind {
        DatasetKind::Gowalla => GeneratorConfig::gowalla_like(opts.scale_gowalla),
        DatasetKind::Lastfm => GeneratorConfig::lastfm_like(opts.scale_lastfm),
        DatasetKind::Custom => GeneratorConfig::tiny(),
    }
    .with_seed(opts.seed ^ kind_seed(kind));
    let raw = config.generate();
    let data = raw.filter_min_train_len(0.7, opts.window);
    assert!(
        data.num_users() > 0,
        "filter removed every user; lower --window or raise --scale"
    );
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, opts.window);
    ExperimentData {
        kind,
        data,
        split,
        stats,
    }
}

fn kind_seed(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::Gowalla => 0xA0,
        DatasetKind::Lastfm => 0x1F,
        DatasetKind::Custom => 0xCC,
    }
}
