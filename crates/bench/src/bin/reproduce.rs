//! Reproduce the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p rrc-bench --bin reproduce -- all
//! cargo run --release -p rrc-bench --bin reproduce -- fig5 table3 --fast
//! cargo run --release -p rrc-bench --bin reproduce -- fig9 --scale-gowalla 0.05
//! ```

use rrc_bench::experiments::{self, accuracy, ALL_EXPERIMENTS};
use rrc_bench::report_sink;
use rrc_bench::setup::RunOptions;
use rrc_obs::{Json, RunReport};

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [EXPERIMENT ...] [OPTIONS]\n\n\
         experiments: all, table2, fig4, fig5, fig6, table3, fig7, fig8, fig9,\n\
         \x20            fig10, fig11, fig12, fig13, table5\n\n\
         options:\n\
         \x20 --fast                 reduced scale & grids (smoke-test mode)\n\
         \x20 --scale-gowalla <f>    Gowalla-like preset scale (default 0.02)\n\
         \x20 --scale-lastfm <f>     Last.fm-like preset scale (default 0.05)\n\
         \x20 --window <n>           window capacity |W| (default 100)\n\
         \x20 --omega <n>            minimum gap Ω (default 10)\n\
         \x20 --s <n>                negatives per positive S (default 10)\n\
         \x20 --k <n>                latent dimension K (default 40)\n\
         \x20 --sweeps <n>           TS-PPR sweep cap (default 40)\n\
         \x20 --threads <n>          evaluation/training threads (default: all cores)\n\
         \x20 --train-mode <m>       serial | sharded | hogwild (default serial)\n\
         \x20 --seed <n>             base RNG seed\n\
         \x20 --json <path>          write a machine-readable RunReport here\n\
         \x20 --save-model <base>    save trained TS-PPR models to <base>.<dataset>.rrcm\n\
         \x20 --load-model <base>    load models from <base>.<dataset>.rrcm instead of training\n\
         \x20 --checkpoint-every <n> checkpoint training every n convergence checks\n\
         \x20 --checkpoint-path <b>  checkpoint base path (default tsppr-checkpoint)\n\
         \x20 --resume <base>        resume training from <base>.<dataset>.ckpt"
    );
    std::process::exit(2);
}

fn parse_args() -> (Vec<String>, RunOptions, Option<String>) {
    let mut names = Vec::new();
    let mut opts = RunOptions::default();
    let mut args = std::env::args().skip(1).peekable();
    let mut fast = false;
    let mut json = None;
    let mut overrides: Vec<(String, String)> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                let value = args.next().unwrap_or_else(|| usage());
                overrides.push((flag.to_string(), value));
            }
            name => names.push(name.to_string()),
        }
    }
    if fast {
        opts = RunOptions::fast();
    }
    for (flag, value) in overrides {
        if flag == "--json" {
            json = Some(value);
            continue;
        }
        let parse_f = || value.parse::<f64>().unwrap_or_else(|_| usage());
        let parse_u = || value.parse::<usize>().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--scale-gowalla" => opts.scale_gowalla = parse_f(),
            "--scale-lastfm" => opts.scale_lastfm = parse_f(),
            "--window" => opts.window = parse_u(),
            "--omega" => opts.omega = parse_u(),
            "--s" => opts.s = parse_u(),
            "--k" => opts.k = parse_u(),
            "--sweeps" => opts.max_sweeps = parse_u(),
            "--threads" => opts.threads = parse_u(),
            "--train-mode" => opts.train_mode = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            "--save-model" => opts.save_model = Some(value),
            "--load-model" => opts.load_model = Some(value),
            "--checkpoint-every" => opts.checkpoint_every = parse_u(),
            "--checkpoint-path" => opts.checkpoint_path = value.clone(),
            "--resume" => opts.resume = Some(value),
            _ => usage(),
        }
    }
    if names.is_empty() {
        usage();
    }
    if let Err(why) = opts.validate_persistence() {
        eprintln!("error: {why}");
        usage();
    }
    (names, opts, json)
}

fn main() {
    let (names, opts, json_path) = parse_args();
    eprintln!(
        "# options: scale(gowalla)={}, scale(lastfm)={}, |W|={}, Ω={}, S={}, K={}, sweeps={}, threads={}, train={}",
        opts.scale_gowalla,
        opts.scale_lastfm,
        opts.window,
        opts.omega,
        opts.s,
        opts.k,
        opts.max_sweeps,
        opts.threads,
        opts.train_mode
    );

    let expanded: Vec<String> = if names.iter().any(|n| n == "all") {
        // "all" covers every paper table/figure; extra experiment names on
        // the command line (ablation, mixture, ci, ...) are appended.
        let mut list: Vec<String> = ALL_EXPERIMENTS
            .iter()
            .map(|s| s.to_string())
            .chain(std::iter::once("table5".to_string()))
            .collect();
        for n in &names {
            if n != "all" && !list.contains(n) {
                list.push(n.clone());
            }
        }
        list
    } else {
        names
    };

    // `all` computes the expensive accuracy comparison once and renders
    // fig5 / fig6 / table3 from it.
    let accuracy_bundle = ["fig5", "fig6", "table3"];
    let wants_bundle = expanded
        .iter()
        .filter(|n| accuracy_bundle.contains(&n.as_str()))
        .count();
    let shared = if wants_bundle >= 2 {
        eprintln!("# computing shared accuracy comparison (fig5/fig6/table3)...");
        Some(accuracy::run_comparison(&opts))
    } else {
        None
    };

    let mut timings: Vec<(String, f64)> = Vec::new();
    for name in &expanded {
        let started = std::time::Instant::now();
        let output = match (name.as_str(), &shared) {
            ("fig5", Some(c)) => Some(accuracy::render_fig5(c, &opts)),
            ("fig6", Some(c)) => Some(accuracy::render_fig6(c, &opts)),
            ("table3", Some(c)) => Some(accuracy::render_table3(c)),
            _ => experiments::run(name, &opts),
        };
        match output {
            Some(text) => {
                let wall_s = started.elapsed().as_secs_f64();
                println!("{}", "=".repeat(78));
                println!("{text}");
                eprintln!("# {name} finished in {wall_s:.1}s");
                timings.push((name.clone(), wall_s));
            }
            None => {
                eprintln!("unknown experiment: {name}");
                usage();
            }
        }
    }

    if let Some(path) = json_path {
        let mut report = RunReport::new("reproduce")
            .config("scale_gowalla", Json::F64(opts.scale_gowalla))
            .config("scale_lastfm", Json::F64(opts.scale_lastfm))
            .config("window", Json::from(opts.window))
            .config("omega", Json::from(opts.omega))
            .config("s", Json::from(opts.s))
            .config("k", Json::from(opts.k))
            .config("max_sweeps", Json::from(opts.max_sweeps))
            .config("threads", Json::from(opts.threads))
            .config(
                "train_mode",
                Json::from(opts.train_mode.to_string().as_str()),
            )
            .config("seed", Json::from(opts.seed))
            .config(
                "experiments",
                Json::Arr(expanded.iter().map(|n| Json::from(n.as_str())).collect()),
            );
        report.add_section(
            "experiments",
            Json::Arr(
                timings
                    .iter()
                    .map(|(name, wall_s)| {
                        Json::obj([
                            ("name", Json::from(name.as_str())),
                            ("wall_s", Json::F64(*wall_s)),
                        ])
                    })
                    .collect(),
            ),
        );
        // Structured payloads individual experiments pushed (e.g. fig12's
        // convergence trace). Duplicate keys get a numeric suffix so every
        // payload survives in the report.
        let mut seen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
        for (key, payload) in report_sink::drain() {
            let n = seen.entry(key.clone()).or_insert(0);
            let section = if *n == 0 {
                key.clone()
            } else {
                format!("{key}#{n}")
            };
            *n += 1;
            report.add_section(&section, payload);
        }
        report.add_metrics(rrc_obs::global());
        match report.write_to(&path) {
            Ok(()) => eprintln!("# run report written to {path}"),
            Err(e) => {
                eprintln!("error: failed to write run report to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
