//! Reproduce the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p rrc-bench --bin reproduce -- all
//! cargo run --release -p rrc-bench --bin reproduce -- fig5 table3 --fast
//! cargo run --release -p rrc-bench --bin reproduce -- fig9 --scale-gowalla 0.05
//! ```

use rrc_bench::experiments::{self, accuracy, ALL_EXPERIMENTS};
use rrc_bench::setup::RunOptions;

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [EXPERIMENT ...] [OPTIONS]\n\n\
         experiments: all, table2, fig4, fig5, fig6, table3, fig7, fig8, fig9,\n\
         \x20            fig10, fig11, fig12, fig13, table5\n\n\
         options:\n\
         \x20 --fast                 reduced scale & grids (smoke-test mode)\n\
         \x20 --scale-gowalla <f>    Gowalla-like preset scale (default 0.02)\n\
         \x20 --scale-lastfm <f>     Last.fm-like preset scale (default 0.05)\n\
         \x20 --window <n>           window capacity |W| (default 100)\n\
         \x20 --omega <n>            minimum gap Ω (default 10)\n\
         \x20 --s <n>                negatives per positive S (default 10)\n\
         \x20 --k <n>                latent dimension K (default 40)\n\
         \x20 --sweeps <n>           TS-PPR sweep cap (default 40)\n\
         \x20 --threads <n>          evaluation threads (default: all cores)\n\
         \x20 --seed <n>             base RNG seed"
    );
    std::process::exit(2);
}

fn parse_args() -> (Vec<String>, RunOptions) {
    let mut names = Vec::new();
    let mut opts = RunOptions::default();
    let mut args = std::env::args().skip(1).peekable();
    let mut fast = false;
    let mut overrides: Vec<(String, String)> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                let value = args.next().unwrap_or_else(|| usage());
                overrides.push((flag.to_string(), value));
            }
            name => names.push(name.to_string()),
        }
    }
    if fast {
        opts = RunOptions::fast();
    }
    for (flag, value) in overrides {
        let parse_f = || value.parse::<f64>().unwrap_or_else(|_| usage());
        let parse_u = || value.parse::<usize>().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--scale-gowalla" => opts.scale_gowalla = parse_f(),
            "--scale-lastfm" => opts.scale_lastfm = parse_f(),
            "--window" => opts.window = parse_u(),
            "--omega" => opts.omega = parse_u(),
            "--s" => opts.s = parse_u(),
            "--k" => opts.k = parse_u(),
            "--sweeps" => opts.max_sweeps = parse_u(),
            "--threads" => opts.threads = parse_u(),
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if names.is_empty() {
        usage();
    }
    (names, opts)
}

fn main() {
    let (names, opts) = parse_args();
    eprintln!(
        "# options: scale(gowalla)={}, scale(lastfm)={}, |W|={}, Ω={}, S={}, K={}, sweeps={}, threads={}",
        opts.scale_gowalla,
        opts.scale_lastfm,
        opts.window,
        opts.omega,
        opts.s,
        opts.k,
        opts.max_sweeps,
        opts.threads
    );

    let expanded: Vec<String> = if names.iter().any(|n| n == "all") {
        // "all" covers every paper table/figure; extra experiment names on
        // the command line (ablation, mixture, ci, ...) are appended.
        let mut list: Vec<String> = ALL_EXPERIMENTS
            .iter()
            .map(|s| s.to_string())
            .chain(std::iter::once("table5".to_string()))
            .collect();
        for n in &names {
            if n != "all" && !list.contains(n) {
                list.push(n.clone());
            }
        }
        list
    } else {
        names
    };

    // `all` computes the expensive accuracy comparison once and renders
    // fig5 / fig6 / table3 from it.
    let accuracy_bundle = ["fig5", "fig6", "table3"];
    let wants_bundle = expanded
        .iter()
        .filter(|n| accuracy_bundle.contains(&n.as_str()))
        .count();
    let shared = if wants_bundle >= 2 {
        eprintln!("# computing shared accuracy comparison (fig5/fig6/table3)...");
        Some(accuracy::run_comparison(&opts))
    } else {
        None
    };

    for name in &expanded {
        let started = std::time::Instant::now();
        let output = match (name.as_str(), &shared) {
            ("fig5", Some(c)) => Some(accuracy::render_fig5(c, &opts)),
            ("fig6", Some(c)) => Some(accuracy::render_fig6(c, &opts)),
            ("table3", Some(c)) => Some(accuracy::render_table3(c)),
            _ => experiments::run(name, &opts),
        };
        match output {
            Some(text) => {
                println!("{}", "=".repeat(78));
                println!("{text}");
                eprintln!(
                    "# {name} finished in {:.1}s",
                    started.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!("unknown experiment: {name}");
                usage();
            }
        }
    }
}
