//! Calibration helper: train TS-PPR with explicit hyper-parameters and
//! print its accuracy next to the strongest baselines. Used while matching
//! the paper's result shapes; kept as a development tool.
//!
//! ```sh
//! cargo run --release -p rrc-bench --bin tune -- gowalla --sweeps 40 --k 40 --alpha 0.05
//! ```

use rrc_baselines::{
    DyrcConfig, DyrcRecommender, DyrcTrainer, PopRecommender, RandomRecommender, RecencyRecommender,
};
use rrc_bench::setup::{prepare, RunOptions};
use rrc_bench::zoo::{build_training_set, tsppr_config};
use rrc_core::{TsPprRecommender, TsPprTrainer};
use rrc_datagen::DatasetKind;
use rrc_eval::{evaluate_multi, EvalConfig};
use rrc_features::FeaturePipeline;

fn main() {
    let mut opts = RunOptions::fast();
    let mut kind = DatasetKind::Gowalla;
    let mut alpha = 0.05;
    let mut min_sweeps = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "gowalla" => kind = DatasetKind::Gowalla,
            "lastfm" => kind = DatasetKind::Lastfm,
            "--sweeps" => opts.max_sweeps = args.next().unwrap().parse().unwrap(),
            "--min-sweeps" => min_sweeps = Some(args.next().unwrap().parse().unwrap()),
            "--k" => opts.k = args.next().unwrap().parse().unwrap(),
            "--s" => opts.s = args.next().unwrap().parse().unwrap(),
            "--alpha" => alpha = args.next().unwrap().parse().unwrap(),
            "--scale" => {
                let v: f64 = args.next().unwrap().parse().unwrap();
                opts.scale_gowalla = v;
                opts.scale_lastfm = v;
            }
            "--window" => opts.window = args.next().unwrap().parse().unwrap(),
            "--omega" => opts.omega = args.next().unwrap().parse().unwrap(),
            "--seed" => opts.seed = args.next().unwrap().parse().unwrap(),
            other => panic!("unknown arg {other}"),
        }
    }
    let exp = prepare(kind, &opts);
    eprintln!(
        "[{kind}] {} users, {} events",
        exp.data.num_users(),
        exp.data.total_consumptions()
    );
    let cfg = EvalConfig {
        window: opts.window,
        omega: opts.omega,
    };
    let ns = [1, 5, 10];

    let t0 = std::time::Instant::now();
    let training = build_training_set(&exp, &opts, &FeaturePipeline::standard());
    let mut tc = tsppr_config(&exp, &opts).with_alpha(alpha);
    if let Some(m) = min_sweeps {
        tc.min_sweeps = m;
    }
    let (model, report) = TsPprTrainer::new(tc).train(&training);
    eprintln!(
        "TS-PPR: |D|={} steps={} converged={} r̃={:.3} ({:.1}s)",
        training.num_quadruples(),
        report.steps,
        report.converged,
        report.final_r_tilde(),
        t0.elapsed().as_secs_f64()
    );
    let tsppr = TsPprRecommender::new(model, FeaturePipeline::standard());

    let dyrc = DyrcRecommender::new(
        DyrcTrainer::new(DyrcConfig {
            window: opts.window,
            omega: opts.omega,
            ..DyrcConfig::default()
        })
        .train(&exp.split.train, &exp.stats),
    );
    eprintln!("DYRC weights: {:?}", dyrc.model());

    for (name, rec) in [
        ("TS-PPR", &tsppr as &dyn rrc_features::Recommender),
        ("DYRC", &dyrc),
        ("Pop", &PopRecommender),
        ("Recency", &RecencyRecommender),
        ("Random", &RandomRecommender::default()),
    ] {
        let r = evaluate_multi(rec, &exp.split, &exp.stats, &cfg, &ns);
        println!(
            "{:<8} MaAP {:.4} {:.4} {:.4} | MiAP {:.4} {:.4} {:.4}",
            name,
            r[0].maap(),
            r[1].maap(),
            r[2].maap(),
            r[0].miap(),
            r[1].miap(),
            r[2].miap()
        );
    }
}
