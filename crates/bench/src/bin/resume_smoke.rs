//! Crash/resume smoke test: prove that a training run killed at a
//! checkpoint and resumed is **bitwise identical** to one that was never
//! interrupted — for the serial trainer and the sharded-deterministic
//! trainer at 4 shards.
//!
//! For each mode the driver runs the Fig. 12 convergence workload three
//! ways:
//!
//! 1. **uninterrupted** — train to completion, save the model file;
//! 2. **killed** — same run with `--checkpoint-every 1`; the checkpoint
//!    sink aborts training right after the second snapshot hits disk
//!    (the SIGKILL moment — the process state is gone, only the
//!    checkpoint file survives);
//! 3. **resumed** — load the checkpoint back and train to completion,
//!    save the model file.
//!
//! Acceptance: the resumed model *file* is byte-for-byte equal to the
//! uninterrupted one (same parameter bits, same encoding), the parameter
//! hashes match, and the convergence-check traces (step, `r̃` bits, NLL
//! bits) are identical. The `--json` report carries numeric 0/1 `match`
//! fields so CI can assert them with `obs-check --min`.
//!
//! ```sh
//! cargo run --release -p rrc-bench --bin resume-smoke -- --json RESUME.json
//! ```

use rrc_bench::setup::{prepare, RunOptions};
use rrc_bench::zoo::{build_training_set, tsppr_config};
use rrc_core::{
    CheckpointOptions, ParallelConfig, ParallelTrainer, TrainCheckpoint, TrainMode, TrainReport,
    TsPprModel,
};
use rrc_datagen::DatasetKind;
use rrc_features::FeaturePipeline;
use rrc_obs::{Json, RunReport};
use rrc_sequence::{ItemId, UserId};

fn usage() -> ! {
    eprintln!("usage: resume-smoke [--full] [--seed N] [--shards N] [--json PATH] [--keep-files]");
    std::process::exit(2);
}

/// FNV-1a over every parameter's bit pattern (same definition as
/// train-bench's, so hashes are comparable across reports).
fn param_hash(m: &TsPprModel) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: f64| {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for u in 0..m.num_users() {
        let user = UserId(u as u32);
        m.user_factor(user).iter().copied().for_each(&mut eat);
        m.transform(user)
            .as_slice()
            .iter()
            .copied()
            .for_each(&mut eat);
    }
    for v in 0..m.num_items() {
        m.item_factor(ItemId(v as u32))
            .iter()
            .copied()
            .for_each(&mut eat);
    }
    h
}

fn trace(report: &TrainReport) -> Vec<(usize, u64, u64)> {
    report
        .checks
        .iter()
        .map(|c| (c.step, c.r_tilde.to_bits(), c.nll.to_bits()))
        .collect()
}

struct ModeOutcome {
    label: String,
    uninterrupted_steps: usize,
    killed_steps: usize,
    resumed_from_step: usize,
    hash_match: bool,
    file_match: bool,
    trace_match: bool,
}

fn run_mode(
    label: &str,
    mode: TrainMode,
    shards: usize,
    opts: &RunOptions,
    dir: &std::path::Path,
) -> ModeOutcome {
    let exp = prepare(DatasetKind::Gowalla, opts);
    let training = build_training_set(&exp, opts, &FeaturePipeline::standard());
    let cfg = tsppr_config(&exp, opts);
    let par = match mode {
        TrainMode::Serial => ParallelConfig::serial(),
        TrainMode::Sharded => ParallelConfig::sharded(shards).with_shards(shards),
        TrainMode::Hogwild => unreachable!("hogwild is not checkpointable"),
    };

    eprintln!("# [{label}] uninterrupted run...");
    let (full_model, full_report) = ParallelTrainer::new(cfg.clone(), par).train(&training);
    let full_path = dir.join(format!("{label}.full.rrcm"));
    rrc_store::save_model(&full_model, &[], &full_path).expect("save uninterrupted model");

    // Killed run: checkpoint every check, abort right after the second
    // snapshot is durable. Only the file survives — the in-memory
    // checkpoint is dropped, exactly like a SIGKILL.
    let ckpt_path = dir.join(format!("{label}.ckpt"));
    let mut sink = rrc_store::Checkpointer::new(&ckpt_path);
    let mut write = |ck: &TrainCheckpoint| {
        sink.write(ck).expect("checkpoint write");
        sink.written() < 2
    };
    eprintln!("# [{label}] checkpointed run, killing after 2 checkpoints...");
    let (_, killed_report) = ParallelTrainer::new(cfg.clone(), par).train_with(
        &training,
        None,
        Some(CheckpointOptions {
            every_checks: 1,
            sink: &mut write,
        }),
    );
    assert!(
        killed_report.steps < full_report.steps,
        "[{label}] the killed run must stop early \
         ({} vs {} steps) — raise the workload if checkpoint 2 is the last check",
        killed_report.steps,
        full_report.steps
    );

    eprintln!("# [{label}] resuming from {}...", ckpt_path.display());
    let ck = rrc_store::load_checkpoint(&ckpt_path).expect("load checkpoint");
    let resumed_from_step = ck.step;
    let (resumed_model, resumed_report) =
        ParallelTrainer::new(cfg, par).train_with(&training, Some(&ck), None);
    let resumed_path = dir.join(format!("{label}.resumed.rrcm"));
    rrc_store::save_model(&resumed_model, &[], &resumed_path).expect("save resumed model");

    let hash_match = param_hash(&full_model) == param_hash(&resumed_model);
    let file_match = std::fs::read(&full_path).expect("read uninterrupted model file")
        == std::fs::read(&resumed_path).expect("read resumed model file");
    let trace_match = trace(&full_report) == trace(&resumed_report)
        && full_report.steps == resumed_report.steps
        && full_report.converged == resumed_report.converged;

    eprintln!(
        "# [{label}] hash match: {hash_match}, model file bytes match: {file_match}, \
         trace match: {trace_match}"
    );
    ModeOutcome {
        label: label.to_string(),
        uninterrupted_steps: full_report.steps,
        killed_steps: killed_report.steps,
        resumed_from_step,
        hash_match,
        file_match,
        trace_match,
    }
}

fn main() {
    let mut opts = RunOptions::fast();
    let mut shards = 4usize;
    let mut json: Option<String> = None;
    let mut keep_files = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--full" => {
                let keep = (opts.threads, opts.seed);
                opts = RunOptions::default();
                (opts.threads, opts.seed) = keep;
            }
            "--seed" => opts.seed = val().parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--json" => json = Some(val()),
            "--keep-files" => keep_files = true,
            _ => usage(),
        }
    }
    if shards == 0 {
        usage();
    }

    let dir = std::env::temp_dir().join(format!("rrc_resume_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let outcomes = [
        run_mode("serial", TrainMode::Serial, 1, &opts, &dir),
        run_mode(
            &format!("sharded_x{shards}"),
            TrainMode::Sharded,
            shards,
            &opts,
            &dir,
        ),
    ];

    let all_ok = outcomes
        .iter()
        .all(|o| o.hash_match && o.file_match && o.trace_match);

    if let Some(path) = &json {
        let mut report = RunReport::new("resume-smoke")
            .config("scale_gowalla", Json::F64(opts.scale_gowalla))
            .config("k", Json::from(opts.k))
            .config("max_sweeps", Json::from(opts.max_sweeps))
            .config("seed", Json::from(opts.seed))
            .config("shards", Json::from(shards));
        let modes: Vec<Json> = outcomes
            .iter()
            .map(|o| {
                Json::obj([
                    ("mode", Json::from(o.label.as_str())),
                    ("uninterrupted_steps", Json::from(o.uninterrupted_steps)),
                    ("killed_steps", Json::from(o.killed_steps)),
                    ("resumed_from_step", Json::from(o.resumed_from_step)),
                    ("hash_match", Json::from(o.hash_match as usize)),
                    ("file_match", Json::from(o.file_match as usize)),
                    ("trace_match", Json::from(o.trace_match as usize)),
                ])
            })
            .collect();
        report.add_section(
            "resume",
            Json::obj([
                ("modes", Json::Arr(modes)),
                // Single numeric field CI can gate on: 1 only when every
                // mode matched on every axis.
                ("all_bitwise_identical", Json::from(all_ok as usize)),
            ]),
        );
        report.add_metrics(rrc_obs::global());
        match report.write_to(path) {
            Ok(()) => eprintln!("# report written to {path}"),
            Err(e) => {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if !keep_files {
        std::fs::remove_dir_all(&dir).ok();
    } else {
        eprintln!("# scratch files kept in {}", dir.display());
    }

    if !all_ok {
        eprintln!("error: resume is NOT bit-identical; see the mismatches above");
        std::process::exit(1);
    }
    eprintln!("# resume smoke passed: killed-and-resumed runs are bit-identical");
}
