//! Training throughput benchmark: serial vs sharded vs Hogwild SGD on the
//! Fig. 12 convergence workload.
//!
//! Emits a machine-readable `RunReport` (default `BENCH_train.json`) with
//! wall time, steps/s, and speedup-vs-serial per mode and thread count,
//! plus a determinism check: the sharded trainer at the highest thread
//! count is run twice and the parameter-bit hashes must match.
//!
//! ```sh
//! cargo run --release -p rrc-bench --bin train-bench -- --out BENCH_train.json
//! cargo run --release -p rrc-bench --bin train-bench -- --fast --threads 2
//! ```

use rrc_bench::setup::{prepare, RunOptions};
use rrc_bench::zoo::{build_training_set, tsppr_config};
use rrc_core::{ParallelConfig, ParallelTrainer, TrainMode, TsPprModel};
use rrc_datagen::DatasetKind;
use rrc_features::FeaturePipeline;
use rrc_obs::{Json, RunReport};
use rrc_sequence::{ItemId, UserId};

fn usage() -> ! {
    eprintln!(
        "usage: train-bench [OPTIONS]\n\n\
         options:\n\
         \x20 --fast             reduced scale (smoke-test mode)\n\
         \x20 --scale <f>        Gowalla-like preset scale\n\
         \x20 --sweeps <n>       TS-PPR sweep cap\n\
         \x20 --k <n>            latent dimension K\n\
         \x20 --threads <n>      max thread count to benchmark (default 4)\n\
         \x20 --seed <n>         base RNG seed\n\
         \x20 --out <path>       report path (default BENCH_train.json)\n\
         \x20 --save-model <p>   save the serial-trained model with rrc-store\n\
         \x20 --load-model <p>   load a stored model and assert it is bit-identical\n\
         \x20                    to this run's serial model (cross-run determinism)"
    );
    std::process::exit(2);
}

/// FNV-1a over every parameter's bit pattern: equal hash ⟺ (with
/// overwhelming probability) byte-identical parameters.
fn param_hash(m: &TsPprModel) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: f64| {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for u in 0..m.num_users() {
        let user = UserId(u as u32);
        m.user_factor(user).iter().copied().for_each(&mut eat);
        m.transform(user)
            .as_slice()
            .iter()
            .copied()
            .for_each(&mut eat);
    }
    for v in 0..m.num_items() {
        m.item_factor(ItemId(v as u32))
            .iter()
            .copied()
            .for_each(&mut eat);
    }
    h
}

fn main() {
    let mut opts = RunOptions::default();
    let mut max_threads = 4usize;
    let mut out = String::from("BENCH_train.json");
    let mut save_model: Option<String> = None;
    let mut load_model: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--save-model" => save_model = Some(val()),
            "--load-model" => load_model = Some(val()),
            "--fast" => {
                let keep = (opts.threads, opts.seed);
                opts = RunOptions::fast();
                (opts.threads, opts.seed) = keep;
            }
            "--scale" => opts.scale_gowalla = val().parse().unwrap_or_else(|_| usage()),
            "--sweeps" => opts.max_sweeps = val().parse().unwrap_or_else(|_| usage()),
            "--k" => opts.k = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => max_threads = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val().parse().unwrap_or_else(|_| usage()),
            "--out" => out = val(),
            _ => usage(),
        }
    }
    if max_threads == 0 {
        usage();
    }

    eprintln!(
        "# train-bench: scale={}, K={}, sweeps={}, max threads={}",
        opts.scale_gowalla, opts.k, opts.max_sweeps, max_threads
    );
    let exp = prepare(DatasetKind::Gowalla, &opts);
    let training = build_training_set(&exp, &opts, &FeaturePipeline::standard());
    let cfg = tsppr_config(&exp, &opts);
    eprintln!(
        "# |D| = {} quadruples, {} users, {} items",
        training.num_quadruples(),
        exp.data.num_users(),
        exp.data.num_items()
    );

    let run = |mode: TrainMode, threads: usize| {
        let par = ParallelConfig::new(mode, threads);
        let started = std::time::Instant::now();
        let (model, report) = ParallelTrainer::new(cfg.clone(), par).train(&training);
        let wall_s = started.elapsed().as_secs_f64();
        assert!(
            model.is_finite(),
            "{mode} x{threads} produced non-finite params"
        );
        (model, report, wall_s)
    };

    let mut modes: Vec<Json> = Vec::new();
    let (serial_model, serial_report, serial_s) = run(TrainMode::Serial, 1);
    let serial_hash = param_hash(&serial_model);

    // Persistence checks ride on the serial run: `--save-model` stores its
    // parameters; `--load-model` proves a previous run's stored parameters
    // are bit-identical to this run's (training + store round-trip are
    // both deterministic across processes).
    if let Some(path) = &save_model {
        let meta = [
            ("source".to_string(), "train-bench".to_string()),
            ("param_hash".to_string(), format!("{serial_hash:016x}")),
            ("seed".to_string(), opts.seed.to_string()),
            (
                rrc_store::META_FINGERPRINT.to_string(),
                format!(
                    "{:016x}",
                    rrc_core::TrainCheckpoint::fingerprint_of(&cfg, &training)
                ),
            ),
        ];
        match rrc_store::save_model(&serial_model, &meta, path) {
            Ok(bytes) => eprintln!("# saved serial model to {path} ({bytes} bytes)"),
            Err(e) => {
                eprintln!("error: failed to save model to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut loaded_matches: Option<bool> = None;
    if let Some(path) = &load_model {
        let stored = rrc_store::load_model(path).unwrap_or_else(|e| {
            eprintln!("error: failed to load model from {path}: {e}");
            std::process::exit(1);
        });
        let stored_hash = param_hash(&stored);
        loaded_matches = Some(stored_hash == serial_hash);
        if stored_hash == serial_hash {
            eprintln!("# stored model at {path} is bit-identical to this run's serial model");
        } else {
            eprintln!(
                "error: stored model hash {stored_hash:016x} != serial hash {serial_hash:016x} \
                 (was it trained with the same config/seed?)"
            );
            std::process::exit(1);
        }
    }

    eprintln!(
        "# serial: {:.2}s, {} steps, r̃ = {:.4}",
        serial_s,
        serial_report.steps,
        serial_report.final_r_tilde()
    );
    modes.push(Json::obj([
        ("mode", Json::from("serial")),
        ("threads", Json::from(1usize)),
        ("wall_s", Json::F64(serial_s)),
        ("steps", Json::from(serial_report.steps)),
        (
            "steps_per_sec",
            Json::F64(serial_report.steps as f64 / serial_s),
        ),
        ("speedup_vs_serial", Json::F64(1.0)),
        ("r_tilde", Json::F64(serial_report.final_r_tilde())),
        (
            "param_hash",
            Json::from(format!("{serial_hash:016x}").as_str()),
        ),
    ]));

    // Sharded at 1, 2, 4, ... up to max_threads. Thread counts are also the
    // shard counts here, so each row is an independent deterministic run.
    let mut threads_list = vec![1usize];
    while *threads_list.last().unwrap() * 2 <= max_threads {
        threads_list.push(threads_list.last().unwrap() * 2);
    }
    let mut sharded_max: Option<(f64, u64)> = None;
    for &t in &threads_list {
        let (model, report, wall_s) = run(TrainMode::Sharded, t);
        let hash = param_hash(&model);
        eprintln!(
            "# sharded x{t}: {:.2}s ({:.2}x), {} steps, r̃ = {:.4}",
            wall_s,
            serial_s / wall_s,
            report.steps,
            report.final_r_tilde()
        );
        if t == 1 {
            assert_eq!(
                hash, serial_hash,
                "sharded x1 must be byte-identical to serial"
            );
        }
        if t == *threads_list.last().unwrap() {
            sharded_max = Some((wall_s, hash));
        }
        modes.push(Json::obj([
            ("mode", Json::from("sharded")),
            ("threads", Json::from(t)),
            ("wall_s", Json::F64(wall_s)),
            ("steps", Json::from(report.steps)),
            ("steps_per_sec", Json::F64(report.steps as f64 / wall_s)),
            ("speedup_vs_serial", Json::F64(serial_s / wall_s)),
            ("r_tilde", Json::F64(report.final_r_tilde())),
            ("param_hash", Json::from(format!("{hash:016x}").as_str())),
        ]));
    }

    // Determinism: a second run at the highest sharded thread count must
    // reproduce the exact same parameter bits.
    let top = *threads_list.last().unwrap();
    let (repeat_model, _, _) = run(TrainMode::Sharded, top);
    let (top_wall, top_hash) = sharded_max.unwrap();
    let repeat_hash = param_hash(&repeat_model);
    assert_eq!(
        top_hash, repeat_hash,
        "sharded x{top} is not run-to-run deterministic"
    );
    eprintln!("# sharded x{top} determinism check: param hash {top_hash:016x} reproduced");

    let (_, hog_report, hog_s) = run(TrainMode::Hogwild, top);
    eprintln!(
        "# hogwild x{top}: {:.2}s ({:.2}x), r̃ = {:.4}",
        hog_s,
        serial_s / hog_s,
        hog_report.final_r_tilde()
    );
    modes.push(Json::obj([
        ("mode", Json::from("hogwild")),
        ("threads", Json::from(top)),
        ("wall_s", Json::F64(hog_s)),
        ("steps", Json::from(hog_report.steps)),
        ("steps_per_sec", Json::F64(hog_report.steps as f64 / hog_s)),
        ("speedup_vs_serial", Json::F64(serial_s / hog_s)),
        ("r_tilde", Json::F64(hog_report.final_r_tilde())),
    ]));

    let mut report = RunReport::new("train-bench")
        .config("scale_gowalla", Json::F64(opts.scale_gowalla))
        .config("window", Json::from(opts.window))
        .config("omega", Json::from(opts.omega))
        .config("s", Json::from(opts.s))
        .config("k", Json::from(opts.k))
        .config("max_sweeps", Json::from(opts.max_sweeps))
        .config("seed", Json::from(opts.seed))
        .config("quadruples", Json::from(training.num_quadruples()))
        .config("users", Json::from(exp.data.num_users()))
        .config("items", Json::from(exp.data.num_items()))
        // Wall-clock speedups are bounded by the physical cores of the box
        // the report was generated on; record it so the numbers read right.
        .config(
            "host_threads",
            Json::from(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
        );
    report.add_section("modes", Json::Arr(modes));
    let mut determinism = vec![
        ("sharded_threads", Json::from(top)),
        (
            "param_hash",
            Json::from(format!("{top_hash:016x}").as_str()),
        ),
        ("reproduced", Json::from(true)),
    ];
    if let Some(matches) = loaded_matches {
        determinism.push(("stored_model_matches", Json::from(matches)));
    }
    report.add_section("determinism", Json::obj(determinism));
    report.add_section(
        "summary",
        Json::obj([
            ("serial_wall_s", Json::F64(serial_s)),
            ("sharded_max_threads", Json::from(top)),
            ("sharded_max_wall_s", Json::F64(top_wall)),
            ("sharded_max_speedup", Json::F64(serial_s / top_wall)),
            ("hogwild_wall_s", Json::F64(hog_s)),
            ("hogwild_speedup", Json::F64(serial_s / hog_s)),
        ]),
    );
    report.add_metrics(rrc_obs::global());
    match report.write_to(&out) {
        Ok(()) => eprintln!("# report written to {out}"),
        Err(e) => {
            eprintln!("error: failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}
