//! Store throughput benchmark: serialize / commit / parse / materialize
//! rates for `rrc-store` model files across model sizes, reported as a
//! machine-readable `RunReport` (default `BENCH_store.json`) with MB/s
//! per stage.
//!
//! ```sh
//! cargo run --release -p rrc-bench --bin store-bench -- --out BENCH_store.json
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::TsPprModel;
use rrc_obs::{Json, RunReport};
use rrc_store::model::{encode_model, ModelView};
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: store-bench [--iters N] [--seed N] [--out PATH]");
    std::process::exit(2);
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Time `f` over `iters` runs and return the best (min) seconds — the
/// usual noise-robust choice for short single-shot operations.
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("iters > 0"))
}

fn main() {
    let mut iters = 5usize;
    let mut seed = 7u64;
    let mut out = String::from("BENCH_store.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--iters" => iters = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--out" => out = val(),
            _ => usage(),
        }
    }
    if iters == 0 {
        usage();
    }

    let dir = std::env::temp_dir().join(format!("rrc_store_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    // (users, items, k, f_dim): small / medium / large-ish. The A_u
    // transforms (users × k × f_dim) dominate, exactly as in real models.
    let sizes: &[(usize, usize, usize, usize)] =
        &[(200, 500, 16, 9), (1000, 2000, 40, 9), (4000, 8000, 40, 9)];

    let mut rows: Vec<Json> = Vec::new();
    for &(users, items, k, f_dim) in sizes {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = TsPprModel::init(&mut rng, users, items, k, f_dim, 0.1, 0.05);
        let path = dir.join(format!("bench-{users}x{items}.rrcm"));

        let (encode_s, bytes) = best_of(iters, || encode_model(&model, &[]));
        let size = bytes.len();
        let (commit_s, _) = best_of(iters, || {
            rrc_store::save_model(&model, &[], &path).expect("save model")
        });
        // Parse = read + validate every section CRC, zero-copy views only.
        let (parse_s, _) = best_of(iters, || ModelView::open(&path).expect("open model"));
        // Load = parse + materialize an owned TsPprModel.
        let (load_s, loaded) = best_of(iters, || rrc_store::load_model(&path).expect("load"));
        assert_eq!(loaded, model, "round trip must be exact");

        eprintln!(
            "# {users}x{items} k={k} ({:.1} MB): encode {:.0} MB/s, commit {:.0} MB/s, \
             parse {:.0} MB/s, load {:.0} MB/s",
            mb(size),
            mb(size) / encode_s,
            mb(size) / commit_s,
            mb(size) / parse_s,
            mb(size) / load_s
        );
        rows.push(Json::obj([
            ("users", Json::from(users)),
            ("items", Json::from(items)),
            ("k", Json::from(k)),
            ("f_dim", Json::from(f_dim)),
            ("file_bytes", Json::from(size)),
            ("encode_mb_per_s", Json::F64(mb(size) / encode_s)),
            ("commit_mb_per_s", Json::F64(mb(size) / commit_s)),
            ("parse_mb_per_s", Json::F64(mb(size) / parse_s)),
            ("load_mb_per_s", Json::F64(mb(size) / load_s)),
        ]));
    }
    std::fs::remove_dir_all(&dir).ok();

    let mut report = RunReport::new("store-bench")
        .config("iters", Json::from(iters))
        .config("seed", Json::from(seed));
    report.add_section("sizes", Json::Arr(rows));
    report.add_metrics(rrc_obs::global());
    match report.write_to(&out) {
        Ok(()) => eprintln!("# report written to {out}"),
        Err(e) => {
            eprintln!("error: failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}
