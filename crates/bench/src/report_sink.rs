//! A process-global collection point for structured experiment results.
//!
//! Experiments render human-readable text (their `run` functions return
//! `String`s for the terminal), but `reproduce --json` also wants the
//! underlying numbers — e.g. fig12's convergence trace — in the emitted
//! [`rrc_obs::RunReport`]. Rather than changing every experiment
//! signature, experiments [`push`] named [`Json`] payloads here and the
//! `reproduce` binary [`drain`]s them into the report after the runs.

use rrc_obs::Json;
use std::sync::Mutex;

static SINK: Mutex<Vec<(String, Json)>> = Mutex::new(Vec::new());

/// Record a structured payload under `key` (e.g. `"fig12_convergence"`).
/// Prefer underscores over dots: report sections become top-level keys and
/// `obs-check` treats dots in `--require` paths as nesting.
pub fn push(key: &str, payload: Json) {
    SINK.lock()
        .expect("report sink lock")
        .push((key.to_string(), payload));
}

/// Take everything pushed so far, in push order. Duplicate keys are kept
/// (the consumer disambiguates).
pub fn drain() -> Vec<(String, Json)> {
    std::mem::take(&mut *SINK.lock().expect("report sink lock"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_drain_is_fifo_and_empties() {
        // Drain first: other tests in the process may have pushed.
        let _ = drain();
        push("a", Json::U64(1));
        push("b", Json::U64(2));
        let got = drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "a");
        assert_eq!(got[1].0, "b");
        assert!(drain().is_empty());
    }
}
