//! Experiment drivers reproducing every table and figure of the paper's
//! evaluation (§5). See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured outcomes.
//!
//! The `reproduce` binary (this crate's `src/bin/reproduce.rs`) dispatches
//! to [`experiments`]; the Criterion benches under `benches/` measure the
//! timing-sensitive pieces (per-instance recommendation latency — Fig. 13's
//! measurement — plus training-step, feature-extraction, and
//! window-maintenance throughput).

pub mod experiments;
pub mod report_sink;
pub mod setup;
pub mod zoo;

pub use setup::{prepare, ExperimentData, RunOptions};
pub use zoo::ModelZoo;
