//! Model zoo: trains every method in the paper's comparison on a prepared
//! dataset.

use crate::setup::{ExperimentData, RunOptions};
use rrc_baselines::{
    DyrcConfig, DyrcRecommender, DyrcTrainer, FpmcConfig, FpmcRecommender, FpmcTrainer,
    PopRecommender, RandomRecommender, RecencyRecommender,
};
use rrc_core::{ParallelTrainer, TrainReport, TsPprConfig, TsPprRecommender};
use rrc_datagen::DatasetKind;
use rrc_features::{FeaturePipeline, Recommender, SamplingConfig, TrainingSet};
use rrc_survival::{CoxConfig, SurvivalRecommender};

/// All trained methods, in the paper's presentation order.
pub struct ModelZoo {
    methods: Vec<(String, Box<dyn Recommender + Sync>)>,
}

impl ModelZoo {
    /// Train the full comparison (Random, Pop, Recency, FPMC, Survival,
    /// DYRC, TS-PPR) on the prepared data.
    pub fn full(exp: &ExperimentData, opts: &RunOptions) -> Self {
        let mut methods: Vec<(String, Box<dyn Recommender + Sync>)> = vec![
            ("Random".into(), Box::new(RandomRecommender::default())),
            ("Pop".into(), Box::new(PopRecommender)),
            ("Recency".into(), Box::new(RecencyRecommender)),
        ];

        let fpmc = FpmcTrainer::new(FpmcConfig {
            window: opts.window,
            omega: opts.omega,
            negatives_per_positive: opts.s,
            k: opts.k.min(16),
            max_sweeps: opts.max_sweeps.min(15),
            seed: opts.seed ^ 0xF,
            ..FpmcConfig::new(exp.data.num_users(), exp.data.num_items())
        })
        .train_parallel(&exp.split.train, &opts.parallel());
        methods.push(("FPMC".into(), Box::new(FpmcRecommender::new(fpmc))));

        match SurvivalRecommender::fit(
            &exp.split.train,
            &exp.stats,
            opts.window,
            &CoxConfig::default(),
        ) {
            Ok(s) => methods.push(("Survival".into(), Box::new(s))),
            Err(e) => eprintln!("warning: Survival baseline skipped: {e}"),
        }

        let dyrc = DyrcTrainer::new(DyrcConfig {
            window: opts.window,
            omega: opts.omega,
            ..DyrcConfig::default()
        })
        .train(&exp.split.train, &exp.stats);
        methods.push(("DYRC".into(), Box::new(DyrcRecommender::new(dyrc))));

        let (tsppr, _) = train_tsppr(exp, opts, &FeaturePipeline::standard());
        methods.push(("TS-PPR".into(), Box::new(tsppr)));

        ModelZoo { methods }
    }

    /// Iterate `(name, recommender)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &(dyn Recommender + Sync))> {
        self.methods
            .iter()
            .map(|(n, r)| (n.as_str(), r.as_ref() as &(dyn Recommender + Sync)))
    }

    /// Number of methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Whether the zoo is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }
}

/// Build a training set with the run's sampling parameters and an extra
/// seed component (for multi-seed replication experiments).
pub fn build_training_set_with_pipeline_seed(
    exp: &ExperimentData,
    opts: &RunOptions,
    pipeline: &FeaturePipeline,
    rep: u64,
) -> TrainingSet {
    TrainingSet::build(
        &exp.split.train,
        &exp.stats,
        pipeline,
        &SamplingConfig {
            window: opts.window,
            omega: opts.omega,
            negatives_per_positive: opts.s,
            seed: opts.seed ^ 0x5A ^ (rep.wrapping_mul(0x9E37)),
        },
    )
}

/// Build a training set with the run's sampling parameters.
pub fn build_training_set(
    exp: &ExperimentData,
    opts: &RunOptions,
    pipeline: &FeaturePipeline,
) -> TrainingSet {
    TrainingSet::build(
        &exp.split.train,
        &exp.stats,
        pipeline,
        &SamplingConfig {
            window: opts.window,
            omega: opts.omega,
            negatives_per_positive: opts.s,
            seed: opts.seed ^ 0x5A,
        },
    )
}

/// TS-PPR configuration for a dataset, honouring the paper's Table 4
/// regularisation defaults per preset.
pub fn tsppr_config(exp: &ExperimentData, opts: &RunOptions) -> TsPprConfig {
    let base = match exp.kind {
        DatasetKind::Lastfm => {
            TsPprConfig::lastfm_defaults(exp.data.num_users(), exp.data.num_items())
        }
        _ => TsPprConfig::gowalla_defaults(exp.data.num_users(), exp.data.num_items()),
    };
    let mut cfg = base
        .with_k(opts.k)
        .with_max_sweeps(opts.max_sweeps)
        .with_seed(opts.seed ^ 0x75);
    // At experiment scale |D| is far smaller than the paper's millions of
    // quadruples, so insist on substantial training before the Δr̃ stop may
    // fire (see TsPprConfig::min_sweeps).
    cfg.min_sweeps = opts.max_sweeps / 2;
    cfg
}

/// Train TS-PPR with an arbitrary feature pipeline (the Fig. 7 ablations
/// pass `FeaturePipeline::standard().without(..)`).
pub fn train_tsppr(
    exp: &ExperimentData,
    opts: &RunOptions,
    pipeline: &FeaturePipeline,
) -> (TsPprRecommender, TrainReport) {
    let training = build_training_set(exp, opts, pipeline);
    let (model, report) =
        ParallelTrainer::new(tsppr_config(exp, opts), opts.parallel()).train(&training);
    // Rebuild an identical pipeline for serving (pipelines are not Clone
    // because they hold trait objects; the standard features are stateless).
    let serving = clone_pipeline(pipeline);
    (TsPprRecommender::new(model, serving), report)
}

/// Rebuild a pipeline consisting of standard features (by name).
pub fn clone_pipeline(pipeline: &FeaturePipeline) -> FeaturePipeline {
    let mut p = FeaturePipeline::standard();
    for name in ["IP", "IR", "RE", "DF"] {
        if !pipeline.names().contains(&name) {
            p = p.without(name);
        }
    }
    assert_eq!(p.names(), pipeline.names(), "non-standard pipeline");
    p
}
