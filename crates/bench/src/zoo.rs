//! Model zoo: trains every method in the paper's comparison on a prepared
//! dataset.

use crate::setup::{ExperimentData, RunOptions};
use rrc_baselines::{
    DyrcConfig, DyrcRecommender, DyrcTrainer, FpmcConfig, FpmcRecommender, FpmcTrainer,
    PopRecommender, RandomRecommender, RecencyRecommender,
};
use rrc_core::{ParallelTrainer, TrainReport, TsPprConfig, TsPprModel, TsPprRecommender};
use rrc_datagen::DatasetKind;
use rrc_features::{FeaturePipeline, Recommender, SamplingConfig, TrainingSet};
use rrc_survival::{CoxConfig, SurvivalRecommender};

/// All trained methods, in the paper's presentation order.
pub struct ModelZoo {
    methods: Vec<(String, Box<dyn Recommender + Sync>)>,
}

impl ModelZoo {
    /// Train the full comparison (Random, Pop, Recency, FPMC, Survival,
    /// DYRC, TS-PPR) on the prepared data.
    pub fn full(exp: &ExperimentData, opts: &RunOptions) -> Self {
        let mut methods: Vec<(String, Box<dyn Recommender + Sync>)> = vec![
            ("Random".into(), Box::new(RandomRecommender::default())),
            ("Pop".into(), Box::new(PopRecommender)),
            ("Recency".into(), Box::new(RecencyRecommender)),
        ];

        let fpmc = FpmcTrainer::new(FpmcConfig {
            window: opts.window,
            omega: opts.omega,
            negatives_per_positive: opts.s,
            k: opts.k.min(16),
            max_sweeps: opts.max_sweeps.min(15),
            seed: opts.seed ^ 0xF,
            ..FpmcConfig::new(exp.data.num_users(), exp.data.num_items())
        })
        .train_parallel(&exp.split.train, &opts.parallel());
        methods.push(("FPMC".into(), Box::new(FpmcRecommender::new(fpmc))));

        match SurvivalRecommender::fit(
            &exp.split.train,
            &exp.stats,
            opts.window,
            &CoxConfig::default(),
        ) {
            Ok(s) => methods.push(("Survival".into(), Box::new(s))),
            Err(e) => eprintln!("warning: Survival baseline skipped: {e}"),
        }

        let dyrc = DyrcTrainer::new(DyrcConfig {
            window: opts.window,
            omega: opts.omega,
            ..DyrcConfig::default()
        })
        .train(&exp.split.train, &exp.stats);
        methods.push(("DYRC".into(), Box::new(DyrcRecommender::new(dyrc))));

        let (tsppr, _) = train_tsppr(exp, opts, &FeaturePipeline::standard());
        methods.push(("TS-PPR".into(), Box::new(tsppr)));

        ModelZoo { methods }
    }

    /// Iterate `(name, recommender)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &(dyn Recommender + Sync))> {
        self.methods
            .iter()
            .map(|(n, r)| (n.as_str(), r.as_ref() as &(dyn Recommender + Sync)))
    }

    /// Number of methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Whether the zoo is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }
}

/// Build a training set with the run's sampling parameters and an extra
/// seed component (for multi-seed replication experiments).
pub fn build_training_set_with_pipeline_seed(
    exp: &ExperimentData,
    opts: &RunOptions,
    pipeline: &FeaturePipeline,
    rep: u64,
) -> TrainingSet {
    TrainingSet::build(
        &exp.split.train,
        &exp.stats,
        pipeline,
        &SamplingConfig {
            window: opts.window,
            omega: opts.omega,
            negatives_per_positive: opts.s,
            seed: opts.seed ^ 0x5A ^ (rep.wrapping_mul(0x9E37)),
        },
    )
}

/// Build a training set with the run's sampling parameters.
pub fn build_training_set(
    exp: &ExperimentData,
    opts: &RunOptions,
    pipeline: &FeaturePipeline,
) -> TrainingSet {
    TrainingSet::build(
        &exp.split.train,
        &exp.stats,
        pipeline,
        &SamplingConfig {
            window: opts.window,
            omega: opts.omega,
            negatives_per_positive: opts.s,
            seed: opts.seed ^ 0x5A,
        },
    )
}

/// TS-PPR configuration for a dataset, honouring the paper's Table 4
/// regularisation defaults per preset.
pub fn tsppr_config(exp: &ExperimentData, opts: &RunOptions) -> TsPprConfig {
    let base = match exp.kind {
        DatasetKind::Lastfm => {
            TsPprConfig::lastfm_defaults(exp.data.num_users(), exp.data.num_items())
        }
        _ => TsPprConfig::gowalla_defaults(exp.data.num_users(), exp.data.num_items()),
    };
    let mut cfg = base
        .with_k(opts.k)
        .with_max_sweeps(opts.max_sweeps)
        .with_seed(opts.seed ^ 0x75);
    // At experiment scale |D| is far smaller than the paper's millions of
    // quadruples, so insist on substantial training before the Δr̃ stop may
    // fire (see TsPprConfig::min_sweeps).
    cfg.min_sweeps = opts.max_sweeps / 2;
    cfg
}

/// Train TS-PPR with an arbitrary feature pipeline (the Fig. 7 ablations
/// pass `FeaturePipeline::standard().without(..)`).
///
/// Persistence options on [`RunOptions`] are honoured here, since this is
/// the one place every experiment trains TS-PPR:
///
/// * `load_model` — load `{base}.{dataset}.rrcm` and skip training (falls
///   back to training when the file is absent);
/// * `resume` — continue from `{base}.{dataset}.ckpt` when present;
/// * `checkpoint_every` — write `{checkpoint_path}.{dataset}.ckpt` every
///   N convergence checks (atomic single-slot replace);
/// * `save_model` — save the final model to `{base}.{dataset}.rrcm`.
pub fn train_tsppr(
    exp: &ExperimentData,
    opts: &RunOptions,
    pipeline: &FeaturePipeline,
) -> (TsPprRecommender, TrainReport) {
    if let Err(why) = opts.validate_persistence() {
        panic!("{why}");
    }
    let serving = clone_pipeline(pipeline);

    if let Some(model) = load_stored_model(exp, opts) {
        let report = TrainReport {
            steps: 0,
            converged: true,
            elapsed: std::time::Duration::ZERO,
            checks: Vec::new(),
        };
        return (TsPprRecommender::new(model, serving), report);
    }

    let training = build_training_set(exp, opts, pipeline);
    let (model, report) = train_tsppr_model(exp, opts, &training);
    (TsPprRecommender::new(model, serving), report)
}

/// The `--load-model` fast path: `Some(model)` when a stored model exists
/// for this dataset, `None` (train from scratch) when the flag is unset or
/// the file is absent. Any other load failure is fatal — a corrupt store
/// must never silently fall back to retraining.
fn load_stored_model(exp: &ExperimentData, opts: &RunOptions) -> Option<TsPprModel> {
    let base = opts.load_model.as_ref()?;
    let path = RunOptions::model_file(base, exp.kind);
    match rrc_store::load_model(&path) {
        Ok(model) => {
            eprintln!("# loaded TS-PPR model from {path}");
            Some(model)
        }
        Err(rrc_store::StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!("# no model at {path}; training from scratch");
            None
        }
        Err(e) => panic!("failed to load model from {path}: {e}"),
    }
}

/// Train (or load/resume) a TS-PPR model on a prebuilt training set,
/// honoring every persistence option in `opts` — the model-level core of
/// [`train_tsppr`], for callers that need the raw [`TsPprModel`] and
/// [`TrainReport`] (e.g. the Fig. 12 convergence experiment).
pub fn train_tsppr_model(
    exp: &ExperimentData,
    opts: &RunOptions,
    training: &TrainingSet,
) -> (TsPprModel, TrainReport) {
    if let Err(why) = opts.validate_persistence() {
        panic!("{why}");
    }
    if let Some(model) = load_stored_model(exp, opts) {
        let report = TrainReport {
            steps: 0,
            converged: true,
            elapsed: std::time::Duration::ZERO,
            checks: Vec::new(),
        };
        return (model, report);
    }

    let cfg = tsppr_config(exp, opts);
    let fingerprint = rrc_core::TrainCheckpoint::fingerprint_of(&cfg, training);
    let par = opts.parallel();

    let resumed: Option<rrc_core::TrainCheckpoint> = opts.resume.as_ref().and_then(|base| {
        let path = RunOptions::checkpoint_file(base, exp.kind);
        match rrc_store::load_checkpoint(&path) {
            Ok(ck) => {
                eprintln!("# resuming from {path} (step {})", ck.step);
                Some(ck)
            }
            Err(rrc_store::StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!("# no checkpoint at {path}; starting fresh");
                None
            }
            Err(e) => panic!("failed to load checkpoint from {path}: {e}"),
        }
    });

    let (model, report) = if resumed.is_some() || opts.checkpoint_every > 0 {
        let ckpt_path = RunOptions::checkpoint_file(&opts.checkpoint_path, exp.kind);
        let mut sink = rrc_store::Checkpointer::new(&ckpt_path);
        let mut write = |ck: &rrc_core::TrainCheckpoint| {
            if let Err(e) = sink.write(ck) {
                eprintln!("# warning: checkpoint write failed: {e}");
            }
            true
        };
        let checkpoint = (opts.checkpoint_every > 0).then_some(rrc_core::CheckpointOptions {
            every_checks: opts.checkpoint_every,
            sink: &mut write,
        });
        ParallelTrainer::new(cfg, par).train_with(training, resumed.as_ref(), checkpoint)
    } else {
        ParallelTrainer::new(cfg, par).train(training)
    };

    if let Some(base) = &opts.save_model {
        let path = RunOptions::model_file(base, exp.kind);
        let meta = [
            ("dataset".to_string(), exp.kind.to_string()),
            ("seed".to_string(), opts.seed.to_string()),
            ("steps".to_string(), report.steps.to_string()),
            // Training-config fingerprint: lets downstream consumers
            // (serve watcher, rrc-top) attribute online quality and
            // drift to the exact configuration that trained the model.
            (
                rrc_store::META_FINGERPRINT.to_string(),
                format!("{fingerprint:016x}"),
            ),
        ];
        match rrc_store::save_model(&model, &meta, &path) {
            Ok(bytes) => eprintln!("# saved TS-PPR model to {path} ({bytes} bytes)"),
            Err(e) => panic!("failed to save model to {path}: {e}"),
        }
    }

    (model, report)
}

/// Rebuild a pipeline consisting of standard features (by name).
pub fn clone_pipeline(pipeline: &FeaturePipeline) -> FeaturePipeline {
    let mut p = FeaturePipeline::standard();
    for name in ["IP", "IR", "RE", "DF"] {
        if !pipeline.names().contains(&name) {
            p = p.without(name);
        }
    }
    assert_eq!(p.names(), pipeline.names(), "non-standard pipeline");
    p
}
