//! Fig. 9: sensitivity to the latent feature space dimension K.

use crate::setup::{prepare, RunOptions};
use crate::zoo::{build_training_set, tsppr_config};
use rrc_core::{TsPprRecommender, TsPprTrainer};
use rrc_datagen::DatasetKind;
use rrc_eval::{evaluate_multi_parallel, format_table, EvalConfig};
use rrc_features::FeaturePipeline;

const KS: [usize; 6] = [5, 10, 20, 40, 60, 80];

/// Render MaAP@10/MiAP@10 as K varies.
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Fig. 9 — sensitivity of the latent dimension K (S={}, Ω={})\n",
        opts.s, opts.omega
    );
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let training = build_training_set(&exp, opts, &FeaturePipeline::standard());
        let cfg = EvalConfig {
            window: opts.window,
            omega: opts.omega,
        };
        let mut rows = Vec::new();
        for &k in &KS {
            let config = tsppr_config(&exp, opts).with_k(k);
            let (model, _) = TsPprTrainer::new(config).train(&training);
            let rec = TsPprRecommender::new(model, FeaturePipeline::standard());
            let r =
                evaluate_multi_parallel(&rec, &exp.split, &exp.stats, &cfg, &[10], opts.threads);
            rows.push(vec![
                k.to_string(),
                format!("{:.4}", r[0].maap()),
                format!("{:.4}", r[0].miap()),
            ]);
        }
        out.push_str(&format!(
            "\n[{kind}]\n{}",
            format_table(&["K", "MaAP@10", "MiAP@10"], &rows)
        ));
    }
    out.push_str(
        "\n(Paper shape: accuracy rises with K and saturates around K = 40, more\n\
         visibly on Gowalla than Lastfm.)\n",
    );
    out
}
