//! Fig. 7: feature-importance ablation — retrain TS-PPR with each feature
//! removed.

use crate::setup::{prepare, RunOptions};
use crate::zoo::{build_training_set_with_pipeline_seed, clone_pipeline, tsppr_config};
use rrc_core::{TsPprRecommender, TsPprTrainer};
use rrc_datagen::DatasetKind;
use rrc_eval::{evaluate_multi_parallel, format_table, EvalConfig};
use rrc_features::FeaturePipeline;

/// Training repetitions per variant: single-feature removals move accuracy
/// by only a few thousandths at this data scale, so each variant is
/// retrained with several seeds and the mean ± spread is reported.
const REPS: u64 = 3;

/// Render MaAP@10/MiAP@10 (mean over seeds) for "All" and each removal.
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Fig. 7 — feature importance: accuracy with one feature removed (Ω={}, S={}, mean of {REPS} seeds)\n",
        opts.omega, opts.s
    );
    let variants: [(&str, Option<&str>); 5] = [
        ("All", None),
        ("-IP", Some("IP")),
        ("-IR", Some("IR")),
        ("-RE", Some("RE")),
        ("-DF", Some("DF")),
    ];
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let cfg = EvalConfig {
            window: opts.window,
            omega: opts.omega,
        };
        let mut rows = Vec::new();
        for (label, removed) in &variants {
            let pipeline = match removed {
                None => FeaturePipeline::standard(),
                Some(name) => FeaturePipeline::standard().without(name),
            };
            let mut maaps = Vec::new();
            let mut miaps = Vec::new();
            for rep in 0..REPS {
                let training = build_training_set_with_pipeline_seed(&exp, opts, &pipeline, rep);
                let config = tsppr_config(&exp, opts).with_seed(opts.seed ^ 0x75 ^ rep);
                let (model, _) = TsPprTrainer::new(config).train(&training);
                let rec = TsPprRecommender::new(model, clone_pipeline(&pipeline));
                let results = evaluate_multi_parallel(
                    &rec,
                    &exp.split,
                    &exp.stats,
                    &cfg,
                    &[10],
                    opts.threads,
                );
                maaps.push(results[0].maap());
                miaps.push(results[0].miap());
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let spread = |v: &[f64]| {
                let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                (hi - lo) / 2.0
            };
            rows.push(vec![
                label.to_string(),
                format!("{:.4}±{:.4}", mean(&maaps), spread(&maaps)),
                format!("{:.4}±{:.4}", mean(&miaps), spread(&miaps)),
            ]);
        }
        out.push_str(&format!(
            "\n[{}]\n{}",
            kind,
            format_table(&["features", "MaAP@10", "MiAP@10"], &rows)
        ));
    }
    out.push_str(
        "\n(Paper shape: every removal hurts; removing IR — the item reconsumption\n\
         ratio — hurts the most.)\n",
    );
    out
}
