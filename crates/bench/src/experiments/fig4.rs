//! Fig. 4: distributions of repeat consumption by the rank of the
//! reconsumed item in the time window, per behavioral feature.

use crate::setup::{prepare, RunOptions};
use rrc_datagen::DatasetKind;
use rrc_features::{rank_distributions, FeaturePipeline};

/// Render per-feature rank histograms (the paper plots counts on a log
/// y-axis; we print the head of each histogram plus summary steepness).
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Fig. 4 — rank of the reconsumed item in the window per feature (|W|={}, Ω={})\n",
        opts.window, opts.omega
    );
    let pipeline = FeaturePipeline::standard();
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let hists = rank_distributions(&exp.data, &exp.stats, &pipeline, opts.window, opts.omega);
        out.push_str(&format!("\n[{kind}]\n"));
        out.push_str(&format!(
            "{:<8} {:>10} {:>10} {:>9}  head of histogram (ranks 1..10)\n",
            "feature", "events", "mean-rank", "top-1%"
        ));
        for h in &hists {
            let head: Vec<String> = h.counts.iter().take(10).map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "{:<8} {:>10} {:>10.2} {:>8.1}%  [{}]\n",
                h.feature,
                h.total(),
                h.mean_rank(),
                h.top_k_fraction(1) * 100.0,
                head.join(", ")
            ));
        }
    }
    out.push_str(
        "\n(Paper shape: decaying curves — people reconsume items that rank high on\n\
         each feature — with Gowalla steeper than Lastfm; compare mean-rank columns.)\n",
    );
    out
}
