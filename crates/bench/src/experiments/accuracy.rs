//! Figs. 5 & 6 and Table 3: recommendation accuracy of every method.

use crate::experiments::TOP_NS;
use crate::setup::{prepare, RunOptions};
use crate::zoo::ModelZoo;
use rrc_datagen::DatasetKind;
use rrc_eval::{evaluate_multi_parallel, format_table, EvalConfig};

/// One method's accuracy at the three Top-N values.
#[derive(Debug, Clone)]
pub struct MethodAccuracy {
    /// Method name.
    pub name: String,
    /// MaAP at N = 1, 5, 10.
    pub maap: [f64; 3],
    /// MiAP at N = 1, 5, 10.
    pub miap: [f64; 3],
}

/// The full comparison on one dataset.
#[derive(Debug, Clone)]
pub struct DatasetComparison {
    /// Which preset.
    pub kind: DatasetKind,
    /// Per-method results, in presentation order (TS-PPR last).
    pub methods: Vec<MethodAccuracy>,
}

/// Train the zoo and evaluate it on both presets.
pub fn run_comparison(opts: &RunOptions) -> Vec<DatasetComparison> {
    [DatasetKind::Gowalla, DatasetKind::Lastfm]
        .into_iter()
        .map(|kind| {
            let exp = prepare(kind, opts);
            let zoo = ModelZoo::full(&exp, opts);
            let cfg = EvalConfig {
                window: opts.window,
                omega: opts.omega,
            };
            let methods = zoo
                .iter()
                .map(|(name, rec)| {
                    let results = evaluate_multi_parallel(
                        rec,
                        &exp.split,
                        &exp.stats,
                        &cfg,
                        &TOP_NS,
                        opts.threads,
                    );
                    MethodAccuracy {
                        name: name.to_string(),
                        maap: [results[0].maap(), results[1].maap(), results[2].maap()],
                        miap: [results[0].miap(), results[1].miap(), results[2].miap()],
                    }
                })
                .collect();
            DatasetComparison { kind, methods }
        })
        .collect()
}

fn render_metric(
    title: &str,
    comparisons: &[DatasetComparison],
    metric: impl Fn(&MethodAccuracy) -> [f64; 3],
) -> String {
    let mut out = format!("{title}\n");
    for c in comparisons {
        let rows: Vec<Vec<String>> = c
            .methods
            .iter()
            .map(|m| {
                let v = metric(m);
                vec![
                    m.name.clone(),
                    format!("{:.4}", v[0]),
                    format!("{:.4}", v[1]),
                    format!("{:.4}", v[2]),
                ]
            })
            .collect();
        out.push_str(&format!(
            "\n[{}]\n{}",
            c.kind,
            format_table(&["method", "Top-1", "Top-5", "Top-10"], &rows)
        ));
    }
    out
}

/// Fig. 5: MaAP of all methods.
pub fn run_fig5(opts: &RunOptions) -> String {
    render_fig5(&run_comparison(opts), opts)
}

/// Fig. 6: MiAP of all methods.
pub fn run_fig6(opts: &RunOptions) -> String {
    render_fig6(&run_comparison(opts), opts)
}

/// Table 3: relative improvement of TS-PPR over the best baseline.
pub fn run_table3(opts: &RunOptions) -> String {
    render_table3(&run_comparison(opts))
}

/// Render Fig. 5 from precomputed comparisons (used by `reproduce all` to
/// avoid re-training for Figs. 5/6 and Table 3).
pub fn render_fig5(comparisons: &[DatasetComparison], opts: &RunOptions) -> String {
    render_metric(
        &format!(
            "Fig. 5 — macro average precision, all methods (Ω={}, S={})",
            opts.omega, opts.s
        ),
        comparisons,
        |m| m.maap,
    )
}

/// Render Fig. 6 from precomputed comparisons.
pub fn render_fig6(comparisons: &[DatasetComparison], opts: &RunOptions) -> String {
    render_metric(
        &format!(
            "Fig. 6 — micro average precision, all methods (Ω={}, S={})",
            opts.omega, opts.s
        ),
        comparisons,
        |m| m.miap,
    )
}

/// Render Table 3 from precomputed comparisons.
pub fn render_table3(comparisons: &[DatasetComparison]) -> String {
    let improvement_rows = |exclude: &[&str]| -> Vec<Vec<String>> {
        comparisons
            .iter()
            .map(|c| {
                let tsppr = c
                    .methods
                    .iter()
                    .find(|m| m.name == "TS-PPR")
                    .expect("TS-PPR present");
                let mut cells = vec![c.kind.to_string()];
                for metric in [0, 1] {
                    for i in 0..3 {
                        let ours = if metric == 0 {
                            tsppr.maap[i]
                        } else {
                            tsppr.miap[i]
                        };
                        let best_baseline = c
                            .methods
                            .iter()
                            .filter(|m| m.name != "TS-PPR" && !exclude.contains(&m.name.as_str()))
                            .map(|m| if metric == 0 { m.maap[i] } else { m.miap[i] })
                            .fold(f64::NEG_INFINITY, f64::max);
                        let cell = if ours > best_baseline && best_baseline > 0.0 {
                            format!("{:.0}%", (ours / best_baseline - 1.0) * 100.0)
                        } else {
                            "\\".to_string() // the paper's marker for "not superior"
                        };
                        cells.push(cell);
                    }
                }
                cells
            })
            .collect()
    };
    let headers = [
        "data set", "MaAP@1", "MaAP@5", "MaAP@10", "MiAP@1", "MiAP@5", "MiAP@10",
    ];
    format!(
        "Table 3 — relative precision improvement of TS-PPR over the best baseline\n{}\n\
         ... and over the best *non-factorization* baseline (in the paper's data the\n\
         best baseline was DYRC; our synthetic substrate's low-rank personal taste\n\
         makes FPMC stronger than the paper found it — see EXPERIMENTS.md):\n{}",
        format_table(&headers, &improvement_rows(&[])),
        format_table(&headers, &improvement_rows(&["FPMC"]))
    )
}
