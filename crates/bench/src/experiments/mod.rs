//! One module per reproduced table/figure. Every experiment returns its
//! rendered report as a `String` (the `reproduce` binary prints it).

pub mod ablation;
pub mod accuracy;
pub mod ci;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig4;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod mixture;
pub mod table2;
pub mod table5;

use crate::setup::RunOptions;

/// The canonical Top-N values of the paper.
pub const TOP_NS: [usize; 3] = [1, 5, 10];

/// All experiment names, in paper order.
pub const ALL_EXPERIMENTS: [&str; 12] = [
    "table2", "fig4", "fig5", "fig6", "table3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13",
];

/// Run one experiment by name (`fig5`, `table3`, ...), returning the
/// rendered report. `table5` is also accepted.
pub fn run(name: &str, opts: &RunOptions) -> Option<String> {
    Some(match name {
        "table2" => table2::run(opts),
        "fig4" => fig4::run(opts),
        "fig5" => accuracy::run_fig5(opts),
        "fig6" => accuracy::run_fig6(opts),
        "table3" => accuracy::run_table3(opts),
        "fig7" => fig7::run(opts),
        "fig8" => fig8::run(opts),
        "fig9" => fig9::run(opts),
        "fig10" => fig10::run(opts),
        "fig11" => fig11::run(opts),
        "fig12" => fig12::run(opts),
        "fig13" => fig13::run(opts),
        "table5" => table5::run(opts),
        "ablation" => ablation::run(opts),
        "mixture" => mixture::run(opts),
        "ci" => ci::run(opts),
        _ => return None,
    })
}
