//! Fig. 10: sensitivity to the negative-sample count S (at Ω = 10 and 20).

use crate::setup::{prepare, RunOptions};
use crate::zoo::tsppr_config;
use rrc_core::{TsPprRecommender, TsPprTrainer};
use rrc_datagen::DatasetKind;
use rrc_eval::{evaluate_multi_parallel, format_table, EvalConfig};
use rrc_features::{FeaturePipeline, SamplingConfig, TrainingSet};

const SS: [usize; 6] = [5, 10, 15, 20, 25, 30];
const OMEGAS: [usize; 2] = [10, 20];

/// Render MaAP@10/MiAP@10 as S varies, for two Ω settings.
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Fig. 10 — sensitivity of the negative sample number S (K={})\n",
        opts.k
    );
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        for &omega in &OMEGAS {
            let omega = omega.min(opts.window - 1);
            let cfg = EvalConfig {
                window: opts.window,
                omega,
            };
            let mut rows = Vec::new();
            for &s in &SS {
                let training = TrainingSet::build(
                    &exp.split.train,
                    &exp.stats,
                    &FeaturePipeline::standard(),
                    &SamplingConfig {
                        window: opts.window,
                        omega,
                        negatives_per_positive: s,
                        seed: opts.seed ^ 0x5A,
                    },
                );
                let (model, _) = TsPprTrainer::new(tsppr_config(&exp, opts)).train(&training);
                let rec = TsPprRecommender::new(model, FeaturePipeline::standard());
                let r = evaluate_multi_parallel(
                    &rec,
                    &exp.split,
                    &exp.stats,
                    &cfg,
                    &[10],
                    opts.threads,
                );
                rows.push(vec![
                    s.to_string(),
                    format!("{:.4}", r[0].maap()),
                    format!("{:.4}", r[0].miap()),
                ]);
            }
            out.push_str(&format!(
                "\n[{kind}, Ω={omega}]\n{}",
                format_table(&["S", "MaAP@10", "MiAP@10"], &rows)
            ));
        }
    }
    out.push_str(
        "\n(Paper shape: a slight upward trend with S on Gowalla, flat on Lastfm —\n\
         extra negatives add little once the candidate pool is exhausted.)\n",
    );
    out
}
