//! Fig. 13: average online recommendation time of a single instance.

use crate::setup::{prepare, RunOptions};
use crate::zoo::ModelZoo;
use rrc_datagen::DatasetKind;
use rrc_eval::{format_table, measure_latency, EvalConfig};

/// Instances to time per (dataset, method); three trials are averaged as in
/// the paper.
const INSTANCES: usize = 1000;
const TRIALS: usize = 3;

/// Render mean per-instance latency (ms) per method and dataset.
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Fig. 13 — average online recommendation time per instance, {} instances × {} trials\n",
        INSTANCES, TRIALS
    );
    let cfg = EvalConfig {
        window: opts.window,
        omega: opts.omega,
    };
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let zoo = ModelZoo::full(&exp, opts);
        let mut rows = Vec::new();
        for (name, rec) in zoo.iter() {
            let mut total_ms = 0.0;
            for _ in 0..TRIALS {
                let report = measure_latency(rec, &exp.split, &exp.stats, &cfg, 10, INSTANCES);
                total_ms += report.mean_millis();
            }
            let mean_ms = total_ms / TRIALS as f64;
            rows.push(vec![
                name.to_string(),
                format!("{mean_ms:.4}"),
                format!("{:.1}", mean_ms.max(1e-9).log10()),
            ]);
        }
        out.push_str(&format!(
            "\n[{kind}]\n{}",
            format_table(&["method", "mean ms/instance", "log10(ms)"], &rows)
        ));
    }
    out.push_str(
        "\n(Paper shape: Random/Pop/DYRC cheapest; FPMC medium; TS-PPR above the\n\
         simple baselines; Survival slowest because it recomputes its return-time\n\
         covariate by scanning the user's whole history per candidate — an\n\
         O(|S_u|)-per-score cost. At this synthetic scale (|S_u| ≈ 300-1500) that\n\
         shows as a few-to-tens× gap; at the paper's sequence lengths (up to ~10⁵\n\
         events/user on Lastfm, through Python lifelines) the same asymmetry is\n\
         the 2-4 orders of magnitude the paper reports.)\n",
    );
    out
}
