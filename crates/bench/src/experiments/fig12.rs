//! Fig. 12: convergence of the SGD parameter inference — the r̃ trace.

use crate::setup::{prepare, RunOptions};
use crate::zoo::{build_training_set, tsppr_config};
use rrc_core::TsPprTrainer;
use rrc_datagen::DatasetKind;
use rrc_features::FeaturePipeline;

/// Render the small-batch mean-margin trace per convergence check.
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Fig. 12 — model convergence: small-batch r̃ per check (S={}, Ω={}, Δr̃ ≤ 1e-3)\n",
        opts.s, opts.omega
    );
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let training = build_training_set(&exp, opts, &FeaturePipeline::standard());
        let (_, report) = TsPprTrainer::new(tsppr_config(&exp, opts)).train(&training);
        out.push_str(&format!(
            "\n[{kind}] |D| = {}, steps = {}, converged = {}\n",
            training.num_quadruples(),
            report.steps,
            report.converged
        ));
        out.push_str(&format!("{:>10} {:>10} {:>10}\n", "step", "r̃", "nll"));
        // Subsample long traces to ~25 evenly-spaced points (plus the last).
        let stride = (report.checks.len() / 25).max(1);
        for (i, c) in report.checks.iter().enumerate() {
            if i % stride == 0 || i + 1 == report.checks.len() {
                out.push_str(&format!(
                    "{:>10} {:>10.4} {:>10.4}\n",
                    c.step, c.r_tilde, c.nll
                ));
            }
        }
    }
    out.push_str(
        "\n(Paper shape: r̃ rises and flattens; the converged r̃ is higher on Gowalla\n\
         than Lastfm — positives are easier to separate — matching the accuracy gap.)\n",
    );
    out
}
