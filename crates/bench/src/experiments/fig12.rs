//! Fig. 12: convergence of the SGD parameter inference — the r̃ trace.

use crate::report_sink;
use crate::setup::{prepare, RunOptions};
use crate::zoo::{build_training_set, train_tsppr_model};
use rrc_datagen::DatasetKind;
use rrc_features::FeaturePipeline;
use rrc_obs::Json;

/// Render the small-batch mean-margin trace per convergence check, with
/// wall-clock so the curve can be plotted against time as well as steps.
/// The full trace is also pushed to the [`report_sink`] for
/// `reproduce --json`.
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Fig. 12 — model convergence: small-batch r̃ per check (S={}, Ω={}, Δr̃ ≤ 1e-3, \
         train={} × {} threads)\n",
        opts.s, opts.omega, opts.train_mode, opts.threads
    );
    let mut traces: Vec<(String, Json)> = Vec::new();
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let training = build_training_set(&exp, opts, &FeaturePipeline::standard());
        // Via the zoo so `--save-model` / `--load-model` / `--checkpoint-*` /
        // `--resume` apply to this experiment too (it is the CI resume target).
        let (_, report) = train_tsppr_model(&exp, opts, &training);
        out.push_str(&format!(
            "\n[{kind}] |D| = {}, steps = {}, converged = {}, wall = {:.2?}\n",
            training.num_quadruples(),
            report.steps,
            report.converged,
            report.elapsed
        ));
        out.push_str(&format!(
            "{:>10} {:>10} {:>10} {:>10}\n",
            "step", "sec", "r̃", "nll"
        ));
        // Subsample long traces to ~25 evenly-spaced points (plus the last).
        let stride = (report.checks.len() / 25).max(1);
        for (i, c) in report.checks.iter().enumerate() {
            if i % stride == 0 || i + 1 == report.checks.len() {
                out.push_str(&format!(
                    "{:>10} {:>10.3} {:>10.4} {:>10.4}\n",
                    c.step,
                    c.elapsed.as_secs_f64(),
                    c.r_tilde,
                    c.nll
                ));
            }
        }
        traces.push((
            kind.to_string(),
            Json::obj([
                ("quadruples", Json::from(training.num_quadruples())),
                (
                    "train_mode",
                    Json::from(opts.train_mode.to_string().as_str()),
                ),
                ("threads", Json::from(opts.threads)),
                ("steps", Json::from(report.steps)),
                ("converged", Json::from(report.converged)),
                ("wall_s", Json::F64(report.elapsed.as_secs_f64())),
                (
                    "checks",
                    Json::Arr(
                        report
                            .checks
                            .iter()
                            .map(|c| {
                                Json::obj([
                                    ("step", Json::from(c.step)),
                                    ("elapsed_s", Json::F64(c.elapsed.as_secs_f64())),
                                    ("r_tilde", Json::F64(c.r_tilde)),
                                    ("nll", Json::F64(c.nll)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    report_sink::push("fig12_convergence", Json::Obj(traces));
    out.push_str(
        "\n(Paper shape: r̃ rises and flattens; the converged r̃ is higher on Gowalla\n\
         than Lastfm — positives are easier to separate — matching the accuracy gap.)\n",
    );
    out
}
