//! Fig. 8: sensitivity to the regularisation parameters λ and γ.

use crate::setup::{prepare, RunOptions};
use crate::zoo::{build_training_set, tsppr_config};
use rrc_core::{TsPprRecommender, TsPprTrainer};
use rrc_datagen::DatasetKind;
use rrc_eval::{evaluate_multi_parallel, format_table, EvalConfig};
use rrc_features::FeaturePipeline;

const GRID: [f64; 5] = [1e-4, 1e-3, 1e-2, 1e-1, 1.0];

/// Render MaAP@10/MiAP@10 sweeps over λ (with γ at default) and over γ
/// (with λ at default).
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Fig. 8 — influence of regularization parameters λ and γ (K={}, S={}, Ω={})\n",
        opts.k, opts.s, opts.omega
    );
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let training = build_training_set(&exp, opts, &FeaturePipeline::standard());
        let cfg = EvalConfig {
            window: opts.window,
            omega: opts.omega,
        };
        let base = tsppr_config(&exp, opts);
        for (param, is_lambda) in [("λ", true), ("γ", false)] {
            let mut rows = Vec::new();
            for &v in &GRID {
                let config = if is_lambda {
                    base.clone().with_regularization(v, base.gamma)
                } else {
                    base.clone().with_regularization(base.lambda, v)
                };
                let (model, _) = TsPprTrainer::new(config).train(&training);
                let rec = TsPprRecommender::new(model, FeaturePipeline::standard());
                let r = evaluate_multi_parallel(
                    &rec,
                    &exp.split,
                    &exp.stats,
                    &cfg,
                    &[10],
                    opts.threads,
                );
                rows.push(vec![
                    format!("{v:e}"),
                    format!("{:.4}", r[0].maap()),
                    format!("{:.4}", r[0].miap()),
                ]);
            }
            out.push_str(&format!(
                "\n[{kind}] sweep over {param}\n{}",
                format_table(&[param, "MaAP@10", "MiAP@10"], &rows)
            ));
        }
    }
    out.push_str(
        "\n(Paper shape: accuracy degrades at large λ/γ — underfitting — with the\n\
         Gowalla drop sharper than Lastfm's; optimum γ exceeds optimum λ.)\n",
    );
    out
}
