//! Table 2: statistics of the (synthetic stand-in) data sets.

use crate::setup::{prepare, RunOptions};
use rrc_datagen::DatasetKind;
use rrc_eval::{format_table, percent};
use rrc_sequence::{DatasetStats, GapHistogram};

/// Render Table 2 plus the repeat-fraction diagnostics the paper quotes in
/// its introduction (e.g. ~77% repeats on Last.fm).
pub fn run(opts: &RunOptions) -> String {
    let mut rows = Vec::new();
    let mut gap_notes = String::new();
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let stats = DatasetStats::compute(&exp.data, opts.window, opts.omega);
        let gaps = GapHistogram::compute(&exp.data, 4 * opts.window);
        gap_notes.push_str(&format!(
            "[{kind}] mean reconsumption gap {:.1} steps; p80 {}; p90 {} (§3: choose |W| ≳ p80-p90)\n",
            gaps.mean(),
            gaps.quantile(0.8).unwrap_or(0),
            gaps.quantile(0.9).unwrap_or(0),
        ));
        rows.push(vec![
            kind.to_string(),
            match kind {
                DatasetKind::Gowalla => "LBSN".to_string(),
                DatasetKind::Lastfm => "Music".to_string(),
                DatasetKind::Custom => "Custom".to_string(),
            },
            stats.users.to_string(),
            stats.items.to_string(),
            stats.consumptions.to_string(),
            percent(stats.repeat_fraction()),
            percent(stats.eligible_fraction()),
        ]);
    }
    format!(
        "Table 2 — dataset statistics (synthetic stand-ins; |W|={}, Ω={})\n{}\n{gap_notes}",
        opts.window,
        opts.omega,
        format_table(
            &[
                "data set",
                "type",
                "users",
                "items",
                "consumption",
                "repeat%",
                "eligible%"
            ],
            &rows
        )
    )
}
