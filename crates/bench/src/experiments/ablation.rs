//! Ablation study (extension; not a numbered figure in the paper, but the
//! design choices it isolates are all discussed in §4):
//!
//! * **TS-PPR** — the full model;
//! * **TS-PPR (A=I)** — the §4.2.1 simplification: `K = F`, transforms
//!   frozen to the identity (no personalised feature weighting);
//! * **TS-PPR (exp recency)** — Eq. 20's exponential decay instead of the
//!   default hyperbolic Eq. 19;
//! * **PPR** — the static `uᵀv` ranker of §4.1 (no time-sensitivity at
//!   all), trained on the same quadruples;
//! * **Markov** — unfactorised first-order transition counts (the "MC"
//!   inside FPMC).

use crate::setup::{prepare, RunOptions};
use crate::zoo::{build_training_set, train_tsppr, tsppr_config};
use rrc_baselines::{
    ForgettingMarkovModel, ForgettingMarkovRecommender, MarkovChainModel, MarkovRecommender,
    TuckerFpmcConfig, TuckerFpmcRecommender, TuckerFpmcTrainer,
};
use rrc_core::{PprConfig, PprRecommender, PprTrainer, TsPprRecommender, TsPprTrainer};
use rrc_datagen::DatasetKind;
use rrc_eval::{evaluate_multi_parallel, format_table, EvalConfig};
use rrc_features::{FeaturePipeline, RecencyKind, SamplingConfig, TrainingSet};

/// Render MaAP@{1,10} / MiAP@10 for each ablated variant.
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Ablation — design choices of TS-PPR isolated (Ω={}, S={})\n",
        opts.omega, opts.s
    );
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let cfg = EvalConfig {
            window: opts.window,
            omega: opts.omega,
        };
        let mut rows = Vec::new();
        let mut eval = |name: &str, rec: &(dyn rrc_features::Recommender + Sync)| {
            let r =
                evaluate_multi_parallel(rec, &exp.split, &exp.stats, &cfg, &[1, 10], opts.threads);
            rows.push(vec![
                name.to_string(),
                format!("{:.4}", r[0].maap()),
                format!("{:.4}", r[1].maap()),
                format!("{:.4}", r[1].miap()),
            ]);
        };

        // Full TS-PPR.
        let (full, _) = train_tsppr(&exp, opts, &FeaturePipeline::standard());
        eval("TS-PPR", &full);

        // Identity transform (K = F = 4).
        let training = build_training_set(&exp, opts, &FeaturePipeline::standard());
        let id_cfg = tsppr_config(&exp, opts)
            .with_k(4)
            .with_identity_transform(true);
        let (id_model, _) = TsPprTrainer::new(id_cfg).train(&training);
        let id_rec = TsPprRecommender::new(id_model, FeaturePipeline::standard());
        eval("TS-PPR (A=I, K=F)", &id_rec);

        // Exponential recency.
        let exp_pipeline = FeaturePipeline::standard_with_recency(RecencyKind::Exponential);
        let exp_training = TrainingSet::build(
            &exp.split.train,
            &exp.stats,
            &exp_pipeline,
            &SamplingConfig {
                window: opts.window,
                omega: opts.omega,
                negatives_per_positive: opts.s,
                seed: opts.seed ^ 0x5A,
            },
        );
        let (exp_model, _) = TsPprTrainer::new(tsppr_config(&exp, opts)).train(&exp_training);
        let exp_rec = TsPprRecommender::new(
            exp_model,
            FeaturePipeline::standard_with_recency(RecencyKind::Exponential),
        );
        eval("TS-PPR (exp recency)", &exp_rec);

        // Static PPR on the same quadruples.
        let ppr =
            PprTrainer::new(PprConfig::from_tsppr(&tsppr_config(&exp, opts))).train(&training);
        eval("PPR (static)", &PprRecommender::new(ppr));

        // Raw Markov chain.
        let markov = MarkovChainModel::fit(&exp.split.train, 0.1);
        eval("Markov", &MarkovRecommender::new(markov));

        // Interest-forgetting Markov (hyperbolic decay over window sources).
        let ifm = ForgettingMarkovModel::fit(&exp.split.train, 0.1);
        eval("IF-Markov", &ForgettingMarkovRecommender::new(ifm));

        // Full Tucker-core FPMC (the form the paper names; Rendle's
        // pairwise special case is the FPMC row in Figs. 5–6).
        let tucker = TuckerFpmcTrainer::new(TuckerFpmcConfig {
            window: opts.window,
            omega: opts.omega,
            negatives_per_positive: opts.s,
            max_sweeps: opts.max_sweeps.min(20),
            seed: opts.seed ^ 0x7c,
            ..TuckerFpmcConfig::new(exp.data.num_users(), exp.data.num_items())
        })
        .train(&exp.split.train);
        eval("Tucker-FPMC", &TuckerFpmcRecommender::new(tucker));

        out.push_str(&format!(
            "\n[{kind}]\n{}",
            format_table(&["variant", "MaAP@1", "MaAP@10", "MiAP@10"], &rows)
        ));
    }
    out.push_str(
        "\n(Expected: full TS-PPR ≥ every ablation; A=I loses the personalised\n\
         feature weighting; PPR loses time-sensitivity entirely.)\n",
    );
    out
}
