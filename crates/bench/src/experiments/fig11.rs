//! Fig. 11: sensitivity to the minimum gap Ω (at S = 10 and 20).
//!
//! Interpretation note: raising Ω shrinks the candidate set `|W| − Ω`, so
//! *every* method's absolute precision tends to rise mechanically — Random
//! most of all. The paper's Gowalla-specific finding is that TS-PPR's
//! *advantage* comes from recent repeats (strong recency effect): with
//! remote repeats only, it degrades toward the field. We therefore report
//! Random alongside TS-PPR and the ratio between them; the paper's
//! crossover shows as the Gowalla ratio falling with Ω faster than
//! Lastfm's.

use crate::setup::{prepare, RunOptions};
use crate::zoo::tsppr_config;
use rrc_baselines::RandomRecommender;
use rrc_core::{TsPprRecommender, TsPprTrainer};
use rrc_datagen::DatasetKind;
use rrc_eval::{evaluate_multi_parallel, format_table, EvalConfig};
use rrc_features::{FeaturePipeline, SamplingConfig, TrainingSet};

const OMEGAS: [usize; 5] = [5, 10, 20, 30, 40];
const SS: [usize; 2] = [10, 20];

/// Render MaAP@10/MiAP@10 as Ω varies, for two S settings, with the Random
/// reference and the TS-PPR/Random ratio. Both training and evaluation use
/// the same Ω (the paper's protocol).
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Fig. 11 — sensitivity of the minimum gap Ω (K={})\n",
        opts.k
    );
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        for &s in &SS {
            let mut rows = Vec::new();
            for &omega in &OMEGAS {
                if omega >= opts.window {
                    continue;
                }
                let cfg = EvalConfig {
                    window: opts.window,
                    omega,
                };
                let training = TrainingSet::build(
                    &exp.split.train,
                    &exp.stats,
                    &FeaturePipeline::standard(),
                    &SamplingConfig {
                        window: opts.window,
                        omega,
                        negatives_per_positive: s,
                        seed: opts.seed ^ 0x5A,
                    },
                );
                let (model, _) = TsPprTrainer::new(tsppr_config(&exp, opts)).train(&training);
                let rec = TsPprRecommender::new(model, FeaturePipeline::standard());
                let r = evaluate_multi_parallel(
                    &rec,
                    &exp.split,
                    &exp.stats,
                    &cfg,
                    &[10],
                    opts.threads,
                );
                let rnd = evaluate_multi_parallel(
                    &RandomRecommender::default(),
                    &exp.split,
                    &exp.stats,
                    &cfg,
                    &[10],
                    opts.threads,
                );
                let ratio = if rnd[0].maap() > 0.0 {
                    r[0].maap() / rnd[0].maap()
                } else {
                    0.0
                };
                rows.push(vec![
                    omega.to_string(),
                    format!("{:.4}", r[0].maap()),
                    format!("{:.4}", r[0].miap()),
                    format!("{:.4}", rnd[0].maap()),
                    format!("{:.2}", ratio),
                ]);
            }
            out.push_str(&format!(
                "\n[{kind}, S={s}]\n{}",
                format_table(
                    &["Ω", "MaAP@10", "MiAP@10", "Random@10", "TS-PPR/Random"],
                    &rows
                )
            ));
        }
    }
    out.push_str(
        "\n(Paper shape: on Gowalla accuracy decreases with Ω — recent repeats are\n\
         the recency-predictable, easy ones — while on Lastfm it increases with the\n\
         shrinking candidate set. In this synthetic substrate the candidate-set\n\
         shrinkage dominates both presets' absolute curves; the paper's contrast\n\
         survives in the normalized column: TS-PPR's advantage over Random falls\n\
         sharply with Ω on Gowalla-like data. See EXPERIMENTS.md.)\n",
    );
    out
}
