//! Bootstrap confidence intervals for the headline comparison (extension):
//! is TS-PPR's margin over the strongest baselines statistically solid at
//! this synthetic scale?

use crate::experiments::TOP_NS;
use crate::setup::{prepare, RunOptions};
use crate::zoo::ModelZoo;
use rrc_datagen::DatasetKind;
use rrc_eval::{bootstrap_metrics, evaluate_multi_parallel, format_table, EvalConfig};

const RESAMPLES: usize = 500;
const CONFIDENCE: f64 = 0.95;

/// Render MaAP@10 with 95% bootstrap intervals for every method.
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Bootstrap CIs — MaAP@10 with {:.0}% intervals, {RESAMPLES} user resamples\n",
        CONFIDENCE * 100.0
    );
    let cfg = EvalConfig {
        window: opts.window,
        omega: opts.omega,
    };
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let zoo = ModelZoo::full(&exp, opts);
        let mut rows = Vec::new();
        for (name, rec) in zoo.iter() {
            let results =
                evaluate_multi_parallel(rec, &exp.split, &exp.stats, &cfg, &TOP_NS, opts.threads);
            let at10 = &results[2];
            let boot = bootstrap_metrics(at10, RESAMPLES, CONFIDENCE, opts.seed ^ 0xC1);
            rows.push(vec![
                name.to_string(),
                format!("{:.4}", boot.maap.estimate),
                format!("[{:.4}, {:.4}]", boot.maap.lower, boot.maap.upper),
                format!("{:.4}", boot.miap.estimate),
                format!("[{:.4}, {:.4}]", boot.miap.lower, boot.miap.upper),
            ]);
        }
        out.push_str(&format!(
            "\n[{kind}]\n{}",
            format_table(&["method", "MaAP@10", "95% CI", "MiAP@10", "95% CI"], &rows)
        ));
    }
    out.push_str(
        "\n(Extension, not a paper table: users are the bootstrap resampling unit.\n\
         Non-overlapping intervals between TS-PPR and a baseline indicate the\n\
         ordering is robust to the user sample.)\n",
    );
    out
}
