//! Mixture extension (the paper's §4.3 + conclusion future work): TS-PPR
//! for novel items, and a STREC-gated unified pipeline that answers "what
//! will the user consume next?" across both repeat and novel events.

use crate::setup::{prepare, RunOptions};
use crate::zoo::{train_tsppr, tsppr_config};
use rrc_baselines::PopRecommender;
use rrc_core::{TsPprRecommender, TsPprTrainer};
use rrc_datagen::DatasetKind;
use rrc_eval::{evaluate_novel, evaluate_unified_with_threshold, format_table, EvalConfig};
use rrc_features::{build_novel_training_set, FeaturePipeline, NovelSamplingConfig};
use rrc_strec::{LassoConfig, StrecClassifier};

/// Render novel-item accuracy (TS-PPR vs Pop) and the unified pipeline's
/// next-item accuracy.
pub fn run(opts: &RunOptions) -> String {
    let mut out = format!(
        "Mixture extension — §4.3 novel-item TS-PPR and the STREC-gated unified pipeline (Ω={})\n",
        opts.omega
    );
    let cfg = EvalConfig {
        window: opts.window,
        omega: opts.omega,
    };
    let ns = [1, 5, 10];
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);

        // Repeat-side TS-PPR (standard pipeline).
        let (repeat_rec, _) = train_tsppr(&exp, opts, &FeaturePipeline::standard());

        // Novel-side TS-PPR: positives are first-time consumptions.
        let novel_training = build_novel_training_set(
            &exp.split.train,
            &exp.stats,
            &FeaturePipeline::standard(),
            &NovelSamplingConfig {
                window: opts.window,
                negatives_per_positive: opts.s,
                seed: opts.seed ^ 0x0e1,
                max_attempts: 64,
            },
        );
        let (novel_model, _) = TsPprTrainer::new(tsppr_config(&exp, opts)).train(&novel_training);
        let novel_rec = TsPprRecommender::new(novel_model, FeaturePipeline::standard());

        // Novel-item accuracy table.
        let mut rows = Vec::new();
        for (name, r) in [
            (
                "TS-PPR (novel)",
                evaluate_novel(&novel_rec, &exp.split, &exp.stats, &cfg, &ns),
            ),
            (
                "Pop (novel)",
                evaluate_novel(&PopRecommender, &exp.split, &exp.stats, &cfg, &ns),
            ),
        ] {
            rows.push(vec![
                name.to_string(),
                format!("{:.4}", r[0].maap()),
                format!("{:.4}", r[1].maap()),
                format!("{:.4}", r[2].maap()),
            ]);
        }
        out.push_str(&format!(
            "\n[{kind}] novel-item recommendation (candidates = unseen items)\n{}",
            format_table(&["method", "MaAP@1", "MaAP@5", "MaAP@10"], &rows)
        ));

        // Unified pipeline. Routing at the training base rate rather than
        // 0.5: with 70-80% repeats every probability clears 0.5, so the
        // base-rate threshold is what actually splits the traffic.
        let base_rate =
            rrc_sequence::DatasetStats::compute(&exp.split.train, opts.window, 1).repeat_fraction();
        if let Some(gate) = StrecClassifier::fit(
            &exp.split.train,
            &exp.stats,
            opts.window,
            &LassoConfig::default(),
        ) {
            let unified = evaluate_unified_with_threshold(
                &gate,
                &repeat_rec,
                &novel_rec,
                &exp.split,
                &exp.stats,
                &cfg,
                &ns,
                base_rate,
            );
            out.push_str(&format!(
                "unified next-item accuracy over ALL test events (gate threshold {base_rate:.2}): \
                 MaAP@1 {:.4}, @5 {:.4}, @10 {:.4} (routed {} repeat / {} novel)\n",
                unified.results[0].maap(),
                unified.results[1].maap(),
                unified.results[2].maap(),
                unified.routed_repeat,
                unified.routed_novel
            ));
        }
    }
    out.push_str(
        "\n(Extension, not a paper figure: demonstrates §4.3's claim that TS-PPR\n\
         transfers to novel-item recommendation, and the conclusion's envisioned\n\
         repeat/novel mixture.)\n",
    );
    out
}
