//! Table 5: combining STREC and TS-PPR into a holistic pipeline.

use crate::setup::{prepare, RunOptions};
use crate::zoo::train_tsppr;
use rrc_datagen::DatasetKind;
use rrc_eval::{evaluate_combined, format_table, EvalConfig};
use rrc_features::FeaturePipeline;
use rrc_strec::{LassoConfig, StrecClassifier};

/// Render STREC accuracy and TS-PPR's conditional MaAP@{1,5,10}, plus the
/// end-to-end product the paper quotes.
pub fn run(opts: &RunOptions) -> String {
    let cfg = EvalConfig {
        window: opts.window,
        omega: opts.omega,
    };
    let mut rows = Vec::new();
    for kind in [DatasetKind::Gowalla, DatasetKind::Lastfm] {
        let exp = prepare(kind, opts);
        let classifier = match StrecClassifier::fit(
            &exp.split.train,
            &exp.stats,
            opts.window,
            &LassoConfig::default(),
        ) {
            Some(c) => c,
            None => {
                rows.push(vec![kind.to_string(); 6]);
                continue;
            }
        };
        let (tsppr, _) = train_tsppr(&exp, opts, &FeaturePipeline::standard());
        let result = evaluate_combined(
            &classifier,
            &tsppr,
            &exp.split,
            &exp.stats,
            &cfg,
            &[1, 5, 10],
        );
        rows.push(vec![
            kind.to_string(),
            format!("{:.4}", result.strec_accuracy()),
            format!("{:.4}", result.conditional[0].maap()),
            format!("{:.4}", result.conditional[1].maap()),
            format!("{:.4}", result.conditional[2].maap()),
            format!("{:.4}", result.end_to_end_maap(2)),
        ]);
    }
    format!(
        "Table 5 — STREC × TS-PPR holistic pipeline (Ω={}, S={})\n{}\n\
         (Conditional MaAP@N is measured on eligible repeats STREC correctly\n\
         flagged; the last column is STREC × MaAP@10, the paper's end-to-end\n\
         estimate, e.g. 0.6912 × 0.6314 ≈ 0.44 on Gowalla.)\n",
        opts.omega,
        opts.s,
        format_table(
            &[
                "data set",
                "STREC acc",
                "MaAP@1",
                "MaAP@5",
                "MaAP@10",
                "end-to-end@10"
            ],
            &rows
        )
    )
}
