//! Feature-extraction throughput: the per-candidate cost inside every
//! recommendation and every pre-sampling pass.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rrc_bench::setup::{prepare, RunOptions};
use rrc_datagen::DatasetKind;
use rrc_features::{FeatureContext, FeaturePipeline};
use rrc_sequence::{UserId, WindowState};

fn bench_features(c: &mut Criterion) {
    let opts = RunOptions::fast();
    let exp = prepare(DatasetKind::Gowalla, &opts);
    let user = UserId(0);
    let window = WindowState::warmed(opts.window, exp.split.train.sequence(user).events());
    let ctx = FeatureContext {
        window: &window,
        stats: &exp.stats,
    };
    let pipeline = FeaturePipeline::standard();
    let candidates = window.eligible_candidates(opts.omega);
    assert!(!candidates.is_empty());

    let mut group = c.benchmark_group("feature_extraction");
    group.throughput(Throughput::Elements(candidates.len() as u64));
    group.bench_function("standard_pipeline_window_candidates", |b| {
        let mut buf = Vec::with_capacity(4);
        b.iter(|| {
            for &v in &candidates {
                pipeline.extract_into(&ctx, v, &mut buf);
                std::hint::black_box(&buf);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
