//! Observability hot-path cost: the metrics primitives every serving
//! request and training step touches must stay in the low-nanosecond
//! range so instrumentation never shows up in a profile.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rrc_obs::{Registry, WindowSpec};

fn bench_obs(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench_counter_total");
    let histogram = registry.histogram("bench_latency_ns");
    let span_hist = registry.span_histogram("bench.span");
    let windowed_counter = registry.windowed_counter("bench_window_total", WindowSpec::default());
    let windowed_hist =
        registry.windowed_histogram("bench_window_latency_ns", WindowSpec::default());

    let mut group = c.benchmark_group("obs");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            counter.inc();
            std::hint::black_box(&counter);
        });
    });
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            histogram.record(std::hint::black_box(v));
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1) >> 33;
        });
    });
    group.bench_function("histogram_timer", |b| {
        b.iter(|| {
            let t = histogram.timer();
            std::hint::black_box(&t);
        });
    });
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| {
            let span = registry.span("bench.span");
            std::hint::black_box(&span);
        });
    });
    group.bench_function("span_hist_record_duration", |b| {
        b.iter(|| {
            span_hist.record_duration(std::time::Duration::from_nanos(std::hint::black_box(137)));
        });
    });
    // The windowed twins add an epoch-tag check (and a clock read on the
    // clocked entry points) on top of the cumulative primitives; the
    // serve tracing hot path leans on these staying cheap.
    group.bench_function("windowed_counter_inc", |b| {
        b.iter(|| {
            windowed_counter.inc();
            std::hint::black_box(&windowed_counter);
        });
    });
    group.bench_function("windowed_counter_add_at_instant", |b| {
        let at = std::time::Instant::now();
        b.iter(|| {
            windowed_counter.add_at_instant(std::hint::black_box(at), 1);
        });
    });
    group.bench_function("windowed_histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            windowed_hist.record(std::hint::black_box(v));
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1) >> 33;
        });
    });
    // Profiler guard cost, both switch positions: disabled must be a
    // single relaxed load (the "always-on" claim — instrumentation left
    // compiled into every hot path), enabled adds an intern-cache hit
    // plus two relaxed stores.
    rrc_obs::profile::disable();
    group.bench_function("prof_guard_disabled", |b| {
        b.iter(|| {
            let g = rrc_obs::ProfGuard::enter("bench_frame");
            std::hint::black_box(&g);
        });
    });
    rrc_obs::profile::enable();
    group.bench_function("prof_guard_enabled", |b| {
        b.iter(|| {
            let g = rrc_obs::ProfGuard::enter("bench_frame");
            std::hint::black_box(&g);
        });
    });
    rrc_obs::profile::disable();
    rrc_obs::profile::reset();
    group.finish();

    // Snapshot cost (cold path, but bounded): quantiles off a snapshot must
    // not re-walk atomics per call.
    let snap = histogram.snapshot();
    let mut cold = c.benchmark_group("obs_cold");
    cold.bench_function("snapshot_quantiles", |b| {
        b.iter(|| {
            let s = std::hint::black_box(&snap);
            std::hint::black_box((s.p50(), s.p95(), s.p99(), s.mean()));
        });
    });
    cold.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
