//! Serving-engine throughput: events ingested per second as a function of
//! shard count, with online learning off and on.
//!
//! Each iteration replays the full test stream through
//! `ServeEngine::observe_nowait` and waits for a `flush` barrier, so the
//! measured time covers routing, queueing, window maintenance, and (when
//! learning) online SGD in the shards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::{OnlineConfig, OnlineTsPpr, TsPprModel};
use rrc_datagen::GeneratorConfig;
use rrc_features::{FeaturePipeline, TrainStats};
use rrc_sequence::{ItemId, UserId};
use rrc_serve::ServeEngine;

const WINDOW: usize = 100;
const OMEGA: usize = 10;

fn warmed_online(negatives_per_event: usize) -> (OnlineTsPpr, Vec<(UserId, Vec<ItemId>)>) {
    let data = GeneratorConfig::tiny()
        .with_users(200)
        .with_items(400)
        .with_events_per_user(130, 200)
        .with_seed(7)
        .generate();
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, WINDOW);
    let pipeline = FeaturePipeline::standard();
    let mut rng = StdRng::seed_from_u64(11);
    let model = TsPprModel::init(
        &mut rng,
        data.num_users(),
        data.num_items(),
        16,
        pipeline.len(),
        0.1,
        0.05,
    );
    let mut online = OnlineTsPpr::new(
        model,
        pipeline,
        stats,
        OnlineConfig {
            window: WINDOW,
            omega: OMEGA,
            negatives_per_event,
            ..OnlineConfig::default()
        },
    );
    online.warm_from(&split.train);
    let replay = split
        .test
        .iter()
        .enumerate()
        .map(|(u, s)| (UserId(u as u32), s.events().to_vec()))
        .collect();
    (online, replay)
}

fn bench_observe_throughput(c: &mut Criterion) {
    for (mode, negatives) in [("frozen", 0usize), ("learning", 3)] {
        let mut group = c.benchmark_group(format!("serve_observe_{mode}"));
        let (_, replay) = warmed_online(negatives);
        let total: usize = replay.iter().map(|(_, e)| e.len()).sum();
        group.throughput(Throughput::Elements(total as u64));
        for shards in [1usize, 2, 4] {
            let (online, replay) = warmed_online(negatives);
            let engine = ServeEngine::start(online, shards);
            group.bench_with_input(BenchmarkId::from_parameter(shards), &replay, |b, replay| {
                b.iter(|| {
                    for (user, events) in replay {
                        for &item in events {
                            engine.observe_nowait(*user, item);
                        }
                    }
                    engine.flush();
                });
            });
            engine.shutdown();
        }
        group.finish();
    }
}

fn bench_recommend_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_recommend_top10");
    for shards in [1usize, 4] {
        let (online, _) = warmed_online(0);
        let engine = ServeEngine::start(online, shards);
        group.bench_with_input(BenchmarkId::from_parameter(shards), &engine, |b, engine| {
            let mut u = 0u32;
            b.iter(|| {
                u = (u + 1) % 200;
                std::hint::black_box(engine.recommend(UserId(u), 10))
            });
        });
        engine.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_observe_throughput, bench_recommend_latency
}
criterion_main!(benches);
