//! Serving-engine throughput: events ingested per second as a function of
//! shard count, with online learning off and on.
//!
//! Each iteration replays the full test stream through
//! `ServeEngine::observe_nowait` and waits for a `flush` barrier, so the
//! measured time covers routing, queueing, window maintenance, and (when
//! learning) online SGD in the shards. A separate group pins the
//! admission gate's per-request cost on its fast (admit) and saturated
//! (shed) paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::{OnlineConfig, OnlineTsPpr, TsPprModel};
use rrc_datagen::GeneratorConfig;
use rrc_features::{FeaturePipeline, TrainStats};
use rrc_sequence::{ItemId, UserId};
use rrc_serve::ServeEngine;

const WINDOW: usize = 100;
const OMEGA: usize = 10;

fn warmed_online(negatives_per_event: usize) -> (OnlineTsPpr, Vec<(UserId, Vec<ItemId>)>) {
    let data = GeneratorConfig::tiny()
        .with_users(200)
        .with_items(400)
        .with_events_per_user(130, 200)
        .with_seed(7)
        .generate();
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, WINDOW);
    let pipeline = FeaturePipeline::standard();
    let mut rng = StdRng::seed_from_u64(11);
    let model = TsPprModel::init(
        &mut rng,
        data.num_users(),
        data.num_items(),
        16,
        pipeline.len(),
        0.1,
        0.05,
    );
    let mut online = OnlineTsPpr::new(
        model,
        pipeline,
        stats,
        OnlineConfig {
            window: WINDOW,
            omega: OMEGA,
            negatives_per_event,
            ..OnlineConfig::default()
        },
    );
    online.warm_from(&split.train);
    let replay = split
        .test
        .iter()
        .enumerate()
        .map(|(u, s)| (UserId(u as u32), s.events().to_vec()))
        .collect();
    (online, replay)
}

fn bench_observe_throughput(c: &mut Criterion) {
    for (mode, negatives) in [("frozen", 0usize), ("learning", 3)] {
        let mut group = c.benchmark_group(format!("serve_observe_{mode}"));
        let (_, replay) = warmed_online(negatives);
        let total: usize = replay.iter().map(|(_, e)| e.len()).sum();
        group.throughput(Throughput::Elements(total as u64));
        for shards in [1usize, 2, 4] {
            let (online, replay) = warmed_online(negatives);
            let engine = ServeEngine::start(online, shards);
            group.bench_with_input(BenchmarkId::from_parameter(shards), &replay, |b, replay| {
                b.iter(|| {
                    for (user, events) in replay {
                        for &item in events {
                            engine.observe_nowait(*user, item);
                        }
                    }
                    engine.flush();
                });
            });
            engine.shutdown();
        }
        group.finish();
    }
}

/// The admission gate sits on every data request when a queue bound is
/// configured, so its CAS loop must stay in the few-nanosecond range —
/// this pins the per-request overhead of overload protection.
fn bench_admission_gate(c: &mut Criterion) {
    use rrc_serve::{AdmissionGate, RequestKind};
    let mut group = c.benchmark_group("serve_admission_gate");
    group.throughput(Throughput::Elements(1));
    // Uncontended fast path: admit + release on an empty gate.
    let gate = AdmissionGate::new(64, 48);
    group.bench_function("admit_release", |b| {
        b.iter(|| {
            if gate.try_admit(RequestKind::Observe).is_ok() {
                gate.release();
            }
        });
    });
    // Saturated path: the gate is full, every attempt sheds. This is the
    // cost paid exactly when the engine can least afford extra work.
    let full = AdmissionGate::new(4, 4);
    while full.try_admit(RequestKind::Recommend).is_ok() {}
    group.bench_function("shed_when_full", |b| {
        b.iter(|| std::hint::black_box(full.try_admit(RequestKind::Observe).is_err()));
    });
    group.finish();
}

fn bench_recommend_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_recommend_top10");
    for shards in [1usize, 4] {
        let (online, _) = warmed_online(0);
        let engine = ServeEngine::start(online, shards);
        group.bench_with_input(BenchmarkId::from_parameter(shards), &engine, |b, engine| {
            let mut u = 0u32;
            b.iter(|| {
                u = (u + 1) % 200;
                std::hint::black_box(engine.recommend(UserId(u), 10))
            });
        });
        engine.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_observe_throughput, bench_recommend_latency, bench_admission_gate
}
criterion_main!(benches);
