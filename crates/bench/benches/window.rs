//! Window-maintenance throughput: the O(1)-amortised push and the
//! candidate-enumeration cost that bound every walker in the workspace.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rrc_bench::setup::{prepare, RunOptions};
use rrc_datagen::DatasetKind;
use rrc_sequence::{UserId, WindowState};

fn bench_window(c: &mut Criterion) {
    let opts = RunOptions::fast();
    let exp = prepare(DatasetKind::Gowalla, &opts);
    let events = exp.split.train.sequence(UserId(0)).events().to_vec();

    let mut group = c.benchmark_group("window");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("push_stream", |b| {
        b.iter(|| {
            let mut w = WindowState::new(opts.window);
            for &item in &events {
                w.push(item);
            }
            std::hint::black_box(w.len())
        });
    });

    let warmed = WindowState::warmed(opts.window, &events);
    group.bench_function("eligible_candidates", |b| {
        b.iter(|| std::hint::black_box(warmed.eligible_candidates(opts.omega)));
    });
    group.bench_function("membership_queries", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &item in events.iter().take(200) {
                acc += warmed.count(item);
            }
            std::hint::black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_window);
criterion_main!(benches);
