//! Substrate throughput: the offline costs behind §5.6 — Cox fitting,
//! STREC fitting, DYRC likelihood training, and workload generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rrc_baselines::{DyrcConfig, DyrcTrainer};
use rrc_bench::setup::{prepare, RunOptions};
use rrc_datagen::{DatasetKind, GeneratorConfig, Zipf};
use rrc_strec::{LassoConfig, StrecClassifier};
use rrc_survival::{gap_observations, CoxConfig, CoxModel};

fn bench_substrates(c: &mut Criterion) {
    let opts = RunOptions::fast();
    let exp = prepare(DatasetKind::Gowalla, &opts);

    // Cox proportional hazards: observation extraction + Newton fit.
    let observations = gap_observations(&exp.split.train, &exp.stats, opts.window);
    let mut group = c.benchmark_group("survival");
    group.sample_size(10);
    group.throughput(Throughput::Elements(observations.len() as u64));
    group.bench_function("gap_extraction", |b| {
        b.iter(|| std::hint::black_box(gap_observations(&exp.split.train, &exp.stats, opts.window)))
    });
    group.bench_function("cox_newton_fit", |b| {
        b.iter(|| std::hint::black_box(CoxModel::fit(&observations, &CoxConfig::default())))
    });
    group.finish();

    // STREC: feature extraction + Lasso fit.
    let mut group = c.benchmark_group("strec");
    group.sample_size(10);
    group.bench_function("fit_classifier", |b| {
        b.iter(|| {
            std::hint::black_box(StrecClassifier::fit(
                &exp.split.train,
                &exp.stats,
                opts.window,
                &LassoConfig {
                    epochs: 50,
                    ..LassoConfig::default()
                },
            ))
        })
    });
    group.finish();

    // DYRC: choice-event extraction + likelihood ascent.
    let mut group = c.benchmark_group("dyrc");
    group.sample_size(10);
    group.bench_function("train_mixed_weights", |b| {
        let trainer = DyrcTrainer::new(DyrcConfig {
            window: opts.window,
            omega: opts.omega,
            epochs: 20,
            ..DyrcConfig::default()
        });
        b.iter(|| std::hint::black_box(trainer.train(&exp.split.train, &exp.stats)))
    });
    group.finish();

    // Workload generation.
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    let config = GeneratorConfig::tiny().with_users(16);
    group.bench_function("generate_tiny_16_users", |b| {
        b.iter(|| std::hint::black_box(config.generate()))
    });
    let zipf = Zipf::new(10_000, 1.0);
    group.throughput(Throughput::Elements(1000));
    group.bench_function("zipf_sample_1k", |b| {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1000 {
                acc += zipf.sample(&mut rng);
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
