//! Per-instance online recommendation latency of every method — the
//! microbenchmark behind Fig. 13.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrc_bench::setup::{prepare, RunOptions};
use rrc_bench::zoo::ModelZoo;
use rrc_datagen::DatasetKind;
use rrc_features::RecContext;
use rrc_sequence::{UserId, WindowState};

fn bench_recommend(c: &mut Criterion) {
    let opts = RunOptions::fast();
    let exp = prepare(DatasetKind::Gowalla, &opts);
    let zoo = ModelZoo::full(&exp, &opts);

    // One representative query context: a user with a full window.
    let user = UserId(0);
    let window = WindowState::warmed(opts.window, exp.split.train.sequence(user).events());
    let ctx = RecContext {
        user,
        window: &window,
        stats: &exp.stats,
        omega: opts.omega,
    };

    let mut group = c.benchmark_group("recommend_top10");
    for (name, rec) in zoo.iter() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ctx, |b, ctx| {
            b.iter(|| std::hint::black_box(rec.recommend(ctx, 10)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_recommend
}
criterion_main!(benches);
