//! Store format cost: encode, CRC-validated parse, zero-copy row access,
//! and owned materialization for a realistically-sized model file. Byte
//! throughput is reported so regressions show up as MB/s, the unit the
//! `store-bench` binary records in `BENCH_store.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::TsPprModel;
use rrc_store::crc32;
use rrc_store::model::{encode_model, ModelView};

fn bench_store(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    // 1000 users × 2000 items, K=40, f=9 — a few tens of MB, dominated by
    // the per-user A_u transforms like real trained models.
    let model = TsPprModel::init(&mut rng, 1000, 2000, 40, 9, 0.1, 0.05);
    let bytes = encode_model(&model, &[]);
    let size = bytes.len() as u64;

    let mut group = c.benchmark_group("store");
    group.throughput(Throughput::Bytes(size));
    group.sample_size(10);
    group.bench_function("encode_model", |b| {
        b.iter(|| std::hint::black_box(encode_model(&model, &[])));
    });
    group.bench_function("parse_validate", |b| {
        // Full container walk: every section CRC verified, zero copies.
        b.iter(|| std::hint::black_box(ModelView::from_bytes(&bytes).expect("parse")));
    });
    group.bench_function("parse_and_materialize", |b| {
        b.iter(|| {
            let view = ModelView::from_bytes(&bytes).expect("parse");
            std::hint::black_box(view.to_model())
        });
    });
    group.bench_function("crc32_full_file", |b| {
        b.iter(|| std::hint::black_box(crc32(&bytes)));
    });
    group.finish();

    // Row access must be pointer math off the parsed buffer, not a copy.
    let view = ModelView::from_bytes(&bytes).expect("parse");
    let mut rows = c.benchmark_group("store_rows");
    rows.throughput(Throughput::Elements(1));
    rows.bench_function("user_row", |b| {
        let mut u = 0usize;
        b.iter(|| {
            let row = view.user_row(std::hint::black_box(u));
            u = (u + 1) % view.num_users();
            std::hint::black_box(row)
        });
    });
    rows.bench_function("transform", |b| {
        let mut u = 0usize;
        b.iter(|| {
            let a = view.transform(std::hint::black_box(u));
            u = (u + 1) % view.num_users();
            std::hint::black_box(a)
        });
    });
    rows.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
