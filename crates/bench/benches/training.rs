//! Training throughput: TS-PPR SGD sweeps and the convergence check
//! (the cost profile behind Fig. 12 / §5.6).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rrc_bench::setup::{prepare, RunOptions};
use rrc_bench::zoo::{build_training_set, tsppr_config};
use rrc_core::{ParallelConfig, ParallelTrainer, TsPprTrainer};
use rrc_datagen::DatasetKind;
use rrc_features::FeaturePipeline;

fn bench_training(c: &mut Criterion) {
    let opts = RunOptions::fast();
    let exp = prepare(DatasetKind::Gowalla, &opts);
    let training = build_training_set(&exp, &opts, &FeaturePipeline::standard());

    let mut group = c.benchmark_group("tsppr_training");
    group.throughput(Throughput::Elements(training.num_quadruples() as u64));
    group.sample_size(10);
    group.bench_function("one_sweep", |b| {
        // One full sweep of |D| SGD steps, no convergence checks.
        let mut cfg = tsppr_config(&exp, &opts);
        cfg.max_sweeps = 1;
        cfg.convergence_eps = 0.0; // never converge early
        cfg.check_interval_fraction = 1.0;
        let trainer = TsPprTrainer::new(cfg);
        b.iter(|| std::hint::black_box(trainer.train(&training)));
    });
    for threads in [2, 4] {
        group.bench_function(format!("one_sweep_sharded_x{threads}"), |b| {
            // Same sweep, user-sharded across worker threads.
            let mut cfg = tsppr_config(&exp, &opts);
            cfg.max_sweeps = 1;
            cfg.convergence_eps = 0.0;
            cfg.check_interval_fraction = 1.0;
            let trainer = ParallelTrainer::new(cfg, ParallelConfig::sharded(threads));
            b.iter(|| std::hint::black_box(trainer.train(&training)));
        });
    }
    group.finish();

    let mut sampling = c.benchmark_group("training_set_build");
    sampling.sample_size(10);
    sampling.bench_function("presample_and_features", |b| {
        b.iter(|| {
            std::hint::black_box(build_training_set(
                &exp,
                &opts,
                &FeaturePipeline::standard(),
            ))
        });
    });
    sampling.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
