//! Bench-scale parallel-training quality gates on the Fig. 12 convergence
//! workload (the same prepare → sample → train path `reproduce fig12`
//! runs, at `--fast` scale):
//!
//! * Hogwild at 4 threads must land within 5% of the serial trainer's
//!   final small-batch margin r̃ — lock-free races may cost a little
//!   accuracy, never model quality;
//! * the sharded trainer at 4 threads must be run-to-run byte-identical
//!   at this scale too, not just on the tiny unit fixtures.

use rrc_bench::setup::{prepare, RunOptions};
use rrc_bench::zoo::{build_training_set, tsppr_config};
use rrc_core::{ParallelConfig, ParallelTrainer, TrainMode, TsPprModel};
use rrc_datagen::DatasetKind;
use rrc_features::FeaturePipeline;
use rrc_sequence::{ItemId, UserId};

fn model_bits(m: &TsPprModel) -> Vec<u64> {
    let mut bits = Vec::new();
    for u in 0..m.num_users() {
        let user = UserId(u as u32);
        bits.extend(m.user_factor(user).iter().map(|x| x.to_bits()));
        bits.extend(m.transform(user).as_slice().iter().map(|x| x.to_bits()));
    }
    for v in 0..m.num_items() {
        bits.extend(m.item_factor(ItemId(v as u32)).iter().map(|x| x.to_bits()));
    }
    bits
}

#[test]
fn hogwild_matches_serial_quality_on_fig12_config() {
    let opts = RunOptions::fast();
    let exp = prepare(DatasetKind::Gowalla, &opts);
    let training = build_training_set(&exp, &opts, &FeaturePipeline::standard());
    let cfg = tsppr_config(&exp, &opts);

    let (serial_model, serial_report) =
        ParallelTrainer::new(cfg.clone(), ParallelConfig::serial()).train(&training);
    let (hog_model, hog_report) =
        ParallelTrainer::new(cfg, ParallelConfig::new(TrainMode::Hogwild, 4)).train(&training);

    assert!(serial_model.is_finite());
    assert!(
        hog_model.is_finite(),
        "hogwild produced non-finite parameters"
    );

    let serial_r = serial_report.final_r_tilde();
    let hog_r = hog_report.final_r_tilde();
    assert!(serial_r > 0.0, "serial failed to learn (r̃ = {serial_r})");
    // One-sided: lost updates may cost a little margin, but landing *above*
    // serial is fine — the race only ever drops gradient steps, and how many
    // depends on thread timing, so a symmetric band is flaky by construction.
    assert!(
        hog_r >= 0.95 * serial_r,
        "hogwild final r̃ {hog_r:.4} fell more than 5% below serial {serial_r:.4}"
    );
}

#[test]
fn sharded_is_deterministic_on_fig12_config() {
    let opts = RunOptions::fast();
    let exp = prepare(DatasetKind::Gowalla, &opts);
    let training = build_training_set(&exp, &opts, &FeaturePipeline::standard());
    let cfg = tsppr_config(&exp, &opts);

    let par = ParallelConfig::new(TrainMode::Sharded, 4);
    let (a, ra) = ParallelTrainer::new(cfg.clone(), par).train(&training);
    let (b, rb) = ParallelTrainer::new(cfg, par).train(&training);
    assert_eq!(
        model_bits(&a),
        model_bits(&b),
        "sharded x4 not byte-identical across runs at bench scale"
    );
    assert_eq!(ra.steps, rb.steps);
}
