//! The incremental trainer: tail a stream, evaluate prequentially, learn,
//! checkpoint, publish.
//!
//! [`StreamTrainer`] owns the same state triple as the batch pipeline —
//! model, per-user windows, per-shard RNG streams — and advances it one
//! event at a time. Every eligible repeat is first **scored against the
//! current model** (the prequential, evaluate-then-learn protocol: the
//! event acts as a test example exactly once, before the model has seen
//! it) and only then becomes pairwise SGD steps through the workspace's
//! single `sgd_step` kernel. Because the kernel, the negative-sampling
//! draw order, and the shard-seed layout are shared with the batch
//! trainers, the whole run is deterministic: same seed + same stream ⇒
//! bit-identical model, and a kill/resume through [`StreamCheckpoint`] is
//! bit-identical to an uninterrupted run.

use crate::source::{EventSource, Poll, StreamEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::parallel::{mix64, shard_stream_seed};
use rrc_core::{online_step_single, recommend_single, shard_for, OnlineConfig, TsPprModel};
use rrc_features::{FeaturePipeline, TrainStats};
use rrc_obs::{Counter, Json, Registry};
use rrc_sequence::{classify, ConsumptionKind, Dataset, UserId, WindowState};
use rrc_store::{
    save_stream_checkpoint, ModelRegistry, PrequentialCounters, StoreError, StreamCheckpoint,
    META_FINGERPRINT,
};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The prequential cutoffs: hit@1, hit@5, hit@10.
pub const PREQ_CUTOFFS: [usize; 3] = [1, 5, 10];

/// Continuous-training settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// The online-learning core: window capacity, Ω, negatives per
    /// event, SGD rates, and the seed every shard RNG stream derives
    /// from. `negatives_per_event = 0` gives a pure prequential
    /// *evaluator* — windows advance and metrics accrue, the model stays
    /// frozen.
    pub online: OnlineConfig,
    /// Shard count: fixes the user → RNG-stream routing (PR-3 layout:
    /// shard 0 runs on the seed itself, shard `s > 0` on
    /// `shard_stream_seed(seed, s)`), so a trainer reproduces the
    /// negative-sampling draws of an equally-sharded engine.
    pub shards: usize,
    /// Recommendation-list length for prequential scoring; must cover
    /// the largest cutoff in [`PREQ_CUTOFFS`].
    pub eval_n: usize,
    /// Rolling horizon (in *opportunities*, not events) for the windowed
    /// prequential rates — the live "is the model keeping up with drift"
    /// signal, as opposed to the diluted since-start cumulative rates.
    pub eval_window: usize,
    /// Publish the model to the attached registry every this many
    /// events; 0 = never.
    pub publish_every: u64,
    /// Write a durable checkpoint every this many events; 0 = never.
    pub checkpoint_every: u64,
    /// Back-off sleep when the source reports [`Poll::Pending`].
    pub idle_sleep: Duration,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            online: OnlineConfig::default(),
            shards: 1,
            eval_n: 10,
            eval_window: 512,
            publish_every: 0,
            checkpoint_every: 0,
            idle_sleep: Duration::from_millis(1),
        }
    }
}

impl StreamConfig {
    /// Everything that pins the deterministic replay, folded to 64 bits.
    /// Stamped into checkpoints (a resume under a different configuration
    /// would silently diverge, so it is refused) and into published model
    /// files (so serve-side quality reports can attribute versions).
    pub fn fingerprint(&self, num_users: usize, num_items: usize) -> u64 {
        let mut h: u64 = 0x5452_4541_4d31; // "STREAM1"
        for word in [
            self.shards as u64,
            self.online.window as u64,
            self.online.omega as u64,
            self.online.negatives_per_event as u64,
            self.online.alpha.to_bits(),
            self.online.gamma.to_bits(),
            self.online.lambda.to_bits(),
            self.online.seed,
            num_users as u64,
            num_items as u64,
        ] {
            h = mix64(h ^ word);
        }
        h
    }
}

/// What [`StreamTrainer::process`] did with one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventOutcome {
    /// The event's classification against the user's window.
    pub kind: ConsumptionKind,
    /// For an eligible repeat: the 0-based rank of the consumed item in
    /// the prequential top-`eval_n` scored **before** learning (`None` =
    /// outside the list). Always `None` for other kinds.
    pub rank: Option<usize>,
    /// SGD updates taken for this event.
    pub updates: u64,
}

/// Continuous-trainer failures.
#[derive(Debug)]
pub enum StreamError {
    /// A checkpoint or publish hit the store layer.
    Store(StoreError),
    /// A checkpoint was produced by a different configuration.
    FingerprintMismatch {
        /// What the current configuration hashes to.
        expected: u64,
        /// What the checkpoint carries.
        found: u64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Store(e) => write!(f, "store: {e}"),
            StreamError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:016x} does not match this \
                 configuration ({expected:016x}); resuming would diverge"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<StoreError> for StreamError {
    fn from(e: StoreError) -> Self {
        StreamError::Store(e)
    }
}

/// Counter handles into whichever [`Registry`] the trainer reports to —
/// `loadgen --continuous` hands over the serving engine's registry so
/// trainer and engine metrics land in one report.
struct TrainerMetrics {
    events: Arc<Counter>,
    trained: Arc<Counter>,
    updates: Arc<Counter>,
    skipped: Arc<Counter>,
    publishes: Arc<Counter>,
    checkpoints: Arc<Counter>,
    preq_opportunities: Arc<Counter>,
    preq_hits: [Arc<Counter>; 3],
}

impl TrainerMetrics {
    fn bind(reg: &Registry) -> TrainerMetrics {
        let hit =
            |at: usize| reg.counter_with("stream_preq_hits_total", &[("at", &at.to_string())]);
        TrainerMetrics {
            events: reg.counter("stream_events_total"),
            trained: reg.counter("stream_events_trained_total"),
            updates: reg.counter("stream_updates_total"),
            skipped: reg.counter("stream_events_skipped_total"),
            publishes: reg.counter("stream_publishes_total"),
            checkpoints: reg.counter("stream_checkpoints_total"),
            preq_opportunities: reg.counter("stream_preq_opportunities_total"),
            preq_hits: [hit(1), hit(5), hit(10)],
        }
    }
}

/// The continuous trainer. See the module docs for the protocol; see
/// [`StreamTrainer::process`] for the per-event step.
pub struct StreamTrainer {
    cfg: StreamConfig,
    model: TsPprModel,
    pipeline: FeaturePipeline,
    stats: TrainStats,
    windows: Vec<WindowState>,
    rngs: Vec<StdRng>,
    fingerprint: u64,
    events_processed: u64,
    events_trained: u64,
    updates: u64,
    publishes: u64,
    preq: PrequentialCounters,
    /// Ranks of the most recent `eval_window` opportunities.
    recent: VecDeque<Option<usize>>,
    registry: Option<ModelRegistry>,
    publish_log: Vec<(u64, Instant)>,
    checkpoint_path: Option<PathBuf>,
    metrics: TrainerMetrics,
}

impl StreamTrainer {
    /// A trainer over a (batch-trained or freshly initialised) model.
    /// Windows start empty; warm them with [`StreamTrainer::warm_from`].
    /// Metrics go to the global registry until
    /// [`StreamTrainer::bind_metrics`] points them elsewhere.
    pub fn new(
        model: TsPprModel,
        pipeline: FeaturePipeline,
        stats: TrainStats,
        cfg: StreamConfig,
    ) -> StreamTrainer {
        assert!(cfg.shards > 0, "at least one shard required");
        assert!(
            cfg.online.omega < cfg.online.window,
            "omega must be < window"
        );
        assert!(
            cfg.eval_n >= PREQ_CUTOFFS[PREQ_CUTOFFS.len() - 1],
            "eval_n must cover the largest prequential cutoff"
        );
        assert!(cfg.eval_window > 0, "eval_window must be positive");
        assert_eq!(
            model.f_dim(),
            pipeline.len(),
            "pipeline dimension must match the model"
        );
        let fingerprint = cfg.fingerprint(model.num_users(), model.num_items());
        let windows = (0..model.num_users())
            .map(|_| WindowState::new(cfg.online.window))
            .collect();
        let rngs = shard_rngs(&cfg, None);
        StreamTrainer {
            cfg,
            model,
            pipeline,
            stats,
            windows,
            rngs,
            fingerprint,
            events_processed: 0,
            events_trained: 0,
            updates: 0,
            publishes: 0,
            preq: PrequentialCounters::default(),
            recent: VecDeque::new(),
            registry: None,
            publish_log: Vec::new(),
            checkpoint_path: None,
            metrics: TrainerMetrics::bind(rrc_obs::global()),
        }
    }

    /// Resurrect a trainer from a durable checkpoint. Refused when the
    /// checkpoint was produced under a different configuration — a resume
    /// that silently diverged would defeat the whole guarantee. The
    /// caller must [`EventSource::skip`] the source to the checkpoint's
    /// [`StreamTrainer::events_processed`] before running.
    pub fn resume(
        ck: StreamCheckpoint,
        pipeline: FeaturePipeline,
        stats: TrainStats,
        cfg: StreamConfig,
    ) -> Result<StreamTrainer, StreamError> {
        let expected = cfg.fingerprint(ck.model.num_users(), ck.model.num_items());
        if ck.fingerprint != expected || ck.shards != cfg.shards {
            return Err(StreamError::FingerprintMismatch {
                expected,
                found: ck.fingerprint,
            });
        }
        let mut trainer = StreamTrainer::new(ck.model, pipeline, stats, cfg);
        trainer.windows = ck.windows;
        trainer.rngs = ck
            .rng_states
            .iter()
            .map(|&s| StdRng::from_state(s))
            .collect();
        trainer.events_processed = ck.events_processed;
        trainer.events_trained = ck.events_trained;
        trainer.updates = ck.updates;
        trainer.publishes = ck.publishes;
        trainer.preq = ck.preq;
        Ok(trainer)
    }

    /// Warm every user's window from (training) history without learning
    /// or evaluating — the stream picks up where the batch split ended.
    pub fn warm_from(&mut self, history: &Dataset) {
        assert_eq!(
            history.num_users(),
            self.windows.len(),
            "history must cover the same users"
        );
        for (user, seq) in history.iter() {
            let w = &mut self.windows[user.index()];
            for &item in seq.events() {
                w.push(item);
            }
        }
    }

    /// Report metrics into `registry` instead of the global one.
    pub fn bind_metrics(&mut self, registry: &Registry) {
        self.metrics = TrainerMetrics::bind(registry);
    }

    /// Publish into `registry` every `cfg.publish_every` events (and on
    /// [`StreamTrainer::publish_now`]).
    pub fn set_registry(&mut self, registry: ModelRegistry) {
        self.registry = Some(registry);
    }

    /// Write checkpoints to `path` every `cfg.checkpoint_every` events
    /// (and on [`StreamTrainer::checkpoint_now`]).
    pub fn set_checkpoint_path(&mut self, path: impl Into<PathBuf>) {
        self.checkpoint_path = Some(path.into());
    }

    /// Ingest one event. The order inside is the contract:
    ///
    /// 1. classify against the user's current window;
    /// 2. if eligible repeat: **score prequentially against the current
    ///    model** — rank of the consumed item in the top-`eval_n`;
    /// 3. only then learn (pairwise SGD vs. window negatives, on the
    ///    user's shard RNG stream);
    /// 4. advance the window;
    /// 5. on cadence: publish and/or checkpoint.
    ///
    /// Events for users beyond the model are counted and skipped
    /// (`None`): a live stream may mention users the deployed model was
    /// never shaped for.
    pub fn process(&mut self, ev: StreamEvent) -> Result<Option<EventOutcome>, StreamError> {
        if ev.user.index() >= self.windows.len() || ev.item.index() >= self.model.num_items() {
            self.metrics.skipped.inc();
            return Ok(None);
        }
        let _prof = rrc_obs::ProfGuard::enter("stream");
        let omega = self.cfg.online.omega;
        let kind = classify(&self.windows[ev.user.index()], ev.item, omega);
        let mut rank = None;
        let mut updates = 0;
        if kind == ConsumptionKind::EligibleRepeat {
            {
                let _p = rrc_obs::ProfGuard::enter("evaluate");
                let top = recommend_single(
                    &self.model,
                    &self.pipeline,
                    &self.stats,
                    omega,
                    ev.user,
                    &self.windows[ev.user.index()],
                    self.cfg.eval_n,
                );
                rank = top.iter().position(|&v| v == ev.item);
                self.record_opportunity(rank);
            }
            if self.cfg.online.negatives_per_event > 0 {
                let _p = rrc_obs::ProfGuard::enter("learn");
                let shard = shard_for(ev.user, self.cfg.shards);
                updates = online_step_single(
                    &mut self.model,
                    &self.pipeline,
                    &self.stats,
                    &self.cfg.online,
                    ev.user,
                    &self.windows[ev.user.index()],
                    &mut self.rngs[shard],
                    ev.item,
                );
                self.events_trained += 1;
                self.updates += updates;
                self.metrics.trained.inc();
                self.metrics.updates.add(updates);
            }
        }
        self.windows[ev.user.index()].push(ev.item);
        self.events_processed += 1;
        self.metrics.events.inc();
        if self.cfg.publish_every > 0
            && self.events_processed.is_multiple_of(self.cfg.publish_every)
        {
            self.publish_now()?;
        }
        if self.cfg.checkpoint_every > 0
            && self
                .events_processed
                .is_multiple_of(self.cfg.checkpoint_every)
        {
            self.checkpoint_now()?;
        }
        Ok(Some(EventOutcome {
            kind,
            rank,
            updates,
        }))
    }

    fn record_opportunity(&mut self, rank: Option<usize>) {
        self.preq.opportunities += 1;
        self.metrics.preq_opportunities.inc();
        if let Some(r) = rank {
            for (i, &cutoff) in PREQ_CUTOFFS.iter().enumerate() {
                if r < cutoff {
                    self.preq.hits[i] += 1;
                    self.metrics.preq_hits[i].inc();
                }
            }
            self.preq.rr_sum += 1.0 / (r + 1) as f64;
        }
        if self.recent.len() == self.cfg.eval_window {
            self.recent.pop_front();
        }
        self.recent.push_back(rank);
    }

    /// Drain `source` to its end: poll, back off on
    /// [`Poll::Pending`], stop at [`Poll::End`]. Returns the number of
    /// events ingested by this call.
    pub fn run(&mut self, source: &mut dyn EventSource) -> Result<u64, StreamError> {
        let before = self.events_processed;
        loop {
            match source.poll() {
                Poll::Event(ev) => {
                    self.process(ev)?;
                }
                Poll::Pending => std::thread::sleep(self.cfg.idle_sleep),
                Poll::End => break,
            }
        }
        Ok(self.events_processed - before)
    }

    /// Publish the current model to the attached registry (no-op without
    /// one), stamping the configuration fingerprint and stream offset
    /// into the file's metadata. Returns the registry version.
    pub fn publish_now(&mut self) -> Result<Option<u64>, StreamError> {
        let Some(registry) = self.registry.as_mut() else {
            return Ok(None);
        };
        let _prof = rrc_obs::ProfGuard::enter("publish");
        let meta = vec![
            (
                META_FINGERPRINT.to_string(),
                format!("{:016x}", self.fingerprint),
            ),
            (
                "stream_events".to_string(),
                self.events_processed.to_string(),
            ),
        ];
        let version = registry.publish(&self.model, &meta)?;
        self.publishes += 1;
        self.metrics.publishes.inc();
        self.publish_log.push((version, Instant::now()));
        Ok(Some(version))
    }

    /// Write a durable checkpoint to the configured path (no-op without
    /// one).
    pub fn checkpoint_now(&mut self) -> Result<(), StreamError> {
        let Some(path) = self.checkpoint_path.clone() else {
            return Ok(());
        };
        let _prof = rrc_obs::ProfGuard::enter("checkpoint");
        save_stream_checkpoint(&self.checkpoint(), path)?;
        self.metrics.checkpoints.inc();
        Ok(())
    }

    /// Snapshot the full deterministic state at the current event
    /// boundary.
    pub fn checkpoint(&self) -> StreamCheckpoint {
        StreamCheckpoint {
            shards: self.cfg.shards,
            events_processed: self.events_processed,
            events_trained: self.events_trained,
            updates: self.updates,
            publishes: self.publishes,
            preq: self.preq,
            rng_states: self.rngs.iter().map(StdRng::state).collect(),
            model: self.model.clone(),
            windows: self.windows.clone(),
            fingerprint: self.fingerprint,
        }
    }

    /// The incrementally-trained model.
    pub fn model(&self) -> &TsPprModel {
        &self.model
    }

    /// The configuration the trainer runs under.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The user's live window.
    pub fn window(&self, user: UserId) -> &WindowState {
        &self.windows[user.index()]
    }

    /// The configuration fingerprint (also stamped into publishes and
    /// checkpoints).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Events ingested so far (= the stream offset a resume must skip
    /// to).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Eligible repeats that triggered learning.
    pub fn events_trained(&self) -> u64 {
        self.events_trained
    }

    /// Individual SGD updates taken.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Models published so far.
    pub fn publishes(&self) -> u64 {
        self.publishes
    }

    /// `(registry version, publish instant)` per publish, join-able with
    /// the serve-side `SwapLog` to measure publish-to-swap freshness.
    pub fn publish_log(&self) -> &[(u64, Instant)] {
        &self.publish_log
    }

    /// Cumulative prequential counters since the start of the stream.
    pub fn preq(&self) -> PrequentialCounters {
        self.preq
    }

    /// Cumulative prequential hit rate at `PREQ_CUTOFFS[i]`.
    pub fn hit_rate(&self, i: usize) -> f64 {
        ratio(self.preq.hits[i], self.preq.opportunities)
    }

    /// Cumulative prequential MRR.
    pub fn mrr(&self) -> f64 {
        if self.preq.opportunities == 0 {
            0.0
        } else {
            self.preq.rr_sum / self.preq.opportunities as f64
        }
    }

    /// Hit rate at `PREQ_CUTOFFS[i]` over the last `eval_window`
    /// opportunities.
    pub fn windowed_hit_rate(&self, i: usize) -> f64 {
        let hits = self
            .recent
            .iter()
            .filter(|r| r.is_some_and(|rank| rank < PREQ_CUTOFFS[i]))
            .count();
        ratio(hits as u64, self.recent.len() as u64)
    }

    /// MRR over the last `eval_window` opportunities.
    pub fn windowed_mrr(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .recent
            .iter()
            .filter_map(|r| r.map(|rank| 1.0 / (rank + 1) as f64))
            .sum();
        sum / self.recent.len() as f64
    }

    /// The trainer's state as a report section: totals plus cumulative
    /// and windowed prequential quality.
    pub fn report(&self) -> Json {
        let rates = |f: &dyn Fn(usize) -> f64| {
            Json::obj(
                PREQ_CUTOFFS
                    .iter()
                    .enumerate()
                    .map(|(i, at)| (format!("hit{at}"), Json::from(f(i)))),
            )
        };
        Json::obj([
            ("events", Json::from(self.events_processed)),
            ("events_trained", Json::from(self.events_trained)),
            ("updates", Json::from(self.updates)),
            ("publishes", Json::from(self.publishes)),
            ("opportunities", Json::from(self.preq.opportunities)),
            ("cumulative", {
                let mut obj = rates(&|i| self.hit_rate(i));
                if let Json::Obj(pairs) = &mut obj {
                    pairs.push(("mrr".to_string(), Json::from(self.mrr())));
                }
                obj
            }),
            ("windowed", {
                let mut obj = rates(&|i| self.windowed_hit_rate(i));
                if let Json::Obj(pairs) = &mut obj {
                    pairs.push(("mrr".to_string(), Json::from(self.windowed_mrr())));
                }
                obj
            }),
        ])
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The PR-3 shard RNG layout: shard 0 inherits the seed's own stream,
/// every other shard an independent mixed stream.
fn shard_rngs(cfg: &StreamConfig, states: Option<&[[u64; 4]]>) -> Vec<StdRng> {
    match states {
        Some(states) => states.iter().map(|&s| StdRng::from_state(s)).collect(),
        None => (0..cfg.shards)
            .map(|s| match s {
                0 => StdRng::seed_from_u64(cfg.online.seed),
                _ => StdRng::seed_from_u64(shard_stream_seed(cfg.online.seed, s)),
            })
            .collect(),
    }
}
