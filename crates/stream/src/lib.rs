//! **rrc-stream** — the continuous-learning pipeline for TS-PPR.
//!
//! The paper trains once and serves forever; real repeat-consumption
//! traffic drifts (playlists rotate, habits shift), so a deployed model
//! decays. This crate closes the loop: an incremental trainer tails the
//! live event stream and keeps a *fresh* model flowing back into serving.
//!
//! * [`source`] — [`EventSource`]: the stream behind a non-blocking
//!   poll. [`FileFollowSource`] tails a JSONL event log another process
//!   appends to (torn trailing lines are held back, never mis-parsed);
//!   [`ChannelSource`] drains an in-process channel tapped off a live
//!   workload (`loadgen --continuous`).
//! * [`trainer`] — [`StreamTrainer`]: per event, classify against the
//!   user's live window; if it is an eligible repeat, **score it against
//!   the current model first** (the prequential evaluate-then-learn
//!   protocol — every event is a test example exactly once, before the
//!   model has seen it, so online hit@{1,5,10}/MRR are honest), then
//!   take pairwise SGD steps through the workspace's single `sgd_step`
//!   kernel, then advance the window. On cadence it publishes versioned
//!   models to an [`rrc_store::ModelRegistry`] (which `rrc-serve`'s
//!   `RegistryWatcher` hot-swaps into a running engine) and writes
//!   durable [`rrc_store::StreamCheckpoint`]s.
//!
//! Determinism is inherited, not re-proven: the SGD kernel, the
//! negative-sampling draw order, and the shard-seed layout (shard 0 on
//! the seed itself, shard `s` on `shard_stream_seed(seed, s)`) are the
//! PR-3 batch trainer's, so same seed + same stream ⇒ bit-identical
//! model, and a trainer killed and resumed from its checkpoint finishes
//! bit-identical to one that never died (`tests/continuous.rs`).
//!
//! Metrics (`stream_events_total`, `stream_events_trained_total`,
//! `stream_publishes_total`, `stream_preq_*`) report into any
//! [`rrc_obs::Registry`] via [`StreamTrainer::bind_metrics`] — the
//! continuous loadgen hands over the serving engine's registry so one
//! report covers both sides of the loop.

pub mod source;
pub mod trainer;

pub use source::{
    write_event_line, ChannelSource, EventSource, FileFollowSource, Poll, StreamEvent,
};
pub use trainer::{EventOutcome, StreamConfig, StreamError, StreamTrainer, PREQ_CUTOFFS};
