//! Where the stream trainer's events come from.
//!
//! [`EventSource`] abstracts "a possibly-unbounded, possibly-still-growing
//! sequence of consumption events" behind a non-blocking poll, so the
//! trainer's loop is the same whether it tails a JSONL file another
//! process is appending to ([`FileFollowSource`]) or drains an in-process
//! channel fed by a live workload ([`ChannelSource`]).

use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use rrc_sequence::{ItemId, UserId};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// One consumption event on the wire: user `u` consumed item `v`. Event
/// *time* is implicit — the trainer derives each user's clock from their
/// own window, exactly as the paper's sequential model does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEvent {
    /// The consuming user.
    pub user: UserId,
    /// The consumed item.
    pub item: ItemId,
}

/// Result of one non-blocking poll of an [`EventSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// The next event, in stream order.
    Event(StreamEvent),
    /// Nothing available *right now*, but the stream is still live — the
    /// caller should back off briefly and poll again.
    Pending,
    /// The stream has ended; no further events will ever arrive.
    End,
}

/// A source of consumption events in arrival order.
///
/// Implementations must be **replayable in order**: the trainer's
/// determinism guarantee (same seed + same stream ⇒ bit-identical model)
/// holds for whatever order the source yields, so a source must never
/// reorder, drop, or duplicate events on its own.
pub trait EventSource {
    /// Non-blocking poll for the next event.
    fn poll(&mut self) -> Poll;

    /// Discard the next `n` events (waiting through [`Poll::Pending`]),
    /// used to fast-forward a source to a checkpoint's
    /// `events_processed` offset on resume. Returns how many events were
    /// actually skipped — fewer than `n` only if the stream ended.
    fn skip(&mut self, n: u64) -> u64 {
        let mut skipped = 0;
        while skipped < n {
            match self.poll() {
                Poll::Event(_) => skipped += 1,
                Poll::Pending => std::thread::sleep(std::time::Duration::from_millis(1)),
                Poll::End => break,
            }
        }
        skipped
    }
}

/// In-process source: the receiving end of a crossbeam channel. The
/// sending side is the live workload (e.g. `loadgen --continuous` cloning
/// every event it replays into the trainer); dropping the last sender
/// ends the stream.
pub struct ChannelSource {
    rx: Receiver<StreamEvent>,
}

impl ChannelSource {
    /// Wrap an existing receiver.
    pub fn new(rx: Receiver<StreamEvent>) -> ChannelSource {
        ChannelSource { rx }
    }

    /// An unbounded feed: the sender never blocks, the trainer consumes
    /// at its own pace. This is the right shape for a tap on a serving
    /// workload — training lag must never backpressure request latency.
    pub fn unbounded() -> (Sender<StreamEvent>, ChannelSource) {
        let (tx, rx) = channel::unbounded();
        (tx, ChannelSource { rx })
    }
}

impl EventSource for ChannelSource {
    fn poll(&mut self) -> Poll {
        match self.rx.try_recv() {
            Ok(ev) => Poll::Event(ev),
            Err(TryRecvError::Empty) => Poll::Pending,
            Err(TryRecvError::Disconnected) => Poll::End,
        }
    }
}

/// Append one event in the JSONL wire format [`FileFollowSource`] reads:
/// `{"user":U,"item":V}` + newline.
pub fn write_event_line(w: &mut impl Write, ev: StreamEvent) -> io::Result<()> {
    writeln!(w, "{{\"user\":{},\"item\":{}}}", ev.user.0, ev.item.0)
}

/// Tail a JSONL event log: one `{"user":U,"item":V}` object per line,
/// read strictly in file order. In follow mode, end-of-file is
/// [`Poll::Pending`] — the writer may still be appending — and a partial
/// trailing line is held back until its newline arrives, so a reader
/// racing the writer never sees a torn event. Malformed complete lines
/// are skipped and counted, never silently reordered into garbage.
pub struct FileFollowSource {
    path: PathBuf,
    file: File,
    /// Bytes read from the file but not yet consumed as complete lines.
    buf: Vec<u8>,
    follow: bool,
    parse_errors: u64,
}

impl FileFollowSource {
    /// Open `path` for reading from the beginning. With `follow = true`
    /// the source never ends on its own ([`Poll::Pending`] at EOF) until
    /// [`FileFollowSource::stop_following`] is called; with `false` it
    /// yields [`Poll::End`] at the current end of file.
    pub fn open(path: impl AsRef<Path>, follow: bool) -> io::Result<FileFollowSource> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        Ok(FileFollowSource {
            path,
            file,
            buf: Vec::new(),
            follow,
            parse_errors: 0,
        })
    }

    /// The path being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Complete-but-malformed lines skipped so far.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors
    }

    /// Switch off follow mode: the next poll that reaches end-of-file
    /// returns [`Poll::End`]. The shutdown path for a tailing trainer.
    pub fn stop_following(&mut self) {
        self.follow = false;
    }

    /// Pop the first complete line out of the pending buffer, if any.
    fn take_line(&mut self) -> Option<Vec<u8>> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let rest = self.buf.split_off(pos + 1);
        let mut line = std::mem::replace(&mut self.buf, rest);
        line.pop(); // the newline
        Some(line)
    }
}

impl EventSource for FileFollowSource {
    fn poll(&mut self) -> Poll {
        loop {
            while let Some(line) = self.take_line() {
                match parse_event_line(&line) {
                    Some(ev) => return Poll::Event(ev),
                    None => {
                        // Blank separators are tolerated quietly; anything
                        // else that fails to parse is counted.
                        if !line.iter().all(u8::is_ascii_whitespace) {
                            self.parse_errors += 1;
                        }
                    }
                }
            }
            let mut chunk = [0u8; 8192];
            match self.file.read(&mut chunk) {
                Ok(0) => {
                    if self.follow {
                        return Poll::Pending;
                    }
                    // A final line without a trailing newline still counts.
                    if self.buf.is_empty() {
                        return Poll::End;
                    }
                    let line = std::mem::take(&mut self.buf);
                    match parse_event_line(&line) {
                        Some(ev) => return Poll::Event(ev),
                        None => {
                            if !line.iter().all(u8::is_ascii_whitespace) {
                                self.parse_errors += 1;
                            }
                            return Poll::End;
                        }
                    }
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    return if self.follow {
                        Poll::Pending
                    } else {
                        Poll::End
                    }
                }
            }
        }
    }
}

/// Parse one `{"user":U,"item":V}` line. Hand-rolled (the workspace
/// vendors no JSON parser): finds each quoted key and reads the unsigned
/// integer after its colon. Extra whitespace and extra fields are fine;
/// a missing key or a non-integer value is not.
fn parse_event_line(line: &[u8]) -> Option<StreamEvent> {
    let text = std::str::from_utf8(line).ok()?;
    let user = field_u64(text, "user")?;
    let item = field_u64(text, "item")?;
    Some(StreamEvent {
        user: UserId(u32::try_from(user).ok()?),
        item: ItemId(u32::try_from(item).ok()?),
    })
}

fn field_u64(text: &str, key: &str) -> Option<u64> {
    let quoted = format!("\"{key}\"");
    let after_key = &text[text.find(&quoted)? + quoted.len()..];
    let after_colon = after_key.trim_start().strip_prefix(':')?.trim_start();
    let digits: &str = &after_colon[..after_colon
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(after_colon.len())];
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(user: u32, item: u32) -> StreamEvent {
        StreamEvent {
            user: UserId(user),
            item: ItemId(item),
        }
    }

    #[test]
    fn parses_the_wire_format_and_tolerates_noise() {
        assert_eq!(
            parse_event_line(br#"{"user":3,"item":17}"#),
            Some(ev(3, 17))
        );
        assert_eq!(
            parse_event_line(br#"  { "item" : 5 , "user" : 0 , "ts" : 99 }"#),
            Some(ev(0, 5))
        );
        assert_eq!(parse_event_line(br#"{"user":3}"#), None);
        assert_eq!(parse_event_line(br#"{"user":-1,"item":2}"#), None);
        assert_eq!(parse_event_line(b"garbage"), None);
    }

    #[test]
    fn channel_source_drains_then_pends_then_ends() {
        let (tx, mut src) = ChannelSource::unbounded();
        tx.send(ev(1, 2)).unwrap();
        assert_eq!(src.poll(), Poll::Event(ev(1, 2)));
        assert_eq!(src.poll(), Poll::Pending);
        drop(tx);
        assert_eq!(src.poll(), Poll::End);
    }

    #[test]
    fn file_source_follows_partial_lines_until_their_newline() {
        let dir = std::env::temp_dir().join(format!("rrc_stream_src_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let mut f = File::create(&path).unwrap();
        write_event_line(&mut f, ev(1, 10)).unwrap();
        f.write_all(br#"{"user":2,"#).unwrap(); // torn mid-event
        f.sync_all().unwrap();

        let mut src = FileFollowSource::open(&path, true).unwrap();
        assert_eq!(src.poll(), Poll::Event(ev(1, 10)));
        // The torn event is held back, not parsed as garbage.
        assert_eq!(src.poll(), Poll::Pending);
        f.write_all(b"\"item\":20}\n").unwrap();
        f.write_all(b"not json\n").unwrap();
        write_event_line(&mut f, ev(3, 30)).unwrap();
        f.sync_all().unwrap();
        assert_eq!(src.poll(), Poll::Event(ev(2, 20)));
        assert_eq!(src.poll(), Poll::Event(ev(3, 30)));
        assert_eq!(src.parse_errors(), 1);
        src.stop_following();
        assert_eq!(src.poll(), Poll::End);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_follow_source_reads_an_unterminated_final_line() {
        let dir = std::env::temp_dir().join(format!("rrc_stream_tail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        std::fs::write(&path, br#"{"user":7,"item":8}"#).unwrap();
        let mut src = FileFollowSource::open(&path, false).unwrap();
        assert_eq!(src.poll(), Poll::Event(ev(7, 8)));
        assert_eq!(src.poll(), Poll::End);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn skip_fast_forwards_to_a_resume_offset() {
        let (tx, mut src) = ChannelSource::unbounded();
        for i in 0..5 {
            tx.send(ev(i, i)).unwrap();
        }
        drop(tx);
        assert_eq!(src.skip(3), 3);
        assert_eq!(src.poll(), Poll::Event(ev(3, 3)));
        assert_eq!(src.skip(10), 1); // only one event left
    }
}
