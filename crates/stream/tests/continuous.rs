//! The continuous pipeline's three contracts, end to end:
//!
//! 1. **Prequential honesty** — every eligible repeat is scored against
//!    the model as it stood *before* that event influenced anything (no
//!    label leakage).
//! 2. **Determinism** — same seed + same stream ⇒ bit-identical trainer
//!    state, regardless of which [`EventSource`] delivered the events.
//! 3. **Durability** — kill the trainer at an arbitrary event boundary,
//!    resume from its checkpoint, replay the rest: bit-identical to the
//!    run that never died.

use rrc_core::{recommend_single, OnlineConfig, TsPprConfig, TsPprTrainer};
use rrc_datagen::GeneratorConfig;
use rrc_features::{FeaturePipeline, SamplingConfig, TrainStats, TrainingSet};
use rrc_sequence::{classify, ConsumptionKind, ItemId, UserId};
use rrc_store::{
    encode_stream_checkpoint, load_stream_checkpoint, save_stream_checkpoint, ModelRegistry,
    ModelView,
};
use rrc_stream::{
    write_event_line, ChannelSource, EventSource, FileFollowSource, StreamConfig, StreamError,
    StreamEvent, StreamTrainer,
};

const WINDOW: usize = 30;
const OMEGA: usize = 5;

fn stream_config() -> StreamConfig {
    StreamConfig {
        online: OnlineConfig {
            window: WINDOW,
            omega: OMEGA,
            negatives_per_event: 3,
            seed: 77,
            ..OnlineConfig::default()
        },
        shards: 2,
        ..StreamConfig::default()
    }
}

/// Batch-train on the split prefix, return a warmed trainer plus the
/// suffix as the stream it will tail.
fn fixture(cfg: StreamConfig) -> (StreamTrainer, Vec<StreamEvent>) {
    let data = GeneratorConfig::tiny().with_seed(51).generate();
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, WINDOW);
    let pipeline = FeaturePipeline::standard();
    let training = TrainingSet::build(
        &split.train,
        &stats,
        &pipeline,
        &SamplingConfig {
            window: WINDOW,
            omega: OMEGA,
            negatives_per_positive: 5,
            seed: 2,
        },
    );
    let (model, _) = TsPprTrainer::new(
        TsPprConfig::new(data.num_users(), data.num_items())
            .with_k(8)
            .with_max_sweeps(5),
    )
    .train(&training);
    let mut trainer = StreamTrainer::new(model, FeaturePipeline::standard(), stats, cfg);
    trainer.warm_from(&split.train);
    (trainer, events_of(&split.test))
}

/// Flatten the test split into one interleaved stream (round-robin
/// across users, so consecutive events hit different shards).
fn events_of(test: &[rrc_sequence::Sequence]) -> Vec<StreamEvent> {
    let seqs: Vec<&[ItemId]> = test.iter().map(|s| s.events()).collect();
    let longest = seqs.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut events = Vec::new();
    for step in 0..longest {
        for (u, seq) in seqs.iter().enumerate() {
            if let Some(&item) = seq.get(step) {
                events.push(StreamEvent {
                    user: UserId(u as u32),
                    item,
                });
            }
        }
    }
    events
}

#[test]
fn prequential_rank_is_scored_before_the_event_changes_anything() {
    let (mut trainer, events) = fixture(stream_config());
    let mut opportunities = 0;
    for &ev in &events {
        // Recompute what an honest evaluator must report: the rank of the
        // consumed item against the trainer's state *right now*, before
        // process() lets the event touch the model or the window.
        let expected = if classify(trainer.window(ev.user), ev.item, OMEGA)
            == ConsumptionKind::EligibleRepeat
        {
            let top = recommend_single(
                trainer.model(),
                &FeaturePipeline::standard(),
                &trainer_stats(),
                OMEGA,
                ev.user,
                trainer.window(ev.user),
                10,
            );
            Some(top.iter().position(|&v| v == ev.item))
        } else {
            None
        };
        let outcome = trainer.process(ev).unwrap().unwrap();
        match expected {
            Some(rank) => {
                assert_eq!(outcome.kind, ConsumptionKind::EligibleRepeat);
                assert_eq!(outcome.rank, rank, "rank must pre-date the update");
                opportunities += 1;
            }
            None => assert_eq!(outcome.rank, None),
        }
    }
    assert!(opportunities > 0, "fixture produced no eligible repeats");
    assert_eq!(trainer.preq().opportunities, opportunities);
    assert!(trainer.events_trained() > 0);
    assert!(trainer.mrr().is_finite());
}

/// The fixture's stats, recomputed (TrainStats isn't exposed by the
/// trainer; recomputing from the same split is bit-identical).
fn trainer_stats() -> TrainStats {
    let data = GeneratorConfig::tiny().with_seed(51).generate();
    TrainStats::compute(&data.split(0.7).train, WINDOW)
}

#[test]
fn same_seed_and_stream_is_bit_identical_across_sources() {
    let (mut a, events) = fixture(stream_config());
    let (mut b, _) = fixture(stream_config());

    // Trainer A drains an in-process channel…
    let (tx, mut channel) = ChannelSource::unbounded();
    for &ev in &events {
        tx.send(ev).unwrap();
    }
    drop(tx);
    a.run(&mut channel).unwrap();

    // …trainer B tails a JSONL file of the same stream.
    let dir = std::env::temp_dir().join(format!("rrc_stream_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    let mut f = std::fs::File::create(&path).unwrap();
    for &ev in &events {
        write_event_line(&mut f, ev).unwrap();
    }
    f.sync_all().unwrap();
    let mut file = FileFollowSource::open(&path, false).unwrap();
    b.run(&mut file).unwrap();

    // Bit-identical state: the serialized checkpoints match byte for byte.
    assert_eq!(
        encode_stream_checkpoint(&a.checkpoint()),
        encode_stream_checkpoint(&b.checkpoint())
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_and_resumed_trainer_is_bit_identical_to_an_uninterrupted_one() {
    let dir = std::env::temp_dir().join(format!("rrc_stream_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("stream.ckpt");

    // The uninterrupted reference run.
    let (mut whole, events) = fixture(stream_config());
    for &ev in &events {
        whole.process(ev).unwrap();
    }

    // The same run killed mid-stream…
    let cut = events.len() / 3;
    let (mut first, _) = fixture(stream_config());
    for &ev in &events[..cut] {
        first.process(ev).unwrap();
    }
    save_stream_checkpoint(&first.checkpoint(), &ckpt).unwrap();
    drop(first); // the "kill"

    // …and resumed from disk, fast-forwarding the source to the offset.
    let loaded = load_stream_checkpoint(&ckpt).unwrap();
    let mut resumed = StreamTrainer::resume(
        loaded,
        FeaturePipeline::standard(),
        trainer_stats(),
        stream_config(),
    )
    .unwrap();
    let (tx, mut source) = ChannelSource::unbounded();
    for &ev in &events {
        tx.send(ev).unwrap();
    }
    drop(tx);
    assert_eq!(source.skip(resumed.events_processed()), cut as u64);
    resumed.run(&mut source).unwrap();

    assert_eq!(resumed.events_processed(), events.len() as u64);
    assert_eq!(
        encode_stream_checkpoint(&whole.checkpoint()),
        encode_stream_checkpoint(&resumed.checkpoint())
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_under_a_different_configuration_is_refused() {
    let (mut trainer, events) = fixture(stream_config());
    for &ev in &events[..events.len().min(50)] {
        trainer.process(ev).unwrap();
    }
    let ck = trainer.checkpoint();
    let mut other = stream_config();
    other.online.seed ^= 1;
    match StreamTrainer::resume(ck, FeaturePipeline::standard(), trainer_stats(), other) {
        Err(err) => {
            assert!(
                matches!(err, StreamError::FingerprintMismatch { .. }),
                "{err}"
            )
        }
        Ok(_) => panic!("mismatched fingerprint must refuse to resume"),
    }
}

#[test]
fn publish_cadence_yields_monotone_registry_versions_with_fingerprints() {
    let dir = std::env::temp_dir().join(format!("rrc_stream_pub_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut cfg = stream_config();
    cfg.publish_every = 40;
    let (mut trainer, events) = fixture(cfg);
    trainer.set_registry(ModelRegistry::create(&dir, 3).unwrap());
    for &ev in &events {
        trainer.process(ev).unwrap();
    }
    let expected = events.len() as u64 / 40;
    assert_eq!(trainer.publishes(), expected);
    assert!(expected >= 2, "fixture too small to exercise the cadence");
    let log = trainer.publish_log();
    assert_eq!(log.len(), expected as usize);
    assert!(log.windows(2).all(|w| w[0].0 < w[1].0), "versions monotone");

    // The latest published file carries the trainer's fingerprint, so the
    // serve-side quality monitor can attribute it.
    let (version, path) = ModelRegistry::open(&dir).unwrap().latest().unwrap();
    assert_eq!(version, log.last().unwrap().0);
    let view = ModelView::open(&path).unwrap();
    assert_eq!(view.fingerprint(), Some(trainer.fingerprint()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn frozen_evaluator_never_touches_the_model() {
    let mut cfg = stream_config();
    cfg.online.negatives_per_event = 0; // pure prequential evaluation
    let (mut trainer, events) = fixture(cfg);
    let before = trainer.model().clone();
    for &ev in &events {
        trainer.process(ev).unwrap();
    }
    assert_eq!(trainer.events_trained(), 0);
    assert_eq!(trainer.updates(), 0);
    assert_eq!(trainer.model(), &before);
    assert!(trainer.preq().opportunities > 0, "still evaluates");
}

#[test]
fn out_of_shape_events_are_skipped_not_fatal() {
    let (mut trainer, _) = fixture(stream_config());
    let out_of_range = StreamEvent {
        user: UserId(10_000),
        item: ItemId(0),
    };
    assert_eq!(trainer.process(out_of_range).unwrap(), None);
    assert_eq!(trainer.events_processed(), 0);
}
