//! Evaluation harness and metrics for repeat-consumption recommenders
//! (§5.1, §5.3, §5.6, §5.7 of the paper).
//!
//! The protocol follows the paper exactly: each user's window is
//! warm-started from their full **training** prefix, then the **test**
//! suffix is walked event by event. Every *eligible repeat* (in-window, at
//! least Ω steps old) is a recommendation opportunity: the recommender
//! produces a Top-N list from the eligible candidates and scores a hit if
//! it contains the actually-consumed item. Aggregation yields
//!
//! * **MaAP@N** (Eq. 23) — total hits / total opportunities (weighted
//!   toward long-sequence users), and
//! * **MiAP@N** (Eq. 24) — the unweighted mean of per-user precisions
//!   (Eq. 22).
//!
//! [`evaluate_multi`] walks each sequence once and scores every requested
//! `N` simultaneously; [`parallel`] fans users out over threads with
//! crossbeam's scoped threads. [`timing`] measures mean per-instance online
//! recommendation latency (Fig. 13), and [`combined`] implements the
//! STREC × TS-PPR pipeline of Table 5.

pub mod bootstrap;
pub mod combined;
pub mod harness;
pub mod metrics;
pub mod novel;
pub mod ranking;
pub mod report;
pub mod significance;
pub mod timing;

pub use bootstrap::{bootstrap_metrics, BootstrapResult, ConfidenceInterval};
pub use combined::{evaluate_combined, CombinedResult};
pub use harness::{evaluate, evaluate_multi, evaluate_multi_parallel, EvalConfig};
pub use metrics::{EvalResult, UserOutcome};
pub use novel::{evaluate_novel, evaluate_unified, evaluate_unified_with_threshold, UnifiedResult};
pub use ranking::{evaluate_ranking, RankingResult};
pub use report::{format_table, percent};
pub use significance::{permutation_test, PermutationTest};
pub use timing::{measure_latency, LatencyReport};
