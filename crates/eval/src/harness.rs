//! The sequential test-walk harness.

use crate::metrics::{EvalResult, UserOutcome};
use rrc_features::{RecContext, Recommender, TrainStats};
use rrc_sequence::{classify, ConsumptionKind, SplitDataset, UserId, WindowState};

/// Evaluation protocol parameters (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Window capacity `|W|` (paper: 100).
    pub window: usize,
    /// Minimum gap Ω (paper default: 10).
    pub omega: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            window: 100,
            omega: 10,
        }
    }
}

/// Evaluate one user's test suffix, scoring all requested `N`s from a
/// single walk. Returns one [`UserOutcome`] per `N`.
fn walk_user<R: Recommender + ?Sized>(
    rec: &R,
    user: UserId,
    split: &SplitDataset,
    stats: &TrainStats,
    cfg: &EvalConfig,
    ns: &[usize],
) -> Vec<UserOutcome> {
    let mut outcomes = vec![UserOutcome::default(); ns.len()];
    let max_n = ns.iter().copied().max().unwrap_or(0);
    let train_events = split.train.sequence(user).events();
    let mut window = WindowState::warmed(cfg.window, train_events);
    for &item in split.test_sequence(user).events() {
        if classify(&window, item, cfg.omega) == ConsumptionKind::EligibleRepeat {
            let ctx = RecContext {
                user,
                window: &window,
                stats,
                omega: cfg.omega,
            };
            let list = rec.recommend(&ctx, max_n);
            let hit_rank = list.iter().position(|&v| v == item);
            for (slot, &n) in outcomes.iter_mut().zip(ns) {
                slot.opportunities += 1;
                if matches!(hit_rank, Some(r) if r < n) {
                    slot.hits += 1;
                }
            }
        }
        window.push(item);
    }
    outcomes
}

/// Evaluate a recommender at a single `N`.
pub fn evaluate<R: Recommender + ?Sized>(
    rec: &R,
    split: &SplitDataset,
    stats: &TrainStats,
    cfg: &EvalConfig,
    top_n: usize,
) -> EvalResult {
    evaluate_multi(rec, split, stats, cfg, &[top_n])
        .pop()
        .expect("one N requested")
}

/// Evaluate a recommender at several `N`s with one walk per user.
pub fn evaluate_multi<R: Recommender + ?Sized>(
    rec: &R,
    split: &SplitDataset,
    stats: &TrainStats,
    cfg: &EvalConfig,
    ns: &[usize],
) -> Vec<EvalResult> {
    assert!(!ns.is_empty(), "at least one N required");
    assert!(cfg.omega < cfg.window, "omega must be < window");
    // Whole-walk tracing span: lands in the global registry's
    // span_duration_ns{span="eval.walk"} histogram, so reproduce-run
    // reports carry evaluation wall-clock per recommender sweep.
    let _span = rrc_obs::global().span("eval.walk");
    let mut per_n: Vec<Vec<UserOutcome>> = ns
        .iter()
        .map(|_| Vec::with_capacity(split.num_users()))
        .collect();
    for u in 0..split.num_users() {
        let outcomes = walk_user(rec, UserId(u as u32), split, stats, cfg, ns);
        for (bucket, o) in per_n.iter_mut().zip(outcomes) {
            bucket.push(o);
        }
    }
    ns.iter()
        .zip(per_n)
        .map(|(&n, per_user)| EvalResult { top_n: n, per_user })
        .collect()
}

/// Parallel [`evaluate_multi`]: users are striped across `threads` scoped
/// worker threads. Results are identical to the serial version (each user's
/// walk is independent and deterministic).
pub fn evaluate_multi_parallel<R: Recommender + Sync + ?Sized>(
    rec: &R,
    split: &SplitDataset,
    stats: &TrainStats,
    cfg: &EvalConfig,
    ns: &[usize],
    threads: usize,
) -> Vec<EvalResult> {
    assert!(!ns.is_empty(), "at least one N required");
    assert!(cfg.omega < cfg.window, "omega must be < window");
    let _span = rrc_obs::global().span("eval.walk");
    let threads = threads.max(1);
    let num_users = split.num_users();
    let mut all: Vec<Vec<UserOutcome>> = vec![Vec::new(); num_users];

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<(usize, Vec<UserOutcome>)> = Vec::new();
                let mut u = t;
                while u < num_users {
                    local.push((u, walk_user(rec, UserId(u as u32), split, stats, cfg, ns)));
                    u += threads;
                }
                local
            }));
        }
        for h in handles {
            for (u, outcomes) in h.join().expect("worker panicked") {
                all[u] = outcomes;
            }
        }
    })
    .expect("evaluation scope");

    ns.iter()
        .enumerate()
        .map(|(ni, &n)| EvalResult {
            top_n: n,
            per_user: all.iter().map(|o| o[ni]).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_features::RecContext;
    use rrc_sequence::{Dataset, ItemId, Sequence};

    /// Oracle that knows nothing: always ranks by ascending item id.
    struct ByIdAsc;
    impl Recommender for ByIdAsc {
        fn name(&self) -> &str {
            "by-id-asc"
        }
        fn score(&self, _: &RecContext<'_>, item: ItemId) -> f64 {
            -(item.0 as f64)
        }
    }

    /// Perfect-on-this-data oracle: scores the item that will actually come
    /// next highest (cheating via interior knowledge of the fixture).
    struct FixtureOracle;
    impl Recommender for FixtureOracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn score(&self, _: &RecContext<'_>, item: ItemId) -> f64 {
            // In the fixture the reconsumed item is always item 0.
            if item == ItemId(0) {
                1.0
            } else {
                0.0
            }
        }
    }

    /// Train "0 1 2 3", test "0 4 0": with W=10, Ω=2 the test events are:
    /// t=4: 0 seen at step 0, gap 4 > 2 → eligible repeat (opportunity);
    /// t=5: 4 novel; t=6: 0 seen at step 4, gap 2 → recent repeat (skip).
    fn fixture() -> (SplitDataset, TrainStats) {
        let full = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 2, 3, 0, 4, 0])], 5);
        let split = SplitDataset {
            train: Dataset::new(vec![Sequence::from_raw(vec![0, 1, 2, 3])], 5),
            test: vec![Sequence::from_raw(vec![0, 4, 0])],
        };
        let stats = TrainStats::compute(&split.train, 10);
        let _ = full;
        (split, stats)
    }

    fn cfg() -> EvalConfig {
        EvalConfig {
            window: 10,
            omega: 2,
        }
    }

    #[test]
    fn opportunities_counted_correctly() {
        let (split, stats) = fixture();
        let r = evaluate(&ByIdAsc, &split, &stats, &cfg(), 1);
        assert_eq!(r.opportunities(), 1);
        // ByIdAsc ranks item 0 first among candidates {0, 1} (2, 3 are
        // within Ω at t=4? events 2@2 and 3@3, Ω=2, t=4: 2+2>=4 and 3+2>=4
        // → both excluded; candidates are {0, 1}) → hit.
        assert_eq!(r.hits(), 1);
        assert_eq!(r.maap(), 1.0);
        assert_eq!(r.miap(), 1.0);
    }

    #[test]
    fn oracle_beats_wrong_order_at_top1() {
        let (split, stats) = fixture();
        // An anti-oracle that puts item 0 last.
        struct Anti;
        impl Recommender for Anti {
            fn name(&self) -> &str {
                "anti"
            }
            fn score(&self, _: &RecContext<'_>, item: ItemId) -> f64 {
                item.0 as f64
            }
        }
        let hit = evaluate(&FixtureOracle, &split, &stats, &cfg(), 1);
        let miss = evaluate(&Anti, &split, &stats, &cfg(), 1);
        assert_eq!(hit.maap(), 1.0);
        assert_eq!(miss.maap(), 0.0);
        // At N = 2 both lists contain item 0.
        let miss2 = evaluate(&Anti, &split, &stats, &cfg(), 2);
        assert_eq!(miss2.maap(), 1.0);
    }

    #[test]
    fn multi_n_matches_single_n() {
        let (split, stats) = fixture();
        let multi = evaluate_multi(&ByIdAsc, &split, &stats, &cfg(), &[1, 2, 5]);
        for r in &multi {
            let single = evaluate(&ByIdAsc, &split, &stats, &cfg(), r.top_n);
            assert_eq!(r.maap(), single.maap());
            assert_eq!(r.miap(), single.miap());
        }
        // Precision is monotone in N.
        assert!(multi[0].maap() <= multi[1].maap());
        assert!(multi[1].maap() <= multi[2].maap());
    }

    #[test]
    fn parallel_matches_serial() {
        // A slightly larger random-ish fixture.
        let train_seqs: Vec<Sequence> = (0..7)
            .map(|u| Sequence::from_raw((0..60).map(|i| ((i * (u + 2) + u) % 9) as u32).collect()))
            .collect();
        let test_seqs: Vec<Sequence> = (0..7)
            .map(|u| {
                Sequence::from_raw(
                    (0..25)
                        .map(|i| ((i * (u + 3) + 2 * u) % 9) as u32)
                        .collect(),
                )
            })
            .collect();
        let split = SplitDataset {
            train: Dataset::new(train_seqs, 9),
            test: test_seqs,
        };
        let stats = TrainStats::compute(&split.train, 10);
        let serial = evaluate_multi(&ByIdAsc, &split, &stats, &cfg(), &[1, 5]);
        for threads in [1, 2, 4, 16] {
            let par = evaluate_multi_parallel(&ByIdAsc, &split, &stats, &cfg(), &[1, 5], threads);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn empty_test_sequences_yield_zero_opportunities() {
        let split = SplitDataset {
            train: Dataset::new(vec![Sequence::from_raw(vec![0, 1])], 2),
            test: vec![Sequence::new()],
        };
        let stats = TrainStats::compute(&split.train, 10);
        let r = evaluate(&ByIdAsc, &split, &stats, &cfg(), 5);
        assert_eq!(r.opportunities(), 0);
        assert_eq!(r.maap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "omega must be < window")]
    fn bad_config_rejected() {
        let (split, stats) = fixture();
        evaluate(
            &ByIdAsc,
            &split,
            &stats,
            &EvalConfig {
                window: 5,
                omega: 5,
            },
            1,
        );
    }
}
