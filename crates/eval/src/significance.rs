//! Paired permutation test between two recommenders' per-user outcomes.
//!
//! Complements [`crate::bootstrap`]: the bootstrap quantifies each method's
//! own uncertainty; the permutation test asks whether method A's advantage
//! over method B on the *same users* could be a fluke. Under the null
//! hypothesis the two methods are exchangeable per user, so randomly
//! swapping each user's pair of outcomes must produce differences at least
//! as large as the observed one about `p` of the time.

use crate::metrics::EvalResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a paired permutation test on MaAP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermutationTest {
    /// Observed MaAP difference `A − B`.
    pub observed_diff: f64,
    /// Two-sided p-value estimate.
    pub p_value: f64,
    /// Permutations drawn.
    pub permutations: usize,
}

impl PermutationTest {
    /// Whether the difference is significant at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run a paired permutation test on the MaAP difference between two
/// evaluation results over the same users.
///
/// # Panics
/// Panics if the results cover different user counts or mismatched
/// opportunity counts (they must come from identical walks).
pub fn permutation_test(
    a: &EvalResult,
    b: &EvalResult,
    permutations: usize,
    seed: u64,
) -> PermutationTest {
    assert_eq!(
        a.per_user.len(),
        b.per_user.len(),
        "results must cover the same users"
    );
    assert!(permutations > 0, "need at least one permutation");
    for (ua, ub) in a.per_user.iter().zip(&b.per_user) {
        assert_eq!(
            ua.opportunities, ub.opportunities,
            "paired results must share the evaluation walk"
        );
    }
    let total_opp: u64 = a.per_user.iter().map(|u| u.opportunities).sum();
    if total_opp == 0 {
        return PermutationTest {
            observed_diff: 0.0,
            p_value: 1.0,
            permutations,
        };
    }
    let maap_diff =
        |hits_a: u64, hits_b: u64| -> f64 { (hits_a as f64 - hits_b as f64) / total_opp as f64 };
    let hits_a: u64 = a.per_user.iter().map(|u| u.hits).sum();
    let hits_b: u64 = b.per_user.iter().map(|u| u.hits).sum();
    let observed = maap_diff(hits_a, hits_b);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut extreme = 0usize;
    for _ in 0..permutations {
        let mut ha = 0u64;
        let mut hb = 0u64;
        for (ua, ub) in a.per_user.iter().zip(&b.per_user) {
            if rng.gen::<bool>() {
                ha += ua.hits;
                hb += ub.hits;
            } else {
                ha += ub.hits;
                hb += ua.hits;
            }
        }
        if maap_diff(ha, hb).abs() >= observed.abs() - 1e-15 {
            extreme += 1;
        }
    }
    PermutationTest {
        observed_diff: observed,
        // Add-one smoothing keeps the estimate away from an impossible 0.
        p_value: (extreme + 1) as f64 / (permutations + 1) as f64,
        permutations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::UserOutcome;

    fn result(pairs: Vec<(u64, u64)>) -> EvalResult {
        EvalResult {
            top_n: 10,
            per_user: pairs
                .into_iter()
                .map(|(hits, opportunities)| UserOutcome {
                    hits,
                    opportunities,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_results_are_not_significant() {
        let a = result(vec![(5, 10), (3, 8), (7, 9)]);
        let t = permutation_test(&a, &a.clone(), 500, 1);
        assert_eq!(t.observed_diff, 0.0);
        assert!(t.p_value > 0.99);
        assert!(!t.significant_at(0.05));
    }

    #[test]
    fn consistent_dominance_is_significant() {
        // A beats B for every one of 40 users.
        let a = result((0..40).map(|_| (9, 10)).collect());
        let b = result((0..40).map(|_| (3, 10)).collect());
        let t = permutation_test(&a, &b, 2000, 2);
        assert!(t.observed_diff > 0.0);
        assert!(t.significant_at(0.01), "p = {}", t.p_value);
    }

    #[test]
    fn tiny_noisy_difference_is_not_significant() {
        // One user differs by a single hit.
        let a = result(vec![(5, 10), (5, 10), (5, 10), (6, 10)]);
        let b = result(vec![(5, 10), (5, 10), (5, 10), (5, 10)]);
        let t = permutation_test(&a, &b, 2000, 3);
        assert!(!t.significant_at(0.05), "p = {}", t.p_value);
    }

    #[test]
    fn empty_opportunities_yield_p_one() {
        let a = result(vec![(0, 0)]);
        let b = result(vec![(0, 0)]);
        let t = permutation_test(&a, &b, 10, 0);
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = result(vec![(9, 10), (2, 10), (5, 10)]);
        let b = result(vec![(4, 10), (3, 10), (6, 10)]);
        let x = permutation_test(&a, &b, 500, 7);
        let y = permutation_test(&a, &b, 500, 7);
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "same users")]
    fn mismatched_user_counts_rejected() {
        let a = result(vec![(1, 2)]);
        let b = result(vec![(1, 2), (0, 1)]);
        permutation_test(&a, &b, 10, 0);
    }

    #[test]
    #[should_panic(expected = "share the evaluation walk")]
    fn mismatched_opportunities_rejected() {
        let a = result(vec![(1, 2)]);
        let b = result(vec![(1, 3)]);
        permutation_test(&a, &b, 10, 0);
    }
}
