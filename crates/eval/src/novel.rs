//! Novel-item evaluation and the unified repeat/novel pipeline — the
//! paper's §4.3 application and its stated future work ("mixing the results
//! of recommendations for both novel consumption and repeat consumption").

use crate::harness::EvalConfig;
use crate::metrics::{EvalResult, UserOutcome};
use rrc_features::{RecContext, Recommender, TrainStats};
use rrc_sequence::{ItemId, SplitDataset, UserId, WindowState};
use rrc_strec::{StrecClassifier, StrecFeatureState};

/// Top-`n` over the *unseen* item universe (the classical novel-item
/// candidate set `V − {v : v ∈ S_u}`).
fn recommend_novel<R: Recommender + ?Sized>(
    rec: &R,
    ctx: &RecContext<'_>,
    seen: &[bool],
    n: usize,
) -> Vec<ItemId> {
    let mut scored: Vec<(f64, ItemId)> = (0..seen.len() as u32)
        .map(ItemId)
        .filter(|v| !seen[v.index()])
        .map(|v| (rec.score(ctx, v), v))
        .collect();
    rrc_features::recommend::top_n(&mut scored, n)
}

/// Evaluate a recommender on **novel** consumptions: for each first-time
/// consumption in the test suffix, a Top-N list over the user's unseen
/// items is scored against the actually-consumed item.
pub fn evaluate_novel<R: Recommender + ?Sized>(
    rec: &R,
    split: &SplitDataset,
    stats: &TrainStats,
    cfg: &EvalConfig,
    ns: &[usize],
) -> Vec<EvalResult> {
    assert!(!ns.is_empty(), "at least one N required");
    let max_n = ns.iter().copied().max().unwrap_or(0);
    let num_items = split.train.num_items();
    let mut per_n: Vec<Vec<UserOutcome>> = ns.iter().map(|_| Vec::new()).collect();

    for u in 0..split.num_users() {
        let user = UserId(u as u32);
        let train_events = split.train.sequence(user).events();
        let mut window = WindowState::warmed(cfg.window, train_events);
        let mut seen = vec![false; num_items];
        for &item in train_events {
            seen[item.index()] = true;
        }
        let mut outcomes = vec![UserOutcome::default(); ns.len()];
        for &item in split.test_sequence(user).events() {
            if !seen[item.index()] {
                let ctx = RecContext {
                    user,
                    window: &window,
                    stats,
                    omega: cfg.omega,
                };
                let list = recommend_novel(rec, &ctx, &seen, max_n);
                let hit_rank = list.iter().position(|&v| v == item);
                for (slot, &n) in outcomes.iter_mut().zip(ns) {
                    slot.opportunities += 1;
                    if matches!(hit_rank, Some(r) if r < n) {
                        slot.hits += 1;
                    }
                }
                seen[item.index()] = true;
            }
            window.push(item);
        }
        for (bucket, o) in per_n.iter_mut().zip(outcomes) {
            bucket.push(o);
        }
    }
    ns.iter()
        .zip(per_n)
        .map(|(&n, per_user)| EvalResult { top_n: n, per_user })
        .collect()
}

/// Unified next-item evaluation over **all** test events: STREC routes each
/// step to the repeat recommender (eligible window candidates) or the novel
/// recommender (unseen items). This is the mixture the paper's conclusion
/// sketches as future work.
#[derive(Debug, Clone, PartialEq)]
pub struct UnifiedResult {
    /// Accuracy results per requested `N`, over every routable test event.
    pub results: Vec<EvalResult>,
    /// How many events were routed to the repeat recommender.
    pub routed_repeat: u64,
    /// How many events were routed to the novel recommender.
    pub routed_novel: u64,
}

/// Run the unified pipeline with the default 0.5 routing threshold.
pub fn evaluate_unified<RR, NR>(
    gate: &StrecClassifier,
    repeat_rec: &RR,
    novel_rec: &NR,
    split: &SplitDataset,
    stats: &TrainStats,
    cfg: &EvalConfig,
    ns: &[usize],
) -> UnifiedResult
where
    RR: Recommender + ?Sized,
    NR: Recommender + ?Sized,
{
    evaluate_unified_with_threshold(gate, repeat_rec, novel_rec, split, stats, cfg, ns, 0.5)
}

/// Run the unified pipeline routing at an explicit gate threshold. With
/// heavily repeat-dominated data (the normal regime) a threshold at the
/// training base rate routes only *above-average* repeat propensities to
/// the repeat arm.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_unified_with_threshold<RR, NR>(
    gate: &StrecClassifier,
    repeat_rec: &RR,
    novel_rec: &NR,
    split: &SplitDataset,
    stats: &TrainStats,
    cfg: &EvalConfig,
    ns: &[usize],
    threshold: f64,
) -> UnifiedResult
where
    RR: Recommender + ?Sized,
    NR: Recommender + ?Sized,
{
    assert!(!ns.is_empty(), "at least one N required");
    let max_n = ns.iter().copied().max().unwrap_or(0);
    let num_items = split.train.num_items();
    let mut per_n: Vec<Vec<UserOutcome>> = ns.iter().map(|_| Vec::new()).collect();
    let mut routed_repeat = 0u64;
    let mut routed_novel = 0u64;

    for u in 0..split.num_users() {
        let user = UserId(u as u32);
        let train_events = split.train.sequence(user).events();
        let mut window = WindowState::warmed(cfg.window, train_events);
        let mut seen = vec![false; num_items];
        for &item in train_events {
            seen[item.index()] = true;
        }
        let mut state = StrecFeatureState::default();
        {
            let mut warm = WindowState::new(cfg.window);
            for (step, &item) in train_events.iter().enumerate() {
                state.observe(step, warm.contains(item));
                warm.push(item);
            }
        }
        let mut outcomes = vec![UserOutcome::default(); ns.len()];
        for &item in split.test_sequence(user).events() {
            if !window.is_empty() {
                let ctx = RecContext {
                    user,
                    window: &window,
                    stats,
                    omega: cfg.omega,
                };
                let predict_repeat = gate.predict_with_threshold(&window, stats, &state, threshold);
                let list = if predict_repeat {
                    routed_repeat += 1;
                    repeat_rec.recommend(&ctx, max_n)
                } else {
                    routed_novel += 1;
                    recommend_novel(novel_rec, &ctx, &seen, max_n)
                };
                // Score against the actual consumption whatever it was —
                // the unified pipeline is judged on the true next item.
                let hit_rank = list.iter().position(|&v| v == item);
                for (slot, &n) in outcomes.iter_mut().zip(ns) {
                    slot.opportunities += 1;
                    if matches!(hit_rank, Some(r) if r < n) {
                        slot.hits += 1;
                    }
                }
            }
            state.observe(window.time(), window.contains(item));
            seen[item.index()] = true;
            window.push(item);
        }
        for (bucket, o) in per_n.iter_mut().zip(outcomes) {
            bucket.push(o);
        }
    }
    UnifiedResult {
        results: ns
            .iter()
            .zip(per_n)
            .map(|(&n, per_user)| EvalResult { top_n: n, per_user })
            .collect(),
        routed_repeat,
        routed_novel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::{Dataset, Sequence};
    use rrc_strec::LassoConfig;

    struct ByQuality;
    impl Recommender for ByQuality {
        fn name(&self) -> &str {
            "by-quality"
        }
        fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
            ctx.stats.quality(item)
        }
    }

    fn fixture() -> (SplitDataset, TrainStats) {
        let train_seqs: Vec<Sequence> = (0..3)
            .map(|u| Sequence::from_raw((0..50).map(|i| ((i + u) % 6) as u32).collect()))
            .collect();
        let test_seqs: Vec<Sequence> = (0..3)
            .map(|u| {
                // Mix of repeats (0..6) and novel items (6..10).
                Sequence::from_raw(
                    (0..20)
                        .map(|i| {
                            if i % 4 == 0 {
                                6 + ((i / 4 + u) % 4) as u32
                            } else {
                                (i % 6) as u32
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let split = SplitDataset {
            train: Dataset::new(train_seqs, 10),
            test: test_seqs,
        };
        let stats = TrainStats::compute(&split.train, 10);
        (split, stats)
    }

    #[test]
    fn novel_eval_counts_first_time_items_only() {
        let (split, stats) = fixture();
        let cfg = EvalConfig {
            window: 10,
            omega: 2,
        };
        let results = evaluate_novel(&ByQuality, &split, &stats, &cfg, &[1, 4]);
        // Each user consumes 4 distinct novel items (6..10) once each...
        // every first occurrence is an opportunity.
        assert!(results[0].opportunities() > 0);
        assert_eq!(results[0].opportunities(), results[1].opportunities());
        // With 4 unseen items and N=4, every list contains the answer.
        assert_eq!(results[1].maap(), 1.0);
        assert!(results[0].maap() <= results[1].maap());
    }

    #[test]
    fn novel_eval_never_recommends_seen_items() {
        let (split, stats) = fixture();
        let user = UserId(0);
        let window = WindowState::warmed(10, split.train.sequence(user).events());
        let ctx = RecContext {
            user,
            window: &window,
            stats: &stats,
            omega: 2,
        };
        let mut seen = vec![false; 10];
        seen[..6].fill(true);
        let list = recommend_novel(&ByQuality, &ctx, &seen, 10);
        assert_eq!(list.len(), 4);
        for v in list {
            assert!(v.0 >= 6);
        }
    }

    #[test]
    fn unified_pipeline_routes_and_scores() {
        let (split, stats) = fixture();
        let gate = StrecClassifier::fit(&split.train, &stats, 10, &LassoConfig::default())
            .expect("examples exist");
        let cfg = EvalConfig {
            window: 10,
            omega: 2,
        };
        let unified = evaluate_unified(&gate, &ByQuality, &ByQuality, &split, &stats, &cfg, &[5]);
        let total_events: u64 = split.test.iter().map(|s| s.len() as u64).sum();
        assert_eq!(unified.routed_repeat + unified.routed_novel, total_events);
        assert_eq!(unified.results[0].opportunities(), total_events);
        assert!(unified.results[0].maap() > 0.0);
    }
}
