//! The accuracy metrics of §5.3: per-user precision, MaAP, MiAP.

/// One user's evaluation outcome: how many recommendation lists were
/// generated for them and how many contained the reconsumed item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UserOutcome {
    /// Correct recommendation lists (numerator of Eq. 22).
    pub hits: u64,
    /// Recommendation opportunities (denominator of Eq. 22).
    pub opportunities: u64,
}

impl UserOutcome {
    /// The per-user precision `P(u)`; `None` when the user had no
    /// opportunities (such users are excluded from MiAP, mirroring the
    /// paper's evaluation over users who have repeats in their test split).
    pub fn precision(&self) -> Option<f64> {
        if self.opportunities == 0 {
            None
        } else {
            Some(self.hits as f64 / self.opportunities as f64)
        }
    }
}

/// Aggregated evaluation result at one recommendation-list length `N`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// The `N` in Top-N.
    pub top_n: usize,
    /// Per-user outcomes (indexed by dense user id).
    pub per_user: Vec<UserOutcome>,
}

impl EvalResult {
    /// Macro average precision (Eq. 23): pooled hits over pooled
    /// opportunities.
    pub fn maap(&self) -> f64 {
        let hits: u64 = self.per_user.iter().map(|u| u.hits).sum();
        let opp: u64 = self.per_user.iter().map(|u| u.opportunities).sum();
        if opp == 0 {
            0.0
        } else {
            hits as f64 / opp as f64
        }
    }

    /// Micro average precision (Eq. 24): mean of per-user precisions over
    /// users with at least one opportunity.
    pub fn miap(&self) -> f64 {
        let precisions: Vec<f64> = self.per_user.iter().filter_map(|u| u.precision()).collect();
        if precisions.is_empty() {
            0.0
        } else {
            precisions.iter().sum::<f64>() / precisions.len() as f64
        }
    }

    /// Total recommendation opportunities.
    pub fn opportunities(&self) -> u64 {
        self.per_user.iter().map(|u| u.opportunities).sum()
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.per_user.iter().map(|u| u.hits).sum()
    }

    /// Users with at least one opportunity.
    pub fn users_evaluated(&self) -> usize {
        self.per_user.iter().filter(|u| u.opportunities > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_handles_empty() {
        assert_eq!(UserOutcome::default().precision(), None);
        let u = UserOutcome {
            hits: 1,
            opportunities: 4,
        };
        assert_eq!(u.precision(), Some(0.25));
    }

    #[test]
    fn maap_pools_miap_averages() {
        // User A: 9/10; user B: 0/1. MaAP = 9/11; MiAP = (0.9 + 0)/2.
        let r = EvalResult {
            top_n: 5,
            per_user: vec![
                UserOutcome {
                    hits: 9,
                    opportunities: 10,
                },
                UserOutcome {
                    hits: 0,
                    opportunities: 1,
                },
            ],
        };
        assert!((r.maap() - 9.0 / 11.0).abs() < 1e-12);
        assert!((r.miap() - 0.45).abs() < 1e-12);
        assert_eq!(r.hits(), 9);
        assert_eq!(r.opportunities(), 11);
        assert_eq!(r.users_evaluated(), 2);
    }

    #[test]
    fn users_without_opportunities_do_not_dilute_miap() {
        let r = EvalResult {
            top_n: 1,
            per_user: vec![
                UserOutcome {
                    hits: 2,
                    opportunities: 2,
                },
                UserOutcome::default(), // never evaluated
            ],
        };
        assert_eq!(r.miap(), 1.0);
        assert_eq!(r.users_evaluated(), 1);
    }

    #[test]
    fn empty_result_is_zero() {
        let r = EvalResult {
            top_n: 10,
            per_user: vec![],
        };
        assert_eq!(r.maap(), 0.0);
        assert_eq!(r.miap(), 0.0);
    }

    #[test]
    fn imbalance_separates_maap_from_miap() {
        // A heavy user with poor precision drags MaAP below MiAP.
        let r = EvalResult {
            top_n: 5,
            per_user: vec![
                UserOutcome {
                    hits: 10,
                    opportunities: 100,
                }, // 0.1, heavy
                UserOutcome {
                    hits: 9,
                    opportunities: 10,
                }, // 0.9, light
            ],
        };
        assert!(r.maap() < r.miap());
    }
}
