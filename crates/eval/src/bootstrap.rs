//! Bootstrap confidence intervals for the accuracy metrics.
//!
//! The paper reports point estimates; for a production-quality harness we
//! also want uncertainty. Users are the natural resampling unit (their
//! walks are independent given the trained model), so we bootstrap over
//! per-user outcomes: resample users with replacement, recompute
//! MaAP/MiAP, and report percentile intervals.

use crate::metrics::EvalResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether the interval contains a value.
    pub fn contains(&self, x: f64) -> bool {
        (self.lower..=self.upper).contains(&x)
    }
}

/// Bootstrap intervals for one evaluation result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapResult {
    /// Interval for MaAP.
    pub maap: ConfidenceInterval,
    /// Interval for MiAP.
    pub miap: ConfidenceInterval,
    /// Resamples drawn.
    pub resamples: usize,
}

/// Percentile-bootstrap the MaAP/MiAP of `result` over users.
///
/// `confidence` is the two-sided level (e.g. 0.95); `resamples` ≥ 100 is
/// recommended. Deterministic for a fixed seed.
pub fn bootstrap_metrics(
    result: &EvalResult,
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> BootstrapResult {
    assert!(resamples > 0, "need at least one resample");
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence must be in (0, 1)"
    );
    let users = &result.per_user;
    let n = users.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut maaps = Vec::with_capacity(resamples);
    let mut miaps = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut hits = 0u64;
        let mut opp = 0u64;
        let mut prec_sum = 0.0;
        let mut prec_n = 0usize;
        for _ in 0..n {
            let u = &users[rng.gen_range(0..n)];
            hits += u.hits;
            opp += u.opportunities;
            if let Some(p) = u.precision() {
                prec_sum += p;
                prec_n += 1;
            }
        }
        maaps.push(if opp == 0 {
            0.0
        } else {
            hits as f64 / opp as f64
        });
        miaps.push(if prec_n == 0 {
            0.0
        } else {
            prec_sum / prec_n as f64
        });
    }
    BootstrapResult {
        maap: percentile_interval(result.maap(), &mut maaps, confidence),
        miap: percentile_interval(result.miap(), &mut miaps, confidence),
        resamples,
    }
}

fn percentile_interval(estimate: f64, samples: &mut [f64], confidence: f64) -> ConfidenceInterval {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite metrics"));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((samples.len() as f64 * alpha).floor() as usize).min(samples.len() - 1);
    let hi_idx = ((samples.len() as f64 * (1.0 - alpha)).ceil() as usize)
        .saturating_sub(1)
        .min(samples.len() - 1);
    ConfidenceInterval {
        estimate,
        lower: samples[lo_idx],
        upper: samples[hi_idx],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::UserOutcome;

    fn result(per_user: Vec<(u64, u64)>) -> EvalResult {
        EvalResult {
            top_n: 5,
            per_user: per_user
                .into_iter()
                .map(|(hits, opportunities)| UserOutcome {
                    hits,
                    opportunities,
                })
                .collect(),
        }
    }

    #[test]
    fn interval_brackets_estimate_for_homogeneous_users() {
        // All users identical → every resample gives the same metric.
        let r = result(vec![(5, 10); 20]);
        let b = bootstrap_metrics(&r, 200, 0.95, 1);
        assert_eq!(b.maap.lower, 0.5);
        assert_eq!(b.maap.upper, 0.5);
        assert_eq!(b.maap.estimate, 0.5);
        assert!(b.maap.contains(0.5));
        assert_eq!(b.maap.width(), 0.0);
    }

    #[test]
    fn heterogeneous_users_give_nonzero_width() {
        let r = result(vec![(10, 10), (0, 10), (5, 10), (2, 10), (9, 10)]);
        let b = bootstrap_metrics(&r, 500, 0.9, 2);
        assert!(b.maap.width() > 0.0);
        assert!(b.maap.contains(r.maap()), "{:?} vs {}", b.maap, r.maap());
        assert!(b.miap.contains(r.miap()));
        assert!(b.maap.lower >= 0.0 && b.maap.upper <= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        // Enough distinct users that two different resample streams cannot
        // quantize to identical percentile endpoints.
        let r = result(vec![
            (3, 9),
            (1, 4),
            (7, 8),
            (0, 6),
            (5, 5),
            (2, 10),
            (4, 7),
            (6, 11),
        ]);
        let a = bootstrap_metrics(&r, 100, 0.95, 42);
        let b = bootstrap_metrics(&r, 100, 0.95, 42);
        assert_eq!(a, b);
        let c = bootstrap_metrics(&r, 100, 0.95, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn higher_confidence_widens_interval() {
        let r = result(vec![(10, 10), (0, 10), (5, 10), (2, 10), (9, 10), (4, 10)]);
        let narrow = bootstrap_metrics(&r, 1000, 0.5, 7);
        let wide = bootstrap_metrics(&r, 1000, 0.99, 7);
        assert!(wide.maap.width() >= narrow.maap.width());
    }

    #[test]
    #[should_panic(expected = "confidence must be in")]
    fn bad_confidence_rejected() {
        let r = result(vec![(1, 2)]);
        bootstrap_metrics(&r, 10, 1.5, 0);
    }
}
