//! Online recommendation latency measurement (Fig. 13 of the paper).

use crate::harness::EvalConfig;
use rrc_features::{RecContext, Recommender, TrainStats};
use rrc_sequence::{classify, ConsumptionKind, SplitDataset, UserId, WindowState};
use std::time::{Duration, Instant};

/// Latency statistics over measured recommendation instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyReport {
    /// Instances measured.
    pub instances: usize,
    /// Total wall time across instances.
    pub total: Duration,
}

impl LatencyReport {
    /// Mean per-instance latency; zero if nothing was measured.
    pub fn mean(&self) -> Duration {
        if self.instances == 0 {
            Duration::ZERO
        } else {
            self.total / self.instances as u32
        }
    }

    /// Mean latency in milliseconds (the unit of Fig. 13).
    pub fn mean_millis(&self) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            self.total.as_secs_f64() * 1e3 / self.instances as f64
        }
    }
}

/// Walk the test suffixes exactly as the accuracy harness does, but time
/// each `recommend` call, stopping after `max_instances` measurements.
pub fn measure_latency<R: Recommender + ?Sized>(
    rec: &R,
    split: &SplitDataset,
    stats: &TrainStats,
    cfg: &EvalConfig,
    top_n: usize,
    max_instances: usize,
) -> LatencyReport {
    let mut report = LatencyReport {
        instances: 0,
        total: Duration::ZERO,
    };
    // Per-instance latency also feeds the global
    // span_duration_ns{span="eval.recommend"} histogram, adding
    // p50/p95/p99 on top of this report's mean (Fig. 13 reports means;
    // the registry keeps the whole distribution).
    let instance_hist = rrc_obs::global().span_histogram("eval.recommend");
    'users: for u in 0..split.num_users() {
        let user = UserId(u as u32);
        let mut window = WindowState::warmed(cfg.window, split.train.sequence(user).events());
        for &item in split.test_sequence(user).events() {
            if classify(&window, item, cfg.omega) == ConsumptionKind::EligibleRepeat {
                let ctx = RecContext {
                    user,
                    window: &window,
                    stats,
                    omega: cfg.omega,
                };
                let start = Instant::now();
                let list = rec.recommend(&ctx, top_n);
                let elapsed = start.elapsed();
                std::hint::black_box(&list);
                instance_hist.record_duration(elapsed);
                report.total += elapsed;
                report.instances += 1;
                if report.instances >= max_instances {
                    break 'users;
                }
            }
            window.push(item);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::{Dataset, ItemId, Sequence};

    struct Fast;
    impl Recommender for Fast {
        fn name(&self) -> &str {
            "fast"
        }
        fn score(&self, _: &RecContext<'_>, item: ItemId) -> f64 {
            item.0 as f64
        }
    }

    struct Slow;
    impl Recommender for Slow {
        fn name(&self) -> &str {
            "slow"
        }
        fn score(&self, _: &RecContext<'_>, item: ItemId) -> f64 {
            // Busy-work proportional to nothing useful: the point is only
            // to be measurably slower than `Fast`.
            let mut acc = item.0 as f64;
            for i in 0..20_000 {
                acc = (acc + i as f64).sin();
            }
            acc
        }
    }

    fn fixture() -> (SplitDataset, TrainStats) {
        let split = SplitDataset {
            train: Dataset::new(
                vec![Sequence::from_raw((0..40).map(|i| i % 6).collect())],
                6,
            ),
            test: vec![Sequence::from_raw((0..20).map(|i| (i * 5) % 6).collect())],
        };
        let stats = TrainStats::compute(&split.train, 10);
        (split, stats)
    }

    #[test]
    fn measures_instances_up_to_cap() {
        let (split, stats) = fixture();
        let cfg = EvalConfig {
            window: 10,
            omega: 2,
        };
        let full = measure_latency(&Fast, &split, &stats, &cfg, 5, usize::MAX);
        assert!(full.instances > 0);
        let capped = measure_latency(&Fast, &split, &stats, &cfg, 5, 2);
        assert_eq!(capped.instances, 2.min(full.instances));
    }

    #[test]
    fn slower_recommender_measures_slower() {
        let (split, stats) = fixture();
        let cfg = EvalConfig {
            window: 10,
            omega: 2,
        };
        let fast = measure_latency(&Fast, &split, &stats, &cfg, 5, 20);
        let slow = measure_latency(&Slow, &split, &stats, &cfg, 5, 20);
        assert!(
            slow.mean() > fast.mean(),
            "slow {:?} <= fast {:?}",
            slow.mean(),
            fast.mean()
        );
    }

    #[test]
    fn empty_report_is_zero() {
        let r = LatencyReport {
            instances: 0,
            total: Duration::ZERO,
        };
        assert_eq!(r.mean(), Duration::ZERO);
        assert_eq!(r.mean_millis(), 0.0);
    }
}
