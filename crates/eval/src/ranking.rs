//! Additional ranking metrics beyond the paper's MaAP/MiAP: MRR and nDCG.
//!
//! The paper evaluates with average precision only; these are standard
//! extensions for downstream users who want rank-aware quality (a hit at
//! rank 1 is worth more than a hit at rank 10). They reuse the same
//! test-walk protocol as [`crate::harness`].

use crate::harness::EvalConfig;
use rrc_features::{RecContext, Recommender, TrainStats};
use rrc_sequence::{classify, ConsumptionKind, SplitDataset, UserId, WindowState};

/// Rank-aware results over all recommendation opportunities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankingResult {
    /// Recommendation opportunities.
    pub opportunities: u64,
    /// Σ 1/rank of the consumed item (0 when not in the list).
    reciprocal_rank_sum: f64,
    /// Σ 1/log2(rank+1) of the consumed item (0 when not in the list).
    dcg_sum: f64,
    /// Hits anywhere in the list.
    pub hits: u64,
}

impl RankingResult {
    /// Record one recommendation opportunity: `rank` is the 1-based
    /// position of the consumed item in the served list, or `None` for a
    /// miss. This is the streaming entry point — the offline
    /// [`evaluate_ranking`] walk and `rrc-serve`'s online quality monitor
    /// both accumulate through it.
    pub fn record(&mut self, rank: Option<usize>) {
        self.opportunities += 1;
        if let Some(rank) = rank {
            assert!(rank >= 1, "ranks are 1-based");
            let rank = rank as f64;
            self.hits += 1;
            self.reciprocal_rank_sum += 1.0 / rank;
            self.dcg_sum += 1.0 / (rank + 1.0).log2();
        }
    }

    /// Fold another accumulator into this one (sharded evaluation).
    pub fn merge(&mut self, other: &RankingResult) {
        self.opportunities += other.opportunities;
        self.reciprocal_rank_sum += other.reciprocal_rank_sum;
        self.dcg_sum += other.dcg_sum;
        self.hits += other.hits;
    }

    /// Mean reciprocal rank.
    pub fn mrr(&self) -> f64 {
        if self.opportunities == 0 {
            0.0
        } else {
            self.reciprocal_rank_sum / self.opportunities as f64
        }
    }

    /// Mean nDCG. With a single relevant item per opportunity the ideal DCG
    /// is 1, so nDCG reduces to `1/log2(rank+1)` averaged over
    /// opportunities.
    pub fn ndcg(&self) -> f64 {
        if self.opportunities == 0 {
            0.0
        } else {
            self.dcg_sum / self.opportunities as f64
        }
    }

    /// Hit rate (same as MaAP at the evaluated list length).
    pub fn hit_rate(&self) -> f64 {
        if self.opportunities == 0 {
            0.0
        } else {
            self.hits as f64 / self.opportunities as f64
        }
    }
}

/// Walk the test suffixes and compute rank-aware metrics at list length
/// `top_n`.
pub fn evaluate_ranking<R: Recommender + ?Sized>(
    rec: &R,
    split: &SplitDataset,
    stats: &TrainStats,
    cfg: &EvalConfig,
    top_n: usize,
) -> RankingResult {
    assert!(cfg.omega < cfg.window, "omega must be < window");
    let mut result = RankingResult::default();
    for u in 0..split.num_users() {
        let user = UserId(u as u32);
        let mut window = WindowState::warmed(cfg.window, split.train.sequence(user).events());
        for &item in split.test_sequence(user).events() {
            if classify(&window, item, cfg.omega) == ConsumptionKind::EligibleRepeat {
                let ctx = RecContext {
                    user,
                    window: &window,
                    stats,
                    omega: cfg.omega,
                };
                let list = rec.recommend(&ctx, top_n);
                result.record(list.iter().position(|&v| v == item).map(|pos| pos + 1));
            }
            window.push(item);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_features::RecContext as Ctx;
    use rrc_sequence::{Dataset, ItemId, Sequence};

    struct ById;
    impl Recommender for ById {
        fn name(&self) -> &str {
            "by-id"
        }
        fn score(&self, _: &Ctx<'_>, item: ItemId) -> f64 {
            -(item.0 as f64) // ascending ids
        }
    }

    fn fixture() -> (SplitDataset, TrainStats) {
        let split = SplitDataset {
            train: Dataset::new(vec![Sequence::from_raw(vec![0, 1, 2, 3, 4, 5])], 6),
            // Repeats of 1 and 3, both eligible under Ω=2.
            test: vec![Sequence::from_raw(vec![1, 3])],
        };
        let stats = TrainStats::compute(&split.train, 10);
        (split, stats)
    }

    #[test]
    fn mrr_and_ndcg_match_hand_computation() {
        let (split, stats) = fixture();
        let cfg = EvalConfig {
            window: 10,
            omega: 2,
        };
        let r = evaluate_ranking(&ById, &split, &stats, &cfg, 10);
        assert_eq!(r.opportunities, 2);
        assert_eq!(r.hits, 2);
        // Event 1: window has 0..=5, t=6, Ω=2 excludes items at steps >= 4
        // (4, 5). Candidates [0,1,2,3]; ById ranks ascending: 1 at rank 2.
        // Event 2: window now 0..=5 + 1 at t=6. Ω excludes steps >= 5: item
        // 5 and 1(just consumed at 6). Candidates [0,2,3,4]: 3 at rank 3.
        let expected_mrr = (1.0 / 2.0 + 1.0 / 3.0) / 2.0;
        assert!((r.mrr() - expected_mrr).abs() < 1e-12, "mrr {}", r.mrr());
        let expected_ndcg = ((3.0f64).log2().recip() + (4.0f64).log2().recip()) / 2.0;
        assert!((r.ndcg() - expected_ndcg).abs() < 1e-12);
        assert_eq!(r.hit_rate(), 1.0);
    }

    #[test]
    fn misses_contribute_zero() {
        let (split, stats) = fixture();
        let cfg = EvalConfig {
            window: 10,
            omega: 2,
        };
        let r = evaluate_ranking(&ById, &split, &stats, &cfg, 1);
        // At N=1 neither repeat is the top candidate.
        assert_eq!(r.hits, 0);
        assert_eq!(r.mrr(), 0.0);
        assert_eq!(r.ndcg(), 0.0);
    }

    #[test]
    fn empty_result_is_zero() {
        let r = RankingResult::default();
        assert_eq!(r.mrr(), 0.0);
        assert_eq!(r.ndcg(), 0.0);
        assert_eq!(r.hit_rate(), 0.0);
    }

    #[test]
    fn streaming_record_and_merge_match_batch_walk() {
        let (split, stats) = fixture();
        let cfg = EvalConfig {
            window: 10,
            omega: 2,
        };
        let batch = evaluate_ranking(&ById, &split, &stats, &cfg, 10);
        // The same two opportunities recorded one at a time (ranks from
        // the hand computation in `mrr_and_ndcg_match_hand_computation`),
        // split across two accumulators then merged.
        let mut a = RankingResult::default();
        let mut b = RankingResult::default();
        a.record(Some(2));
        b.record(Some(3));
        a.merge(&b);
        assert_eq!(a, batch);
        // Misses advance opportunities only.
        a.record(None);
        assert_eq!(a.opportunities, 3);
        assert_eq!(a.hits, 2);
    }

    #[test]
    fn mrr_bounded_by_hit_rate() {
        let (split, stats) = fixture();
        let cfg = EvalConfig {
            window: 10,
            omega: 2,
        };
        let r = evaluate_ranking(&ById, &split, &stats, &cfg, 10);
        assert!(r.mrr() <= r.hit_rate() + 1e-12);
        assert!(r.ndcg() <= r.hit_rate() + 1e-12);
        assert!(r.mrr() <= r.ndcg() + 1e-12); // 1/r <= 1/log2(r+1) for r >= 1
    }
}
