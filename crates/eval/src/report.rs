//! Plain-text table formatting for experiment reports.

/// Format a value as a percentage with two decimals ("12.34%").
pub fn percent(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Render an aligned ASCII table. Every row must have `headers.len()`
/// cells; numeric-looking cells are right-aligned, everything else left.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(
            r.len(),
            cols,
            "row {i} has {} cells, expected {cols}",
            r.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let numeric: Vec<bool> = (0..cols)
        .map(|c| {
            !rows.is_empty()
                && rows.iter().all(|r| {
                    let cell = r[c].trim_end_matches('%');
                    cell.parse::<f64>().is_ok() || r[c].ends_with("ms") || r[c].is_empty()
                })
        })
        .collect();

    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!("| {h:<w$} "));
    }
    out.push_str("|\n");
    sep(&mut out);
    for r in rows {
        for ((cell, w), &num) in r.iter().zip(&widths).zip(&numeric) {
            if num {
                out.push_str(&format!("| {cell:>w$} "));
            } else {
                out.push_str(&format!("| {cell:<w$} "));
            }
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0.1234), "12.34%");
        assert_eq!(percent(1.0), "100.00%");
        assert_eq!(percent(0.0), "0.00%");
    }

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["method", "MaAP@1"],
            &[
                vec!["TS-PPR".into(), "0.31".into()],
                vec!["Pop".into(), "0.17".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // borders + header + 2 rows = 6 lines.
        assert_eq!(lines.len(), 6);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{t}");
        assert!(t.contains("| TS-PPR |"));
        // Numeric column is right-aligned under its header width.
        assert!(t.contains("|   0.31 |"), "{t}");
    }

    #[test]
    fn empty_rows_render_headers_only() {
        let t = format_table(&["a"], &[]);
        assert!(t.contains("| a |"));
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn ragged_rows_rejected() {
        format_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
