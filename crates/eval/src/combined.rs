//! The STREC × TS-PPR holistic pipeline of §5.7 (Table 5).
//!
//! STREC classifies each upcoming consumption as repeat or novel; on the
//! *actual eligible repeats that STREC correctly identified*, the RRC
//! recommender produces its Top-N list. Table 5 reports STREC's overall
//! classification accuracy and the recommender's MaAP@N conditional on
//! correct classification; their product estimates end-to-end accuracy.

use crate::harness::EvalConfig;
use crate::metrics::{EvalResult, UserOutcome};
use rrc_features::{RecContext, Recommender, TrainStats};
use rrc_sequence::{classify, ConsumptionKind, SplitDataset, UserId, WindowState};
use rrc_strec::{StrecClassifier, StrecFeatureState};

/// Table 5's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedResult {
    /// STREC's repeat-vs-novel accuracy over all test steps.
    pub strec_correct: u64,
    /// Total classified test steps.
    pub strec_total: u64,
    /// Conditional recommendation results (one per requested `N`): outcomes
    /// counted only on eligible repeats that STREC correctly flagged.
    pub conditional: Vec<EvalResult>,
}

impl CombinedResult {
    /// STREC classification accuracy.
    pub fn strec_accuracy(&self) -> f64 {
        if self.strec_total == 0 {
            0.0
        } else {
            self.strec_correct as f64 / self.strec_total as f64
        }
    }

    /// End-to-end accuracy estimate at the given result index: STREC
    /// accuracy × conditional MaAP (the product the paper quotes, e.g.
    /// `0.6912 × 0.6314 ≈ 0.44`).
    pub fn end_to_end_maap(&self, idx: usize) -> f64 {
        self.strec_accuracy() * self.conditional[idx].maap()
    }
}

/// Run the combined pipeline over the test split.
pub fn evaluate_combined<R: Recommender + ?Sized>(
    classifier: &StrecClassifier,
    rec: &R,
    split: &SplitDataset,
    stats: &TrainStats,
    cfg: &EvalConfig,
    ns: &[usize],
) -> CombinedResult {
    assert!(!ns.is_empty(), "at least one N required");
    let max_n = ns.iter().copied().max().unwrap_or(0);
    let mut per_n: Vec<Vec<UserOutcome>> = ns.iter().map(|_| Vec::new()).collect();
    let mut strec_correct = 0u64;
    let mut strec_total = 0u64;

    for u in 0..split.num_users() {
        let user = UserId(u as u32);
        let train_events = split.train.sequence(user).events();
        let mut window = WindowState::warmed(cfg.window, train_events);
        // Replay the training stream through the STREC state so the
        // "last repeat" feature is warm too.
        let mut state = StrecFeatureState::default();
        {
            let mut warm = WindowState::new(cfg.window);
            for (step, &item) in train_events.iter().enumerate() {
                state.observe(step, warm.contains(item));
                warm.push(item);
            }
        }
        let mut outcomes = vec![UserOutcome::default(); ns.len()];
        for &item in split.test_sequence(user).events() {
            let mut predicted_repeat = false;
            if !window.is_empty() {
                predicted_repeat = classifier.predict(&window, stats, &state);
                let actual_repeat = window.contains(item);
                if predicted_repeat == actual_repeat {
                    strec_correct += 1;
                }
                strec_total += 1;
            }
            let kind = classify(&window, item, cfg.omega);
            if kind == ConsumptionKind::EligibleRepeat && predicted_repeat {
                let ctx = RecContext {
                    user,
                    window: &window,
                    stats,
                    omega: cfg.omega,
                };
                let list = rec.recommend(&ctx, max_n);
                let hit_rank = list.iter().position(|&v| v == item);
                for (slot, &n) in outcomes.iter_mut().zip(ns) {
                    slot.opportunities += 1;
                    if matches!(hit_rank, Some(r) if r < n) {
                        slot.hits += 1;
                    }
                }
            }
            state.observe(window.time(), window.contains(item));
            window.push(item);
        }
        for (bucket, o) in per_n.iter_mut().zip(outcomes) {
            bucket.push(o);
        }
    }

    CombinedResult {
        strec_correct,
        strec_total,
        conditional: ns
            .iter()
            .zip(per_n)
            .map(|(&n, per_user)| EvalResult { top_n: n, per_user })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_features::RecContext as Ctx;
    use rrc_sequence::{Dataset, ItemId, Sequence};
    use rrc_strec::LassoConfig;

    struct ById;
    impl Recommender for ById {
        fn name(&self) -> &str {
            "by-id"
        }
        fn score(&self, _: &Ctx<'_>, item: ItemId) -> f64 {
            -(item.0 as f64)
        }
    }

    fn split() -> (SplitDataset, TrainStats) {
        // Repetitive training streams so STREC has signal.
        let train_seqs: Vec<Sequence> = (0..4)
            .map(|u| Sequence::from_raw((0..80).map(|i| ((i + u) % 5) as u32).collect()))
            .collect();
        let test_seqs: Vec<Sequence> = (0..4)
            .map(|u| Sequence::from_raw((0..30).map(|i| ((i * 2 + u) % 5) as u32).collect()))
            .collect();
        let split = SplitDataset {
            train: Dataset::new(train_seqs, 5),
            test: test_seqs,
        };
        let stats = TrainStats::compute(&split.train, 10);
        (split, stats)
    }

    #[test]
    fn combined_pipeline_produces_consistent_counts() {
        let (split, stats) = split();
        let clf = StrecClassifier::fit(&split.train, &stats, 10, &LassoConfig::default())
            .expect("examples exist");
        let cfg = EvalConfig {
            window: 10,
            omega: 2,
        };
        let result = evaluate_combined(&clf, &ById, &split, &stats, &cfg, &[1, 5]);
        assert!(result.strec_total > 0);
        assert!(result.strec_accuracy() > 0.4, "{}", result.strec_accuracy());
        assert_eq!(result.conditional.len(), 2);
        // Gated opportunities cannot exceed the ungated eligible repeats.
        let ungated = crate::harness::evaluate(&ById, &split, &stats, &cfg, 1);
        assert!(result.conditional[0].opportunities() <= ungated.opportunities());
        // MaAP monotone in N; end-to-end <= conditional.
        assert!(result.conditional[0].maap() <= result.conditional[1].maap());
        assert!(result.end_to_end_maap(1) <= result.conditional[1].maap() + 1e-12);
    }

    #[test]
    fn empty_split_gives_zero() {
        let s = SplitDataset {
            train: Dataset::new(vec![Sequence::from_raw(vec![0, 0, 0, 1])], 2),
            test: vec![Sequence::new()],
        };
        let stats = TrainStats::compute(&s.train, 10);
        let clf = StrecClassifier::fit(&s.train, &stats, 10, &LassoConfig::default()).unwrap();
        let cfg = EvalConfig {
            window: 10,
            omega: 2,
        };
        let r = evaluate_combined(&clf, &ById, &s, &stats, &cfg, &[1]);
        assert_eq!(r.strec_total, 0);
        assert_eq!(r.strec_accuracy(), 0.0);
        assert_eq!(r.conditional[0].opportunities(), 0);
    }
}
