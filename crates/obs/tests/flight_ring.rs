//! Property tests for the flight-recorder ring: for arbitrary capacities
//! and event counts — including many wraps and concurrent writers — the
//! survivor set is exactly the `min(capacity, total)` highest sequence
//! numbers, returned in ascending order, and a dumped bundle of the ring
//! always validates.

use proptest::prelude::*;
use rrc_obs::{validate_flight_bundle, write_flight_bundle, FlightRecorder, Json};
use std::sync::Arc;

proptest! {
    #[test]
    fn ring_survivors_are_the_highest_seqs(
        capacity in 1usize..48,
        total in 0u64..400,
    ) {
        let ring = FlightRecorder::new(0, capacity);
        for i in 0..total {
            let seq = ring.record("tick", vec![("i", Json::U64(i))]);
            prop_assert_eq!(seq, i, "seqs are assigned in record order");
        }
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        let expect: Vec<u64> = (total.saturating_sub(capacity as u64)..total).collect();
        prop_assert_eq!(seqs, expect);
        prop_assert_eq!(ring.recorded(), total);
    }

    #[test]
    fn ring_overwrite_keeps_newest_payloads(
        capacity in 1usize..16,
        total in 1u64..200,
    ) {
        let ring = FlightRecorder::new(0, capacity);
        for i in 0..total {
            ring.record("tick", vec![("i", Json::U64(i))]);
        }
        for event in ring.snapshot() {
            // The payload stored under each surviving seq is the one
            // recorded with it — overwrites never mix slots.
            let payload = event
                .fields
                .iter()
                .find(|(k, _)| *k == "i")
                .and_then(|(_, v)| v.as_u64());
            prop_assert_eq!(payload, Some(event.seq));
        }
    }

    #[test]
    fn concurrent_writers_leave_a_dense_suffix(
        capacity in 1usize..24,
        per_thread in 1u64..64,
        threads in 1u64..5,
    ) {
        let ring = Arc::new(FlightRecorder::new(0, capacity));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        ring.record("tick", vec![("t", Json::U64(t)), ("i", Json::U64(i))]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = threads * per_thread;
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        let expect: Vec<u64> = (total.saturating_sub(capacity as u64)..total).collect();
        prop_assert_eq!(seqs, expect, "newest-wins slots must survive wrap races");
    }

    #[test]
    fn dumped_bundle_always_validates(
        capacity in 1usize..16,
        total in 0u64..80,
    ) {
        let ring = Arc::new(FlightRecorder::new(1, capacity));
        for i in 0..total {
            ring.record("tick", vec![("i", Json::U64(i))]);
        }
        let dir = std::env::temp_dir().join(format!(
            "rrc-flight-prop-{}-{capacity}-{total}",
            std::process::id()
        ));
        let path = dir.join("bundle.jsonl");
        let stats = write_flight_bundle(&path, &[], &[ring]).unwrap();
        prop_assert_eq!(stats.events as u64, total.min(capacity as u64));
        prop_assert_eq!(validate_flight_bundle(&path).unwrap(), stats);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
