//! Integration tests for the cooperative sampling profiler.
//!
//! Covers the three properties the module-level design claims:
//!
//! 1. **Path correctness under arbitrary guard lifetimes** — nesting
//!    builds `/`-joined paths, and early or out-of-order drops rewind to
//!    the dropped guard's entry point instead of corrupting the path.
//! 2. **No torn paths** — a property test runs mutator threads churning
//!    through nested guards while a sampler thread walks them
//!    concurrently; every sampled path must be a prefix of a path some
//!    mutator actually pushed (a torn read would surface as an
//!    impossible path like `a/c` from a thread that pushed `a/b/c`).
//! 3. **Deterministic export** — a synthetic-sample run renders to a
//!    committed collapsed-stack golden fixture, byte for byte.
//!    Regenerate after an intentional format change with:
//!
//!    ```text
//!    UPDATE_GOLDEN=1 cargo test -p rrc-obs --test profile
//!    ```

use proptest::prelude::*;
use rrc_obs::profile::{self, ProfGuard, Profiler};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};

/// Profiler state is process-global; tests take this gate so their
/// enable/reset/sample cycles can't interleave.
fn gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[test]
fn nested_guards_expose_the_full_slash_path() {
    let _gate = gate();
    profile::enable();
    {
        let _a = ProfGuard::enter("alpha");
        assert_eq!(profile::current_path().as_deref(), Some("alpha"));
        {
            let _b = ProfGuard::enter_path(&["beta", "gamma"]);
            assert_eq!(profile::current_path().as_deref(), Some("alpha/beta/gamma"));
        }
        assert_eq!(profile::current_path().as_deref(), Some("alpha"));
    }
    assert_eq!(profile::current_path(), None);
    profile::disable();
}

#[test]
fn early_and_out_of_order_drops_rewind_to_entry() {
    let _gate = gate();
    profile::enable();
    let outer = ProfGuard::enter("outer");
    let inner = ProfGuard::enter("inner");
    assert_eq!(profile::current_path().as_deref(), Some("outer/inner"));
    // Drop the OUTER guard first: its entry point was root, so the path
    // rewinds all the way out even though `inner` is still alive.
    drop(outer);
    assert_eq!(profile::current_path(), None);
    // Dropping the survivor rewinds to *its* entry point (`outer`): a
    // stale but valid interned path — never a torn or invalid one.
    drop(inner);
    assert_eq!(profile::current_path().as_deref(), Some("outer"));
    // A fresh scope repairs the thread state.
    {
        let _fix = ProfGuard::enter("fix");
        assert_eq!(profile::current_path().as_deref(), Some("outer/fix"));
    }
    profile::disable();
    // Disabled guards leave the (stale) path untouched but stop pushing.
    let _dead = ProfGuard::enter("dead");
    assert_eq!(profile::current_path().as_deref(), Some("outer"));
}

/// Segment alphabet for the concurrency property test. `&'static` names
/// keep the interner's leak-per-unique-name bounded.
const SEGMENTS: [&str; 6] = ["sa", "sb", "sc", "sd", "se", "sf"];

/// Every `/`-joined prefix of `chain`, e.g. `[a, b]` -> `["a", "a/b"]`.
fn prefixes(chain: &[&'static str]) -> Vec<String> {
    (1..=chain.len()).map(|n| chain[..n].join("/")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Mutator threads churn nested guards while a sampler thread walks
    /// them concurrently. Any path the sampler observes must be a prefix
    /// of some thread's pushed chain — a torn read (part of one frame,
    /// part of another) would produce a path outside that set.
    #[test]
    fn concurrent_sampling_never_observes_torn_paths(
        chains in prop::collection::vec(
            prop::collection::vec(0usize..SEGMENTS.len(), 1..5),
            1..4,
        ),
        rounds in 50usize..200,
    ) {
        let _gate = gate();
        let chains: Vec<Vec<&'static str>> = chains
            .into_iter()
            .map(|c| c.into_iter().map(|i| SEGMENTS[i]).collect())
            .collect();
        profile::disable();
        profile::reset();
        profile::enable();

        let stop = Arc::new(AtomicBool::new(false));
        let start = Arc::new(Barrier::new(chains.len() + 1));
        let mut mutators = Vec::new();
        for chain in chains.clone() {
            let stop = stop.clone();
            let start = start.clone();
            mutators.push(std::thread::spawn(move || {
                start.wait();
                while !stop.load(Ordering::Relaxed) {
                    // Push the chain one nested guard at a time, then
                    // unwind; the sampler may fire at any point in
                    // between.
                    let mut guards = Vec::with_capacity(chain.len());
                    for seg in &chain {
                        guards.push(ProfGuard::enter(seg));
                    }
                    while guards.pop().is_some() {}
                }
            }));
        }

        start.wait();
        for _ in 0..rounds {
            profile::sample_once();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for m in mutators {
            m.join().expect("mutator thread");
        }
        profile::disable();

        let valid: std::collections::HashSet<String> =
            chains.iter().flat_map(|c| prefixes(c)).collect();
        let snap = profile::snapshot();
        for entry in &snap.entries {
            prop_assert!(
                valid.contains(&entry.path),
                "sampled path {:?} is not a prefix of any pushed chain {:?}",
                entry.path,
                chains,
            );
        }
        // Conservation: every tick sampled each active thread exactly
        // once, so work + idle = ticks * threads-walked can't be
        // exceeded by work alone.
        prop_assert!(snap.work_samples <= snap.ticks * chains.len() as u64 + snap.idle_samples);
    }
}

/// The background sampler attributes samples to the path a thread holds
/// while it works, and stops counting once the profiler is stopped.
#[test]
fn background_sampler_attributes_busy_threads() {
    let _gate = gate();
    profile::disable();
    profile::reset();
    let profiler = Profiler::start(4000.0);
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let _g = ProfGuard::enter_path(&["itest", "busy"]);
            let mut x = 0u64;
            while !stop.load(Ordering::Relaxed) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                std::hint::black_box(x);
            }
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(120));
    stop.store(true, Ordering::Relaxed);
    worker.join().expect("worker");
    let snap = profiler.stop();
    let busy = snap.entry("itest/busy").expect("itest/busy sampled");
    assert!(busy.samples > 0, "busy loop must accumulate samples");
    assert!(
        busy.self_share > 0.5,
        "the only working thread should dominate work shares, got {}",
        busy.self_share
    );
    let parent = snap.entry("itest").expect("parent path present");
    assert!(
        parent.total_samples >= busy.samples,
        "rollup: parent total ({}) must cover child self ({})",
        parent.total_samples,
        busy.samples
    );
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("profile_collapsed.txt")
}

/// Deterministic synthetic profile -> committed collapsed-stack fixture.
/// Pins the export format (semicolon-joined frames, space, self count,
/// sorted lines) that `flamegraph.pl` / inferno and `rrc-prof` consume.
#[test]
fn collapsed_export_matches_golden_fixture() {
    let _gate = gate();
    profile::disable();
    profile::reset();
    profile::record_synthetic(&["serve", "shard", "score"], 700);
    profile::record_synthetic(&["serve", "shard", "respond"], 200);
    profile::record_synthetic(&["serve", "enqueue"], 100);
    profile::record_synthetic(&["train", "block"], 400);
    profile::record_synthetic(&["train", "merge"], 50);
    profile::record_synthetic(&["store_save"], 25);
    let got = profile::snapshot().collapsed();

    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &got).expect("write golden");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test -p rrc-obs --test profile",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "collapsed export drifted from the committed fixture; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
