//! Allocator-attribution tests for the profiler's [`CountingAlloc`].
//!
//! Lives in its own integration binary because a `#[global_allocator]`
//! is process-wide: this binary routes *every* allocation through the
//! counting wrapper, exactly like a production binary (`loadgen`) does,
//! and then asserts that bytes land on the innermost active frame of
//! the allocating thread.

use rrc_obs::profile::{self, CountingAlloc, ProfGuard};
use std::sync::{Mutex, OnceLock};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Counters are process-global; serialize the tests' enable/reset windows.
fn gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Big, distinctive sizes so incidental allocations (test harness,
/// formatting) can't be confused with the tracked ones.
const OUTER_BYTES: usize = 1 << 20;
const INNER_BYTES: usize = 1 << 18;

/// Attribution follows the *innermost* guard at allocation time: bytes
/// allocated under `alloctest/outer/inner` must not leak into the
/// `alloctest/outer` frame's own accounting, and allocations made while
/// profiling is disabled must not be counted at all.
#[test]
fn allocations_attribute_to_the_innermost_frame() {
    let _gate = gate();
    // Disabled: the hook must stay inert (count nothing anywhere).
    profile::disable();
    profile::reset();
    {
        let _g = ProfGuard::enter("alloctest");
        std::hint::black_box(Vec::<u8>::with_capacity(OUTER_BYTES));
    }
    let snap = profile::snapshot().filtered("alloctest");
    assert!(
        snap.entries.is_empty(),
        "disabled profiler must not attribute allocations: {:?}",
        snap.entries
    );

    profile::enable();
    let outer_buf;
    let inner_buf;
    {
        let _outer = ProfGuard::enter_path(&["alloctest", "outer"]);
        outer_buf = std::hint::black_box(Vec::<u8>::with_capacity(OUTER_BYTES));
        {
            let _inner = ProfGuard::enter("inner");
            inner_buf = std::hint::black_box(Vec::<u8>::with_capacity(INNER_BYTES));
        }
    }
    profile::disable();

    let snap = profile::snapshot();
    let outer = snap
        .entry("alloctest/outer")
        .expect("outer frame accounted");
    let inner = snap
        .entry("alloctest/outer/inner")
        .expect("inner frame accounted");

    assert!(
        outer.alloc_bytes >= OUTER_BYTES as u64,
        "outer frame must carry its own 1 MiB allocation, got {} bytes",
        outer.alloc_bytes
    );
    assert!(
        inner.alloc_bytes >= INNER_BYTES as u64,
        "inner frame must carry its 256 KiB allocation, got {} bytes",
        inner.alloc_bytes
    );
    // The inner allocation must NOT also be billed to the outer frame:
    // per-frame accounting is exclusive (self, not rolled-up total).
    assert!(
        outer.alloc_bytes < (OUTER_BYTES + INNER_BYTES) as u64,
        "inner bytes leaked into the outer frame: {} bytes",
        outer.alloc_bytes
    );
    assert!(inner.alloc_count >= 1 && outer.alloc_count >= 1);

    // Keep the buffers alive through the measurement: frees are not
    // (and must not be) subtracted from attribution counters.
    drop(outer_buf);
    drop(inner_buf);
}

/// Allocations on a thread outside every guard count as unattributed —
/// visible in the snapshot so "missing" bytes are still conserved.
#[test]
fn unguarded_allocations_are_unattributed() {
    let _gate = gate();
    // Runs in the same process as the test above (shared counters), so
    // only assert deltas on the unattributed bucket.
    profile::enable();
    let before = profile::snapshot().unattributed_alloc_bytes;
    std::hint::black_box(Vec::<u8>::with_capacity(OUTER_BYTES));
    let after = profile::snapshot().unattributed_alloc_bytes;
    profile::disable();
    assert!(
        after >= before + OUTER_BYTES as u64,
        "unguarded 1 MiB allocation must land in the unattributed \
         bucket: before={before} after={after}"
    );
}
