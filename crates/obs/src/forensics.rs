//! Forensic observability: tail-sampled exemplar traces and the flight
//! recorder.
//!
//! Aggregate histograms (PR-2/PR-5) answer "what is p99"; this module
//! answers "why was *that* request slow" and "what happened just before
//! the crash":
//!
//! * [`ExemplarTrace`] — one completed request's compact per-stage
//!   timeline (enqueue wait / score / respond ns, shard, user hash,
//!   model version, queue depth at dequeue).
//! * [`TraceReservoir`] — per-shard tail-based sampler: keeps the K
//!   slowest traces inside a rolling window plus the K most recent.
//!   Admission to the slowest set *is* the sampling decision — callers
//!   forward admitted traces to a JSONL sink, so the sink receives
//!   exactly the tail that aggregate quantiles point at.
//! * [`BucketExemplars`] — one trace id per histogram bucket, so a p99
//!   bucket links to a concrete replayable trace.
//! * [`FlightRecorder`] — a lock-light fixed-size ring of recent
//!   structured events (requests, swaps, evictions, spills, shed
//!   decisions). Slots are claimed by a wait-free `fetch_add` and a
//!   newer sequence number always wins the slot, so overwrite order is
//!   deterministic even when writers race across a wrap.
//! * [`write_flight_bundle`] / [`validate_flight_bundle`] — dump the
//!   rings to a CRC-checked JSONL bundle via tmp+fsync+rename (the same
//!   atomic-commit idiom as `rrc-store`), and verify such a bundle.
//! * [`install_flight_dump`] — a chaining panic hook so any crash
//!   leaves a post-mortem bundle; [`signals`] adds a std-only SIGTERM
//!   flag for cooperative dumps.

use crate::crc32::crc32;
use crate::json::Json;
use crate::metrics::{bucket_index, BUCKETS};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{SystemTime, UNIX_EPOCH};

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// One completed request's compact timeline. Everything needed to replay
/// the request (user hash + model version) and to explain its latency
/// (per-stage nanos + queue depth at dequeue) in ~80 bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExemplarTrace {
    /// Request trace id (unique per engine run).
    pub id: u64,
    /// `mix64` of the user id — stable join key that avoids shipping raw ids.
    pub user_hash: u64,
    /// Shard that processed the request.
    pub shard: usize,
    /// Model version installed when the request was scored.
    pub version: u64,
    /// `observe` or `recommend`.
    pub kind: &'static str,
    /// Queue depth observed when the shard dequeued the request.
    pub queue_depth: u64,
    /// Time spent waiting in the shard queue.
    pub enqueue_wait_ns: u64,
    /// Time spent scoring / applying the model.
    pub score_ns: u64,
    /// Time from shard completion to client receipt.
    pub respond_ns: u64,
}

impl ExemplarTrace {
    /// Total end-to-end latency.
    pub fn total_ns(&self) -> u64 {
        self.enqueue_wait_ns
            .saturating_add(self.score_ns)
            .saturating_add(self.respond_ns)
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::U64(self.id)),
            ("user_hash", Json::U64(self.user_hash)),
            ("shard", Json::U64(self.shard as u64)),
            ("version", Json::U64(self.version)),
            ("kind", Json::Str(self.kind.to_string())),
            ("queue_depth", Json::U64(self.queue_depth)),
            ("enqueue_wait_ns", Json::U64(self.enqueue_wait_ns)),
            ("score_ns", Json::U64(self.score_ns)),
            ("respond_ns", Json::U64(self.respond_ns)),
            ("total_ns", Json::U64(self.total_ns())),
        ])
    }
}

struct ReservoirInner {
    /// `(admitted_at_ns, trace)` — unordered; K is small, scans are linear.
    slowest: Vec<(u64, ExemplarTrace)>,
    recent: VecDeque<ExemplarTrace>,
}

/// Tail-based trace sampler: K slowest inside a rolling window + K most
/// recent. One per shard; the mutex is shard-private on the hot path and
/// only contended by report snapshots.
///
/// [`TraceReservoir::admission_floor`] lets callers skip the lock for
/// the fast majority: a trace with `total_ns()` below the floor cannot
/// enter the slowest set, so only candidate-tail requests (plus whatever
/// sample the caller keeps for the recent ring) pay the mutex.
pub struct TraceReservoir {
    k: usize,
    window_ns: u64,
    /// Minimum `total_ns` that could currently be admitted to the
    /// slowest set (0 until the set fills). Advisory fast-path bound;
    /// the locked path re-checks.
    floor: AtomicU64,
    inner: Mutex<ReservoirInner>,
}

impl TraceReservoir {
    /// `k` traces per class; slowest entries expire `window_ns` after
    /// admission so a one-off ancient spike cannot squat the reservoir.
    pub fn new(k: usize, window_ns: u64) -> TraceReservoir {
        TraceReservoir {
            k: k.max(1),
            window_ns: window_ns.max(1),
            floor: AtomicU64::new(0),
            inner: Mutex::new(ReservoirInner {
                slowest: Vec::new(),
                recent: VecDeque::new(),
            }),
        }
    }

    /// Lock-free lower bound on admissible totals (see type docs).
    pub fn admission_floor(&self) -> u64 {
        self.floor.load(Ordering::Relaxed)
    }

    /// Offer a completed trace at monotonic time `now_ns` (caller's
    /// epoch; only differences matter). Returns `true` iff the trace was
    /// admitted to the slowest-K set — the tail-sampling decision.
    pub fn offer(&self, trace: ExemplarTrace, now_ns: u64) -> bool {
        let mut inner = self.inner.lock().expect("reservoir lock");
        inner.recent.push_back(trace.clone());
        while inner.recent.len() > self.k {
            inner.recent.pop_front();
        }
        let horizon = now_ns.saturating_sub(self.window_ns);
        inner.slowest.retain(|(at, _)| *at > horizon);
        let admitted = if inner.slowest.len() < self.k {
            inner.slowest.push((now_ns, trace));
            true
        } else {
            let (min_idx, min_total) = inner
                .slowest
                .iter()
                .enumerate()
                .map(|(i, (_, t))| (i, t.total_ns()))
                .min_by_key(|&(_, total)| total)
                .expect("non-empty slowest");
            if trace.total_ns() > min_total {
                inner.slowest[min_idx] = (now_ns, trace);
                true
            } else {
                false
            }
        };
        let floor = if inner.slowest.len() < self.k {
            0
        } else {
            inner
                .slowest
                .iter()
                .map(|(_, t)| t.total_ns())
                .min()
                .unwrap_or(0)
        };
        self.floor.store(floor, Ordering::Relaxed);
        admitted
    }

    /// Slowest admitted traces still inside the window, slowest first.
    pub fn slowest(&self) -> Vec<ExemplarTrace> {
        let inner = self.inner.lock().expect("reservoir lock");
        let mut out: Vec<ExemplarTrace> = inner.slowest.iter().map(|(_, t)| t.clone()).collect();
        out.sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.id.cmp(&b.id)));
        out
    }

    /// Most recent completed traces, oldest first.
    pub fn recent(&self) -> Vec<ExemplarTrace> {
        let inner = self.inner.lock().expect("reservoir lock");
        inner.recent.iter().cloned().collect()
    }
}

/// The `n` slowest traces across many reservoirs (slowest first) — used
/// for the loadgen final-report "top slowest requests" table.
pub fn top_slowest<'a>(
    reservoirs: impl IntoIterator<Item = &'a TraceReservoir>,
    n: usize,
) -> Vec<ExemplarTrace> {
    let mut all: Vec<ExemplarTrace> = reservoirs.into_iter().flat_map(|r| r.slowest()).collect();
    all.sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.id.cmp(&b.id)));
    all.truncate(n);
    all
}

/// One exemplar trace id per power-of-two histogram bucket. Stores
/// `id + 1` so `0` means "no exemplar" without an `Option` in the array.
/// Last writer wins — an exemplar is "a" representative, not "the max".
pub struct BucketExemplars {
    slots: [AtomicU64; BUCKETS],
}

impl Default for BucketExemplars {
    fn default() -> Self {
        Self::new()
    }
}

impl BucketExemplars {
    pub fn new() -> BucketExemplars {
        BucketExemplars {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Attach `trace_id` to the bucket that `value_ns` falls in.
    pub fn record(&self, value_ns: u64, trace_id: u64) {
        let i = bucket_index(value_ns);
        self.slots[i].store(trace_id.wrapping_add(1), Ordering::Relaxed);
    }

    /// Exemplar for the bucket containing `value_ns`, walking down to
    /// lower buckets if that exact bucket never saw a recorded trace
    /// (quantiles interpolate, so the reported p99 value may land in a
    /// bucket no sampled request hit).
    pub fn exemplar_for_value(&self, value_ns: u64) -> Option<u64> {
        let start = bucket_index(value_ns);
        for i in (0..=start).rev() {
            let raw = self.slots[i].load(Ordering::Relaxed);
            if raw != 0 {
                return Some(raw - 1);
            }
        }
        None
    }

    /// `(bucket_lower_bound, trace_id)` for every populated bucket.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let raw = self.slots[i].load(Ordering::Relaxed);
                (raw != 0).then(|| (1u64 << i, raw - 1))
            })
            .collect()
    }
}

/// One structured flight-recorder event. Field keys are static so hot
/// paths allocate only the value vector.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Ring-global sequence number (assigned by [`FlightRecorder::record`]).
    pub seq: u64,
    /// Wall-clock capture time.
    pub ts_unix_ms: u64,
    /// `request`, `swap`, `eviction`, `spill`, `shed`, ...
    pub kind: &'static str,
    pub fields: Vec<(&'static str, Json)>,
}

impl FlightEvent {
    fn render_line(&self, shard_label: u64) -> String {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"seq\":{},\"ts_unix_ms\":{},\"shard\":{},\"event\":{}",
            self.seq,
            self.ts_unix_ms,
            shard_label,
            Json::Str(self.kind.to_string()).render()
        );
        for (key, value) in &self.fields {
            let _ = write!(
                line,
                ",{}:{}",
                Json::Str(key.to_string()).render(),
                value.render()
            );
        }
        line.push('}');
        line
    }
}

/// Fixed-size ring of recent [`FlightEvent`]s.
///
/// Recording claims a sequence number with one `fetch_add`, then takes
/// the per-slot mutex (`seq % capacity`) just long enough to store the
/// event. A slot only accepts an event whose sequence number is higher
/// than its current occupant's, so even when two writers race across a
/// ring wrap the survivor set is exactly the `capacity` highest
/// sequence numbers — deterministic overwrite order.
pub struct FlightRecorder {
    shard: u64,
    head: AtomicU64,
    slots: Vec<Mutex<Option<FlightEvent>>>,
}

impl FlightRecorder {
    /// `shard` labels every dumped line; `capacity` is the ring size.
    pub fn new(shard: usize, capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            shard: shard as u64,
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (not just retained).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event; returns its sequence number.
    pub fn record(&self, kind: &'static str, fields: Vec<(&'static str, Json)>) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let event = FlightEvent {
            seq,
            ts_unix_ms: unix_ms(),
            kind,
            fields,
        };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().expect("flight slot lock");
        match &*guard {
            Some(existing) if existing.seq > seq => {} // a newer wrap already claimed the slot
            _ => *guard = Some(event),
        }
        seq
    }

    /// Retained events, oldest first (ascending seq).
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("flight slot lock").clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

/// Summary of a written or validated flight bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightBundleStats {
    pub events: usize,
    pub crc32: u32,
}

/// Dump the recorders' retained events to `path` as a CRC-checked JSONL
/// bundle: a header line, events sorted `(ts, shard, seq)`, and a footer
/// carrying the event count and the CRC-32 of every preceding byte.
/// Written tmp+fsync+rename so a crash mid-dump never leaves a torn file.
pub fn write_flight_bundle(
    path: &Path,
    meta: &[(String, Json)],
    recorders: &[Arc<FlightRecorder>],
) -> std::io::Result<FlightBundleStats> {
    let mut events: Vec<(u64, FlightEvent)> = recorders
        .iter()
        .flat_map(|r| r.snapshot().into_iter().map(|e| (r.shard, e)))
        .collect();
    events.sort_by(|(sa, a), (sb, b)| {
        a.ts_unix_ms
            .cmp(&b.ts_unix_ms)
            .then(sa.cmp(sb))
            .then(a.seq.cmp(&b.seq))
    });

    let mut body = String::with_capacity(64 + events.len() * 96);
    let mut header = format!(
        "{{\"bundle\":\"rrc-flight\",\"version\":1,\"created_unix_ms\":{}",
        unix_ms()
    );
    for (key, value) in meta {
        let _ = write!(
            header,
            ",{}:{}",
            Json::Str(key.clone()).render(),
            value.render()
        );
    }
    header.push('}');
    body.push_str(&header);
    body.push('\n');
    for (shard, event) in &events {
        body.push_str(&event.render_line(*shard));
        body.push('\n');
    }
    let crc = crc32(body.as_bytes());
    let footer = format!(
        "{{\"bundle_footer\":true,\"events\":{},\"crc32\":{}}}\n",
        events.len(),
        crc
    );

    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp: PathBuf = {
        let mut name = path.as_os_str().to_owned();
        name.push(".tmp");
        PathBuf::from(name)
    };
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(body.as_bytes())?;
        file.write_all(footer.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(FlightBundleStats {
        events: events.len(),
        crc32: crc,
    })
}

/// Validate a flight bundle written by [`write_flight_bundle`]: header
/// magic, every line parseable JSON, footer CRC and event count match.
pub fn validate_flight_bundle(path: &Path) -> Result<FlightBundleStats, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let text = std::str::from_utf8(&bytes).map_err(|e| format!("not utf-8: {e}"))?;
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let footer_start = match trimmed.rfind('\n') {
        Some(i) => i + 1,
        None => return Err("bundle has no footer line".to_string()),
    };
    let footer =
        Json::parse(&trimmed[footer_start..]).map_err(|e| format!("footer not JSON: {e}"))?;
    if footer.get("bundle_footer").and_then(Json::as_bool) != Some(true) {
        return Err("last line is not a bundle footer".to_string());
    }
    let want_events = footer
        .get("events")
        .and_then(Json::as_u64)
        .ok_or("footer missing events count")? as usize;
    let want_crc = footer
        .get("crc32")
        .and_then(Json::as_u64)
        .ok_or("footer missing crc32")? as u32;

    let body = &text[..footer_start];
    let got_crc = crc32(body.as_bytes());
    if got_crc != want_crc {
        return Err(format!(
            "crc mismatch: footer {want_crc}, computed {got_crc}"
        ));
    }
    let mut lines = body.lines();
    let header_line = lines.next().ok_or("bundle has no header line")?;
    let header = Json::parse(header_line).map_err(|e| format!("header not JSON: {e}"))?;
    if header.get("bundle").and_then(Json::as_str) != Some("rrc-flight") {
        return Err("header is not an rrc-flight bundle".to_string());
    }
    let mut events = 0usize;
    let mut last: Option<(u64, u64, u64)> = None;
    for (i, line) in lines.enumerate() {
        let ev = Json::parse(line).map_err(|e| format!("event line {}: {e}", i + 1))?;
        let key = (
            ev.get("ts_unix_ms").and_then(Json::as_u64).unwrap_or(0),
            ev.get("shard").and_then(Json::as_u64).unwrap_or(0),
            ev.get("seq").and_then(Json::as_u64).unwrap_or(0),
        );
        if let Some(prev) = last {
            if key < prev {
                return Err(format!("event line {} out of order", i + 1));
            }
        }
        last = Some(key);
        events += 1;
    }
    if events != want_events {
        return Err(format!(
            "event count mismatch: footer {want_events}, counted {events}"
        ));
    }
    Ok(FlightBundleStats {
        events,
        crc32: got_crc,
    })
}

/// Where a crash dump should land: bundle path, extra header metadata,
/// and the recorders to drain.
pub struct FlightDumpTarget {
    pub path: PathBuf,
    pub meta: Vec<(String, Json)>,
    pub recorders: Vec<Arc<FlightRecorder>>,
}

static DUMP_TARGET: Mutex<Option<FlightDumpTarget>> = Mutex::new(None);
static HOOK_ONCE: Once = Once::new();

/// Register `target` and (once per process) install a panic hook that
/// dumps a flight bundle before chaining to the previous hook. Re-calls
/// replace the target but never stack a second hook.
pub fn install_flight_dump(target: FlightDumpTarget) {
    *DUMP_TARGET.lock().expect("dump target lock") = Some(target);
    HOOK_ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = dump_flight_now("panic");
            prev(info);
        }));
    });
}

/// Deregister the dump target (the hook stays installed but becomes a
/// no-op). Call before tearing the recorders down on a clean exit.
pub fn clear_flight_dump() {
    *DUMP_TARGET.lock().expect("dump target lock") = None;
}

/// Dump the registered target now, stamping `reason` into the header.
/// Returns `None` when no target is registered.
pub fn dump_flight_now(reason: &str) -> Option<std::io::Result<FlightBundleStats>> {
    let guard = DUMP_TARGET.lock().expect("dump target lock");
    let target = guard.as_ref()?;
    let mut meta = target.meta.clone();
    meta.push(("reason".to_string(), Json::Str(reason.to_string())));
    Some(write_flight_bundle(&target.path, &meta, &target.recorders))
}

/// Std-only SIGTERM flag (no `libc` crate: the raw `signal(2)` binding
/// only stores to an atomic, which is async-signal-safe). Poll
/// [`signals::sigterm_received`] from a watchdog thread.
#[cfg(unix)]
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGTERM: AtomicBool = AtomicBool::new(false);
    const SIGTERM_NO: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigterm(_: i32) {
        SIGTERM.store(true, Ordering::SeqCst);
    }

    /// Install the flag-setting handler for SIGTERM.
    pub fn install_sigterm_flag() {
        unsafe {
            signal(SIGTERM_NO, on_sigterm);
        }
    }

    /// True once SIGTERM has been delivered.
    pub fn sigterm_received() -> bool {
        SIGTERM.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total_ns: u64) -> ExemplarTrace {
        ExemplarTrace {
            id,
            user_hash: id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            shard: 0,
            version: 1,
            kind: "observe",
            queue_depth: 0,
            enqueue_wait_ns: 0,
            score_ns: total_ns,
            respond_ns: 0,
        }
    }

    #[test]
    fn reservoir_keeps_k_slowest_and_k_recent() {
        let res = TraceReservoir::new(3, u64::MAX / 2);
        for (id, total) in [(0, 10), (1, 50), (2, 20), (3, 40), (4, 5), (5, 30)] {
            res.offer(trace(id, total), 1_000 + id);
        }
        let slowest: Vec<u64> = res.slowest().iter().map(|t| t.id).collect();
        assert_eq!(slowest, vec![1, 3, 5]); // totals 50, 40, 30
        let recent: Vec<u64> = res.recent().iter().map(|t| t.id).collect();
        assert_eq!(recent, vec![3, 4, 5]);
    }

    #[test]
    fn reservoir_admission_is_the_sampling_decision() {
        let res = TraceReservoir::new(2, u64::MAX / 2);
        assert!(res.offer(trace(0, 100), 1)); // fills
        assert!(res.offer(trace(1, 200), 2)); // fills
        assert!(!res.offer(trace(2, 50), 3)); // faster than both: rejected
        assert!(res.offer(trace(3, 150), 4)); // displaces id 0
        let ids: Vec<u64> = res.slowest().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn admission_floor_tracks_the_slowest_set() {
        let res = TraceReservoir::new(2, u64::MAX / 2);
        assert_eq!(res.admission_floor(), 0);
        res.offer(trace(0, 100), 1);
        assert_eq!(res.admission_floor(), 0); // set not yet full
        res.offer(trace(1, 200), 2);
        assert_eq!(res.admission_floor(), 100);
        res.offer(trace(2, 300), 3);
        assert_eq!(res.admission_floor(), 200);
    }

    #[test]
    fn reservoir_ages_out_stale_slow_traces() {
        let res = TraceReservoir::new(2, 100);
        res.offer(trace(0, 1_000_000), 10);
        res.offer(trace(1, 900_000), 20);
        // Far past the window: the old giants expire, a modest trace admits.
        assert!(res.offer(trace(2, 10), 10_000));
        let ids: Vec<u64> = res.slowest().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn top_slowest_merges_across_reservoirs() {
        let a = TraceReservoir::new(4, u64::MAX / 2);
        let b = TraceReservoir::new(4, u64::MAX / 2);
        a.offer(trace(0, 10), 1);
        a.offer(trace(1, 300), 2);
        b.offer(trace(2, 200), 1);
        b.offer(trace(3, 400), 2);
        let top: Vec<u64> = top_slowest([&a, &b], 3).iter().map(|t| t.id).collect();
        assert_eq!(top, vec![3, 1, 2]);
    }

    #[test]
    fn bucket_exemplars_walk_down_to_nearest_populated() {
        let ex = BucketExemplars::new();
        ex.record(1_000, 7); // bucket 9 (512..1024)
        assert_eq!(ex.exemplar_for_value(1_000), Some(7));
        // A value in a higher, empty bucket falls back downward.
        assert_eq!(ex.exemplar_for_value(1_000_000), Some(7));
        // Lower buckets see nothing.
        assert_eq!(ex.exemplar_for_value(2), None);
        assert_eq!(ex.nonzero(), vec![(512, 7)]);
    }

    #[test]
    fn bucket_exemplars_store_id_zero() {
        let ex = BucketExemplars::new();
        ex.record(100, 0); // id 0 must be distinguishable from "empty"
        assert_eq!(ex.exemplar_for_value(100), Some(0));
    }

    #[test]
    fn ring_retains_highest_seqs_after_wrap() {
        let ring = FlightRecorder::new(0, 4);
        for i in 0..10u64 {
            ring.record("tick", vec![("i", Json::U64(i))]);
        }
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn ring_is_deterministic_under_concurrent_writers() {
        let ring = Arc::new(FlightRecorder::new(0, 16));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        ring.record("tick", vec![("t", Json::U64(t)), ("i", Json::U64(i))]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        // Exactly the capacity highest sequence numbers survive.
        assert_eq!(seqs, (800 - 16..800).collect::<Vec<_>>());
    }

    #[test]
    fn bundle_roundtrip_write_validate() {
        let dir = std::env::temp_dir().join(format!("rrc-flight-test-{}", std::process::id()));
        let path = dir.join("bundle.jsonl");
        let ring = Arc::new(FlightRecorder::new(3, 8));
        for i in 0..5u64 {
            ring.record("request", vec![("trace_id", Json::U64(i))]);
        }
        let stats = write_flight_bundle(
            &path,
            &[("run".to_string(), Json::Str("unit".to_string()))],
            &[ring],
        )
        .unwrap();
        assert_eq!(stats.events, 5);
        let validated = validate_flight_bundle(&path).unwrap();
        assert_eq!(validated, stats);
        // Corruption is detected.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, bytes).unwrap();
        assert!(validate_flight_bundle(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bundle_of_empty_ring_is_valid() {
        let dir = std::env::temp_dir().join(format!("rrc-flight-empty-{}", std::process::id()));
        let path = dir.join("bundle.jsonl");
        let ring = Arc::new(FlightRecorder::new(0, 8));
        let stats = write_flight_bundle(&path, &[], &[ring]).unwrap();
        assert_eq!(stats.events, 0);
        assert!(validate_flight_bundle(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
