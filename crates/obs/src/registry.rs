//! The named-metric registry and its exposition formats.
//!
//! A [`Registry`] maps `name{label="value",…}` identities to shared
//! metric handles. Registration (`counter`/`gauge`/`histogram`) takes a
//! short write lock **once**; the returned `Arc` handle is then held by
//! the instrumented code, so the hot path — `inc`, `add`, `record` —
//! never touches the registry again and stays wait-free. Snapshots and
//! both exposition formats (Prometheus text, JSON) take a read lock only
//! to walk the name table.
//!
//! A process-wide registry is available via [`global()`]; subsystems
//! that want isolation (e.g. one registry per serving engine) create
//! their own.

use crate::json::Json;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::span::{JsonlSink, Span};
use crate::window::{WindowSpec, WindowedCounter, WindowedHistogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// A metric identity: base name plus ordered `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricId {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

impl std::fmt::Display for MetricId {
    /// Prometheus-style rendering: `name{k="v",…}` (bare name when
    /// unlabeled).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)?;
        write_labels(f, &self.labels, None)
    }
}

fn write_labels(
    f: &mut dyn std::fmt::Write,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
) -> std::fmt::Result {
    if labels.is_empty() && extra.is_none() {
        return Ok(());
    }
    f.write_char('{')?;
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            f.write_char(',')?;
        }
        first = false;
        write!(
            f,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        )?;
    }
    f.write_char('}')
}

/// A registered metric handle.
#[derive(Debug, Clone)]
pub enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    WindowedCounter(Arc<WindowedCounter>),
    WindowedHistogram(Arc<WindowedHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::WindowedCounter(_) => "windowed counter",
            Metric::WindowedHistogram(_) => "windowed histogram",
        }
    }
}

/// A point-in-time capture of one windowed counter.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedCounterValue {
    /// Sum over the live window.
    pub total: u64,
    /// `total` divided by the covered span.
    pub rate_per_sec: f64,
    /// Wall-clock span the live window covered at capture (≤ `window`).
    pub covered: Duration,
    /// The configured rolling horizon.
    pub window: Duration,
}

/// A point-in-time value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(Box<HistogramSnapshot>),
    WindowedCounter(WindowedCounterValue),
    WindowedHistogram {
        snapshot: Box<HistogramSnapshot>,
        covered: Duration,
        window: Duration,
    },
}

/// An ordered capture of every metric in a registry.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    pub entries: Vec<(MetricId, MetricValue)>,
}

impl RegistrySnapshot {
    /// Look up one captured value by identity.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let id = MetricId::new(name, labels);
        self.entries
            .iter()
            .find(|(eid, _)| *eid == id)
            .map(|(_, v)| v)
    }
}

struct RegistryInner {
    metrics: RwLock<BTreeMap<MetricId, Metric>>,
    sink: RwLock<Option<Arc<JsonlSink>>>,
}

/// See the [module docs](self). Cheap to clone (shared interior).
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = self.inner.metrics.read().expect("registry lock");
        f.debug_struct("Registry")
            .field("metrics", &metrics.len())
            .finish()
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                metrics: RwLock::new(BTreeMap::new()),
                sink: RwLock::new(None),
            }),
        }
    }

    fn register_new<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> T,
        wrap: fn(Arc<T>) -> Metric,
        unwrap: fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let id = MetricId::new(name, labels);
        // Fast path: already registered.
        {
            let metrics = self.inner.metrics.read().expect("registry lock");
            if let Some(existing) = metrics.get(&id) {
                return unwrap(existing).unwrap_or_else(|| {
                    panic!("metric {id} already registered as a {}", existing.kind())
                });
            }
        }
        let mut metrics = self.inner.metrics.write().expect("registry lock");
        let entry = metrics
            .entry(id.clone())
            .or_insert_with(|| wrap(Arc::new(make())));
        unwrap(entry)
            .unwrap_or_else(|| panic!("metric {id} already registered as a {}", entry.kind()))
    }

    fn register_with<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        wrap: fn(Arc<T>) -> Metric,
        unwrap: fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T>
    where
        T: Default,
    {
        self.register_new(name, labels, T::default, wrap, unwrap)
    }

    /// Get or create the counter `name` (no labels).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or create the counter `name{labels…}`.
    ///
    /// Panics if the identity is already registered as a different
    /// metric type.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register_with(name, labels, Metric::Counter, |m| match m {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        })
    }

    /// Get or create the gauge `name` (no labels).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get or create the gauge `name{labels…}`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register_with(name, labels, Metric::Gauge, |m| match m {
            Metric::Gauge(g) => Some(g.clone()),
            _ => None,
        })
    }

    /// Get or create the histogram `name` (no labels).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Get or create the histogram `name{labels…}`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.register_with(name, labels, Metric::Histogram, |m| match m {
            Metric::Histogram(h) => Some(h.clone()),
            _ => None,
        })
    }

    /// Get or create the windowed counter `name` (no labels). The spec
    /// of the first registration wins; later callers share that ring.
    pub fn windowed_counter(&self, name: &str, spec: WindowSpec) -> Arc<WindowedCounter> {
        self.windowed_counter_with(name, &[], spec)
    }

    /// Get or create the windowed counter `name{labels…}`.
    pub fn windowed_counter_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        spec: WindowSpec,
    ) -> Arc<WindowedCounter> {
        self.register_new(
            name,
            labels,
            || WindowedCounter::new(spec),
            Metric::WindowedCounter,
            |m| match m {
                Metric::WindowedCounter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or create the windowed histogram `name` (no labels).
    pub fn windowed_histogram(&self, name: &str, spec: WindowSpec) -> Arc<WindowedHistogram> {
        self.windowed_histogram_with(name, &[], spec)
    }

    /// Get or create the windowed histogram `name{labels…}`.
    pub fn windowed_histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        spec: WindowSpec,
    ) -> Arc<WindowedHistogram> {
        self.register_new(
            name,
            labels,
            || WindowedHistogram::new(spec),
            Metric::WindowedHistogram,
            |m| match m {
                Metric::WindowedHistogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// The histogram backing span `name`:
    /// `span_duration_ns{span="<name>"}`. Instrumented loops should hold
    /// this handle and use [`Histogram::timer`] rather than calling
    /// [`Registry::span`] per iteration.
    pub fn span_histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with("span_duration_ns", &[("span", name)])
    }

    /// Open a tracing span: an RAII guard that, on drop, records its
    /// elapsed time into [`Registry::span_histogram`] and — when a sink
    /// is attached — appends a JSONL `span` event.
    pub fn span(&self, name: &str) -> Span {
        Span::new(
            name,
            self.span_histogram(name),
            self.inner.sink.read().expect("sink lock").clone(),
        )
    }

    /// Attach (or detach, with `None`) the structured-event sink that
    /// [`Registry::span`] guards and [`Registry::event`] write to.
    pub fn set_sink(&self, sink: Option<Arc<JsonlSink>>) {
        *self.inner.sink.write().expect("sink lock") = sink;
    }

    /// The attached structured-event sink, if any.
    pub fn sink(&self) -> Option<Arc<JsonlSink>> {
        self.inner.sink.read().expect("sink lock").clone()
    }

    /// Append a structured event to the attached sink (no-op without
    /// one).
    pub fn event(&self, name: &str, fields: &[(&str, Json)]) {
        if let Some(sink) = self.sink() {
            sink.event(name, fields);
        }
    }

    /// Capture every metric, ordered by identity.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.inner.metrics.read().expect("registry lock");
        RegistrySnapshot {
            entries: metrics
                .iter()
                .map(|(id, m)| {
                    let value = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                        Metric::WindowedCounter(c) => {
                            MetricValue::WindowedCounter(WindowedCounterValue {
                                total: c.window_total(),
                                rate_per_sec: c.rate_per_sec(),
                                covered: c.covered(),
                                window: c.window(),
                            })
                        }
                        Metric::WindowedHistogram(h) => MetricValue::WindowedHistogram {
                            snapshot: Box::new(h.snapshot()),
                            covered: h.covered(),
                            window: h.window(),
                        },
                    };
                    (id.clone(), value)
                })
                .collect(),
        }
    }

    /// Prometheus text exposition (`# TYPE` headers, cumulative
    /// `_bucket{le=…}` lines for histograms, only non-empty buckets plus
    /// `+Inf`).
    pub fn prometheus_text(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();
        let mut last_header: Option<(String, &'static str)> = None;
        for (id, value) in &snapshot.entries {
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                // Windowed counters expose the rolling rate, which can
                // fall as well as rise — a gauge in Prometheus terms.
                MetricValue::Gauge(_) | MetricValue::WindowedCounter(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
                MetricValue::WindowedHistogram { .. } => "summary",
            };
            if last_header.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((id.name.as_str(), kind))
            {
                let _ = writeln!(out, "# TYPE {} {kind}", id.name);
                last_header = Some((id.name.clone(), kind));
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{id} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{id} {v}");
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets().iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        // Bucket i covers [2^i, 2^(i+1)); its Prometheus
                        // upper bound is 2^(i+1). Bucket 63's tail is
                        // covered by +Inf below.
                        if i < 63 {
                            let _ = write!(out, "{}_bucket", id.name);
                            let le = (1u128 << (i + 1)).to_string();
                            let _ = write_labels(&mut out, &id.labels, Some(("le", &le)));
                            let _ = writeln!(out, " {cumulative}");
                        }
                    }
                    let _ = write!(out, "{}_bucket", id.name);
                    let _ = write_labels(&mut out, &id.labels, Some(("le", "+Inf")));
                    let _ = writeln!(out, " {}", h.count());
                    let _ = write!(out, "{}_sum", id.name);
                    let _ = write_labels(&mut out, &id.labels, None);
                    let _ = writeln!(out, " {}", h.sum());
                    let _ = write!(out, "{}_count", id.name);
                    let _ = write_labels(&mut out, &id.labels, None);
                    let _ = writeln!(out, " {}", h.count());
                }
                MetricValue::WindowedCounter(w) => {
                    let _ = writeln!(out, "{id} {}", w.rate_per_sec);
                }
                MetricValue::WindowedHistogram { snapshot, .. } => {
                    // Pre-computed rolling quantiles are a Prometheus
                    // summary: `quantile` labels plus _sum/_count over
                    // the live window.
                    for q in [0.5, 0.95, 0.99] {
                        let Some(v) = snapshot.quantile(q) else { break };
                        let _ = write!(out, "{}", id.name);
                        let _ =
                            write_labels(&mut out, &id.labels, Some(("quantile", &q.to_string())));
                        let _ = writeln!(out, " {v}");
                    }
                    let _ = write!(out, "{}_sum", id.name);
                    let _ = write_labels(&mut out, &id.labels, None);
                    let _ = writeln!(out, " {}", snapshot.sum());
                    let _ = write!(out, "{}_count", id.name);
                    let _ = write_labels(&mut out, &id.labels, None);
                    let _ = writeln!(out, " {}", snapshot.count());
                }
            }
        }
        out
    }

    /// JSON exposition: `{"counters":…, "gauges":…, "histograms":…}`,
    /// each keyed by the full `name{labels}` identity.
    pub fn to_json(&self) -> Json {
        snapshot_to_json(&self.snapshot())
    }
}

/// JSON rendering of a [`RegistrySnapshot`] (shared by [`Registry::to_json`]
/// and [`RunReport`](crate::RunReport)).
pub fn snapshot_to_json(snapshot: &RegistrySnapshot) -> Json {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    let mut windowed_counters = Vec::new();
    let mut windowed_histograms = Vec::new();
    for (id, value) in &snapshot.entries {
        let key = id.to_string();
        match value {
            MetricValue::Counter(v) => counters.push((key, Json::U64(*v))),
            MetricValue::Gauge(v) => gauges.push((key, Json::I64(*v))),
            MetricValue::Histogram(h) => histograms.push((key, histogram_to_json(h))),
            MetricValue::WindowedCounter(w) => windowed_counters.push((
                key,
                Json::obj([
                    ("total", Json::U64(w.total)),
                    ("rate_per_sec", Json::F64(w.rate_per_sec)),
                    ("covered_ms", Json::U64(w.covered.as_millis() as u64)),
                    ("window_ms", Json::U64(w.window.as_millis() as u64)),
                ]),
            )),
            MetricValue::WindowedHistogram {
                snapshot: h,
                covered,
                window,
            } => {
                let mut fields = match histogram_to_json(h) {
                    Json::Obj(fields) => fields,
                    other => vec![("histogram".to_string(), other)],
                };
                fields.push((
                    "covered_ms".to_string(),
                    Json::U64(covered.as_millis() as u64),
                ));
                fields.push((
                    "window_ms".to_string(),
                    Json::U64(window.as_millis() as u64),
                ));
                windowed_histograms.push((key, Json::Obj(fields)));
            }
        }
    }
    Json::Obj(vec![
        ("counters".to_string(), Json::Obj(counters)),
        ("gauges".to_string(), Json::Obj(gauges)),
        ("histograms".to_string(), Json::Obj(histograms)),
        (
            "windowed_counters".to_string(),
            Json::Obj(windowed_counters),
        ),
        (
            "windowed_histograms".to_string(),
            Json::Obj(windowed_histograms),
        ),
    ])
}

/// The JSON shape of one histogram: count/sum/mean/max, the standard
/// quantiles, and the non-empty `[lower_bound, count]` buckets.
pub fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::U64(h.count())),
        ("sum", Json::U64(h.sum())),
        ("mean", Json::from(h.mean())),
        ("max", Json::from(h.max())),
        ("p50", Json::from(h.p50())),
        ("p95", Json::from(h.p95())),
        ("p99", Json::from(h.p99())),
        (
            "buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .map(|(lo, c)| Json::Arr(vec![Json::U64(lo), Json::U64(c)]))
                    .collect(),
            ),
        ),
    ])
}

/// The process-wide registry. Library code that is not handed an
/// explicit registry instruments itself here.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_identity() {
        let reg = Registry::new();
        let a = reg.counter_with("requests_total", &[("shard", "0")]);
        let b = reg.counter_with("requests_total", &[("shard", "0")]);
        let other = reg.counter_with("requests_total", &[("shard", "1")]);
        a.inc();
        b.inc();
        other.add(5);
        assert_eq!(a.get(), 2);
        assert_eq!(other.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("requests_total", &[("shard", "0")]),
            Some(&MetricValue::Counter(2))
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn prometheus_text_exposes_all_kinds() {
        let reg = Registry::new();
        reg.counter_with("events_total", &[("shard", "0")]).add(3);
        reg.counter_with("events_total", &[("shard", "1")]).add(4);
        reg.gauge("shards").set(2);
        let h = reg.histogram("latency_ns");
        h.record(1000);
        h.record(3000);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE events_total counter"), "{text}");
        assert!(text.contains("events_total{shard=\"0\"} 3"), "{text}");
        assert!(text.contains("events_total{shard=\"1\"} 4"), "{text}");
        assert!(text.contains("# TYPE shards gauge"), "{text}");
        assert!(text.contains("shards 2"), "{text}");
        assert!(text.contains("# TYPE latency_ns histogram"), "{text}");
        // 1000 lands in [512,1024) → le="1024"; 3000 in [2048,4096).
        assert!(text.contains("latency_ns_bucket{le=\"1024\"} 1"), "{text}");
        assert!(text.contains("latency_ns_bucket{le=\"4096\"} 2"), "{text}");
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("latency_ns_sum 4000"), "{text}");
        assert!(text.contains("latency_ns_count 2"), "{text}");
        // The TYPE header appears once per (name, kind), not per series.
        assert_eq!(text.matches("# TYPE events_total").count(), 1);
    }

    #[test]
    fn json_exposition_parses_and_has_quantiles() {
        let reg = Registry::new();
        reg.counter("hits_total").add(7);
        let h = reg.histogram("latency_ns");
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        let doc = crate::Json::parse(&reg.to_json().render()).unwrap();
        assert_eq!(
            doc.at("counters.hits_total").and_then(Json::as_u64),
            Some(7)
        );
        let p50 = doc
            .at("histograms.latency_ns.p50")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(p50 > 0.0);
        assert_eq!(
            doc.at("histograms.latency_ns.count").and_then(Json::as_u64),
            Some(100)
        );
    }

    #[test]
    fn windowed_metrics_expose_in_both_formats() {
        let reg = Registry::new();
        let spec = WindowSpec::default();
        let wc = reg.windowed_counter_with("events_window", &[("shard", "0")], spec);
        wc.add(30);
        let wh = reg.windowed_histogram("stage_window_ns", spec);
        wh.record(2_000);
        wh.record(6_000);

        // Same identity → same ring, regardless of a differing spec.
        let again = reg.windowed_counter_with(
            "events_window",
            &[("shard", "0")],
            WindowSpec {
                slots: 3,
                epoch: Duration::from_secs(1),
            },
        );
        again.add(12);
        assert_eq!(wc.window_total(), 42);

        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE events_window gauge"), "{text}");
        assert!(text.contains("# TYPE stage_window_ns summary"), "{text}");
        assert!(
            text.contains("stage_window_ns{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(text.contains("stage_window_ns_count 2"), "{text}");

        let doc = crate::Json::parse(&reg.to_json().render()).unwrap();
        let wc_json = doc
            .at("windowed_counters")
            .and_then(|w| w.get("events_window{shard=\"0\"}"))
            .expect("windowed counter key");
        assert_eq!(wc_json.at("total").and_then(Json::as_u64), Some(42));
        assert!(wc_json.at("rate_per_sec").unwrap().as_f64().unwrap() > 0.0);
        let wh_json = doc
            .at("windowed_histograms.stage_window_ns")
            .expect("windowed histogram key");
        assert_eq!(wh_json.at("count").and_then(Json::as_u64), Some(2));
        assert!(wh_json.at("p99").unwrap().as_f64().unwrap() > 0.0);
        assert!(wh_json.at("window_ms").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn windowed_type_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("y");
        let _ = reg.windowed_counter("y", WindowSpec::default());
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("obs_selftest_total").inc();
        assert!(global().counter("obs_selftest_total").get() >= 1);
    }
}
