//! Declarative service-level objectives with multi-window burn-rate
//! alerting.
//!
//! An [`Objective`] is a named bound on a measured value
//! (`observe_p99_ns ≤ 250_000`, `quality_ratio ≥ 0.95`, ...). The
//! [`SloEngine`] is fed one measurement per objective per *tick* — the
//! PR-5 windowed-metrics refresh cadence — and keeps a ring of recent
//! breach outcomes per objective. Two burn rates are derived with
//! **fixed denominators** (so a half-filled window cannot page):
//!
//! * short burn = breaches in the last `short_ticks` / `short_ticks`
//! * long burn  = breaches in the last `long_ticks` / `long_ticks`
//!
//! The state machine is the classic multi-window rule:
//!
//! * **Page** — both burns ≥ `page_burn`: the breach is sustained, not
//!   a blip (the long window vouches) and still happening (the short
//!   window vouches).
//! * **Warn** — short burn ≥ `warn_burn`: something just started.
//! * **Ok** — otherwise. Recovery is fast because the short window
//!   drains first.
//!
//! Because the long window fills `long_ticks / short_ticks`× slower, a
//! sustained breach always walks ok → warn → page in order.

use crate::json::Json;
use std::collections::VecDeque;

/// Direction of an objective's bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Healthy while `value <= bound` (latency, shed ratio).
    Le,
    /// Healthy while `value >= bound` (quality, availability).
    Ge,
}

impl Cmp {
    pub fn as_str(self) -> &'static str {
        match self {
            Cmp::Le => "le",
            Cmp::Ge => "ge",
        }
    }

    fn breached(self, value: f64, bound: f64) -> bool {
        match self {
            Cmp::Le => value > bound,
            Cmp::Ge => value < bound,
        }
    }
}

/// One declarative objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Metric-style name, e.g. `observe_p99_ns`.
    pub name: String,
    pub cmp: Cmp,
    pub bound: f64,
}

impl Objective {
    pub fn le(name: &str, bound: f64) -> Objective {
        Objective {
            name: name.to_string(),
            cmp: Cmp::Le,
            bound,
        }
    }

    pub fn ge(name: &str, bound: f64) -> Objective {
        Objective {
            name: name.to_string(),
            cmp: Cmp::Ge,
            bound,
        }
    }
}

/// Burn-rate window configuration, in ticks of the evaluation cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnConfig {
    pub short_ticks: usize,
    pub long_ticks: usize,
    /// Short burn at or above this warns.
    pub warn_burn: f64,
    /// Both burns at or above this page.
    pub page_burn: f64,
}

impl Default for BurnConfig {
    fn default() -> Self {
        BurnConfig {
            short_ticks: 3,
            long_ticks: 12,
            warn_burn: 0.5,
            page_burn: 0.75,
        }
    }
}

/// Alert state, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    Ok,
    Warn,
    Page,
}

impl SloState {
    pub fn as_str(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warn => "warn",
            SloState::Page => "page",
        }
    }

    /// Gauge encoding: 0 ok, 1 warn, 2 page.
    pub fn as_gauge(self) -> u64 {
        self as u64
    }
}

/// The engine's current judgment of one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    pub name: String,
    pub cmp: Cmp,
    pub bound: f64,
    pub state: SloState,
    /// Latest measured value (`None` until first data arrives).
    pub value: Option<f64>,
    pub breached_now: bool,
    pub short_burn: f64,
    pub long_burn: f64,
    /// Ticks with data seen so far.
    pub ticks: u64,
}

impl SloVerdict {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("cmp", Json::Str(self.cmp.as_str().to_string())),
            ("bound", Json::F64(self.bound)),
            ("state", Json::Str(self.state.as_str().to_string())),
            ("value", self.value.map(Json::F64).unwrap_or(Json::Null)),
            ("breached_now", Json::Bool(self.breached_now)),
            ("short_burn", Json::F64(self.short_burn)),
            ("long_burn", Json::F64(self.long_burn)),
            ("ticks", Json::U64(self.ticks)),
        ])
    }
}

struct Tracked {
    objective: Objective,
    /// Breach outcomes, newest at the back; capped at `long_ticks`.
    history: VecDeque<bool>,
    verdict: SloVerdict,
}

/// Evaluates a set of objectives tick by tick; see the [module docs](self).
pub struct SloEngine {
    config: BurnConfig,
    tracked: Vec<Tracked>,
}

impl SloEngine {
    pub fn new(objectives: Vec<Objective>, config: BurnConfig) -> SloEngine {
        let config = BurnConfig {
            short_ticks: config.short_ticks.max(1),
            long_ticks: config.long_ticks.max(config.short_ticks.max(1)),
            ..config
        };
        let tracked = objectives
            .into_iter()
            .map(|objective| Tracked {
                verdict: SloVerdict {
                    name: objective.name.clone(),
                    cmp: objective.cmp,
                    bound: objective.bound,
                    state: SloState::Ok,
                    value: None,
                    breached_now: false,
                    short_burn: 0.0,
                    long_burn: 0.0,
                    ticks: 0,
                },
                objective,
                history: VecDeque::new(),
            })
            .collect();
        SloEngine { config, tracked }
    }

    pub fn objectives(&self) -> impl Iterator<Item = &Objective> {
        self.tracked.iter().map(|t| &t.objective)
    }

    /// Feed one tick. `values[i]` is the current measurement for
    /// objective `i` (order of construction); `None` means no data this
    /// tick — the objective's history and state are left untouched
    /// (absence of evidence is not a breach). Extra values are ignored,
    /// missing trailing values are treated as `None`.
    pub fn tick(&mut self, values: &[Option<f64>]) {
        let config = self.config;
        for (i, tracked) in self.tracked.iter_mut().enumerate() {
            let value = match values.get(i).copied().flatten() {
                Some(v) if v.is_finite() => v,
                _ => continue,
            };
            let breached = tracked
                .objective
                .cmp
                .breached(value, tracked.objective.bound);
            tracked.history.push_back(breached);
            while tracked.history.len() > config.long_ticks {
                tracked.history.pop_front();
            }
            let long_breaches = tracked.history.iter().filter(|&&b| b).count();
            let short_breaches = tracked
                .history
                .iter()
                .rev()
                .take(config.short_ticks)
                .filter(|&&b| b)
                .count();
            let short_burn = short_breaches as f64 / config.short_ticks as f64;
            let long_burn = long_breaches as f64 / config.long_ticks as f64;
            let state = if short_burn >= config.page_burn && long_burn >= config.page_burn {
                SloState::Page
            } else if short_burn >= config.warn_burn {
                SloState::Warn
            } else {
                SloState::Ok
            };
            let v = &mut tracked.verdict;
            v.state = state;
            v.value = Some(value);
            v.breached_now = breached;
            v.short_burn = short_burn;
            v.long_burn = long_burn;
            v.ticks += 1;
        }
    }

    /// Current verdicts, in objective order.
    pub fn verdicts(&self) -> Vec<SloVerdict> {
        self.tracked.iter().map(|t| t.verdict.clone()).collect()
    }

    /// The most severe state across all objectives.
    pub fn worst(&self) -> SloState {
        self.tracked
            .iter()
            .map(|t| t.verdict.state)
            .max()
            .unwrap_or(SloState::Ok)
    }

    /// Machine-readable section for reports:
    /// `{"worst": "...", "objectives": [ ... ]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("worst", Json::Str(self.worst().as_str().to_string())),
            (
                "objectives",
                Json::Arr(self.tracked.iter().map(|t| t.verdict.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(cmp: Cmp) -> SloEngine {
        let objective = Objective {
            name: "o".to_string(),
            cmp,
            bound: 100.0,
        };
        SloEngine::new(vec![objective], BurnConfig::default())
    }

    fn state(e: &SloEngine) -> SloState {
        e.verdicts()[0].state
    }

    #[test]
    fn sustained_breach_walks_ok_warn_page_in_order() {
        let mut e = engine(Cmp::Le);
        let mut seen = vec![state(&e)];
        for _ in 0..12 {
            e.tick(&[Some(500.0)]);
            seen.push(state(&e));
        }
        // Strictly monotone escalation, visiting every state.
        assert!(seen.windows(2).all(|w| w[0] <= w[1]), "{seen:?}");
        assert!(seen.contains(&SloState::Ok));
        assert!(seen.contains(&SloState::Warn));
        assert_eq!(*seen.last().unwrap(), SloState::Page);
        // Warn strictly precedes Page.
        let first_warn = seen.iter().position(|s| *s == SloState::Warn).unwrap();
        let first_page = seen.iter().position(|s| *s == SloState::Page).unwrap();
        assert!(first_warn < first_page);
    }

    #[test]
    fn blip_warns_then_recovers_without_paging() {
        let mut e = engine(Cmp::Le);
        e.tick(&[Some(500.0)]);
        e.tick(&[Some(500.0)]);
        assert_eq!(state(&e), SloState::Warn); // short burn 2/3
        for _ in 0..3 {
            e.tick(&[Some(50.0)]);
        }
        assert_eq!(state(&e), SloState::Ok);
        // The long window still remembers, but cannot page alone.
        assert!(e.verdicts()[0].long_burn > 0.0);
    }

    #[test]
    fn recovery_from_page_is_fast() {
        let mut e = engine(Cmp::Le);
        for _ in 0..12 {
            e.tick(&[Some(500.0)]);
        }
        assert_eq!(state(&e), SloState::Page);
        // One healthy tick drops short burn to 2/3 < page_burn.
        e.tick(&[Some(50.0)]);
        assert_ne!(state(&e), SloState::Page);
        for _ in 0..2 {
            e.tick(&[Some(50.0)]);
        }
        assert_eq!(state(&e), SloState::Ok);
    }

    #[test]
    fn ge_objectives_breach_below_bound() {
        let mut e = engine(Cmp::Ge);
        e.tick(&[Some(150.0)]);
        assert!(!e.verdicts()[0].breached_now);
        e.tick(&[Some(50.0)]);
        assert!(e.verdicts()[0].breached_now);
    }

    #[test]
    fn missing_values_freeze_state() {
        let mut e = engine(Cmp::Le);
        for _ in 0..12 {
            e.tick(&[Some(500.0)]);
        }
        assert_eq!(state(&e), SloState::Page);
        for _ in 0..20 {
            e.tick(&[None]);
        }
        assert_eq!(state(&e), SloState::Page);
        assert_eq!(e.verdicts()[0].ticks, 12);
    }

    #[test]
    fn worst_takes_the_most_severe_objective() {
        let mut e = SloEngine::new(
            vec![Objective::le("a", 100.0), Objective::le("b", 100.0)],
            BurnConfig::default(),
        );
        for _ in 0..12 {
            e.tick(&[Some(50.0), Some(500.0)]);
        }
        assert_eq!(e.verdicts()[0].state, SloState::Ok);
        assert_eq!(e.verdicts()[1].state, SloState::Page);
        assert_eq!(e.worst(), SloState::Page);
        let json = e.to_json();
        assert_eq!(json.get("worst").and_then(Json::as_str), Some("page"));
        assert_eq!(
            json.get("objectives")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn half_filled_long_window_cannot_page() {
        // Fixed denominators: 3 breaches = short 3/3 but long 3/12.
        let mut e = engine(Cmp::Le);
        for _ in 0..3 {
            e.tick(&[Some(500.0)]);
        }
        assert_eq!(state(&e), SloState::Warn);
        assert!(e.verdicts()[0].long_burn < 0.75);
    }
}
