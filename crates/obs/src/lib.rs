//! `rrc-obs`: workspace-wide observability.
//!
//! The workspace's north star is a production-scale serving system, and
//! production systems are judged by their measurements. This crate is the
//! shared instrumentation substrate every other crate records into —
//! written from scratch against the repo's offline-build constraints
//! (std-only; no `tracing`, no `prometheus`):
//!
//! * **Metric primitives** ([`metrics`]) — wait-free [`Counter`],
//!   [`Gauge`], and the power-of-two [`Histogram`] (generalized from
//!   `rrc-serve`'s original crate-private latency histogram), plus the
//!   allocation-free [`HistogramSnapshot`] that answers
//!   p50/p95/p99/mean/max from one atomic capture.
//! * **Registry** ([`registry`]) — named, labeled metrics
//!   (`name{shard="0"}`) behind shared `Arc` handles: registration locks
//!   once, recording never locks. One process-wide instance via
//!   [`global()`]; subsystems can own private registries (each
//!   `ServeEngine` does).
//! * **Tracing spans** ([`span`]) — RAII guards that record elapsed time
//!   into `span_duration_ns{span="…"}` and, when a [`JsonlSink`] is
//!   attached, append structured JSONL event lines.
//! * **Exposition** — Prometheus text ([`Registry::prometheus_text`])
//!   and JSON ([`Registry::to_json`]) snapshots.
//! * **Windowed metrics** ([`window`]) — [`WindowedCounter`] /
//!   [`WindowedHistogram`] / [`WindowedSum`]: rings of epoch buckets
//!   giving rolling rates and rolling quantiles ("lately", not "since
//!   boot") with wait-free recording and rotate-on-access reclamation;
//!   registered alongside cumulative metrics and exposed in both
//!   formats.
//! * **Run reports** ([`report`]) — [`RunReport`] serializes a whole run
//!   (config, counters, quantiles, convergence trace) to a JSON file;
//!   `reproduce --json` and `loadgen --json` emit them and the
//!   `obs-check` binary validates them in CI.
//! * **Forensics** ([`forensics`]) — tail-sampled [`ExemplarTrace`]
//!   reservoirs (K slowest + K recent per window), per-bucket histogram
//!   exemplars, and the [`FlightRecorder`]: a lock-light ring of recent
//!   structured events dumped to a CRC-checked JSONL bundle on panic,
//!   SIGTERM, or demand.
//! * **SLOs** ([`slo`]) — declarative objectives judged tick-by-tick
//!   with multi-window burn rates ([`SloEngine`]: ok → warn → page).
//! * **Profiling** ([`profile`]) — the cooperative sampling profiler:
//!   scoped [`ProfGuard`] path frames, a ~1 kHz sampler over per-thread
//!   slots, allocation attribution via the opt-in [`CountingAlloc`]
//!   global allocator, collapsed-stack + JSON export, and the
//!   `rrc-prof` differential CLI (`top` / `diff --fail-on-grow`).
//! * **CRC-32** ([`crc32`]) — the zlib-compatible checksum shared by
//!   `rrc-store` sections and flight bundles.
//!
//! ```
//! use rrc_obs::{Registry, Json};
//!
//! let reg = Registry::new();
//! let requests = reg.counter_with("requests_total", &[("shard", "0")]);
//! let latency = reg.histogram("request_latency_ns");
//!
//! // Hot path: wait-free, no registry involvement.
//! requests.inc();
//! latency.record_duration(std::time::Duration::from_micros(42));
//! { let _guard = reg.span("rebuild.index"); /* timed work */ }
//!
//! // Cold path: exposition.
//! println!("{}", reg.prometheus_text());
//! let snapshot = latency.snapshot(); // quantiles now allocation-free
//! assert_eq!(snapshot.count(), 1);
//! assert!(snapshot.p99().is_some());
//! let _ = Json::parse(&reg.to_json().render()).unwrap();
//! ```

pub mod crc32;
pub mod forensics;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod report;
pub mod slo;
pub mod span;
pub mod window;

pub use forensics::{
    dump_flight_now, install_flight_dump, top_slowest, validate_flight_bundle, write_flight_bundle,
    BucketExemplars, ExemplarTrace, FlightBundleStats, FlightDumpTarget, FlightEvent,
    FlightRecorder, TraceReservoir,
};
pub use json::{Json, JsonError};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HistogramTimer, BUCKETS};
pub use profile::{CountingAlloc, ProfGuard, ProfileEntry, ProfileSnapshot, Profiler};
pub use registry::{
    global, histogram_to_json, snapshot_to_json, Metric, MetricId, MetricValue, Registry,
    RegistrySnapshot, WindowedCounterValue,
};
pub use report::RunReport;
pub use slo::{BurnConfig, Cmp, Objective, SloEngine, SloState, SloVerdict};
pub use span::{JsonlSink, Span};
pub use window::{WindowSpec, WindowedCounter, WindowedHistogram, WindowedSum};
