//! Machine-readable run reports.
//!
//! A [`RunReport`] serializes one whole run — the configuration it ran
//! under, named result values, registry metrics (counters, gauges,
//! histogram quantiles), and free-form sections such as a trainer's
//! convergence trace — to a single pretty-printed JSON file. The
//! `reproduce` and `loadgen` binaries emit these behind `--json <path>`,
//! seeding the repo's `BENCH_*.json` perf trajectory; CI validates them
//! with the `obs-check` binary from this crate.
//!
//! The JSON shape is flat and stable:
//!
//! ```json
//! {
//!   "report": "loadgen",
//!   "created_unix_ms": 1738000000123,
//!   "host": { "threads": 1, "os": "linux" },
//!   "config": { "shards": 4, "clients": 2 },
//!   "results": { "events_per_sec": 95805.0 },
//!   "metrics": { "counters": {}, "gauges": {}, "histograms": {} }
//! }
//! ```
//!
//! (`host` and `config` are always present; every other section is
//! whatever the producer added, rendered in insertion order. `host`
//! makes perf numbers self-describing — the committed `BENCH_*.json`
//! baselines come from a 1-thread CI container, and that caveat should
//! travel with the file, not live in tribal knowledge.)

use crate::json::Json;
use crate::registry::{snapshot_to_json, Registry};
use std::io::Write;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct RunReport {
    name: String,
    created_unix_ms: u64,
    config: Vec<(String, Json)>,
    sections: Vec<(String, Json)>,
}

impl RunReport {
    /// Start a report named `name` (e.g. `"loadgen"`), stamped with the
    /// current wall-clock time.
    pub fn new(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            created_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
                .unwrap_or(0),
            config: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Record one configuration key (builder form).
    pub fn config(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.set_config(key, value);
        self
    }

    /// Record one configuration key.
    pub fn set_config(&mut self, key: &str, value: impl Into<Json>) {
        self.config.push((key.to_string(), value.into()));
    }

    /// Add a named top-level section. Panics on a duplicate or reserved
    /// key — every section must have one unambiguous meaning.
    pub fn add_section(&mut self, key: &str, value: impl Into<Json>) {
        assert!(
            !matches!(key, "report" | "created_unix_ms" | "host" | "config"),
            "section key {key:?} is reserved"
        );
        assert!(
            self.sections.iter().all(|(k, _)| k != key),
            "duplicate report section {key:?}"
        );
        self.sections.push((key.to_string(), value.into()));
    }

    /// Capture a registry's metrics as the `"metrics"` section.
    pub fn add_metrics(&mut self, registry: &Registry) {
        self.add_section("metrics", snapshot_to_json(&registry.snapshot()));
    }

    /// The machine this process is running on, as every report's `host`
    /// block: logical thread count and OS.
    pub fn host_json() -> Json {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Json::obj([
            ("threads", Json::from(threads)),
            ("os", Json::from(std::env::consts::OS)),
        ])
    }

    /// The full report as a [`Json`] document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("report".to_string(), Json::Str(self.name.clone())),
            (
                "created_unix_ms".to_string(),
                Json::U64(self.created_unix_ms),
            ),
            ("host".to_string(), Self::host_json()),
            ("config".to_string(), Json::Obj(self.config.clone())),
        ];
        pairs.extend(self.sections.iter().cloned());
        Json::Obj(pairs)
    }

    /// Pretty-printed JSON, newline-terminated (the committed-file form).
    pub fn render(&self) -> String {
        let mut text = self.to_json().render_pretty();
        text.push('\n');
        text
    }

    /// Write the report to `path`, creating parent directories.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.render().as_bytes())?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_a_file() {
        let reg = Registry::new();
        reg.counter("events_total").add(123);
        reg.histogram("latency_ns").record(5000);
        let mut report = RunReport::new("unit")
            .config("shards", 4usize)
            .config("seed", 42u64);
        report.add_section(
            "results",
            Json::obj([("events_per_sec", Json::F64(95_805.0))]),
        );
        report.add_metrics(&reg);

        let dir = std::env::temp_dir().join(format!("rrc-obs-test-{}", std::process::id()));
        let path = dir.join("unit-report.json");
        report.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("report").and_then(Json::as_str), Some("unit"));
        assert!(doc.get("created_unix_ms").and_then(Json::as_u64).is_some());
        assert!(doc.at("host.threads").and_then(Json::as_u64).unwrap_or(0) >= 1);
        assert_eq!(
            doc.at("host.os").and_then(Json::as_str),
            Some(std::env::consts::OS)
        );
        assert_eq!(doc.at("config.shards").and_then(Json::as_u64), Some(4));
        assert_eq!(
            doc.at("results.events_per_sec").and_then(|v| v.as_f64()),
            Some(95_805.0)
        );
        assert_eq!(
            doc.at("metrics.counters.events_total")
                .and_then(Json::as_u64),
            Some(123)
        );
        assert!(doc
            .at("metrics.histograms.latency_ns.p50")
            .and_then(|v| v.as_f64())
            .is_some());
    }

    #[test]
    #[should_panic(expected = "duplicate report section")]
    fn duplicate_sections_panic() {
        let mut r = RunReport::new("x");
        r.add_section("results", Json::Null);
        r.add_section("results", Json::Null);
    }

    #[test]
    #[should_panic(expected = "is reserved")]
    fn reserved_sections_panic() {
        let mut r = RunReport::new("x");
        r.add_section("config", Json::Null);
    }
}
