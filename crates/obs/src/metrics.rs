//! Wait-free metric primitives: [`Counter`], [`Gauge`], and the
//! power-of-two [`Histogram`] (generalized from `rrc-serve`'s original
//! crate-private `LatencyHistogram`).
//!
//! Everything here is designed for hot paths: recording is a handful of
//! relaxed atomic `fetch_add`s (plus one `fetch_max` for histograms),
//! never a lock, never an allocation. Reading goes through cheap
//! plain-data snapshots ([`HistogramSnapshot`]) so repeated quantile
//! queries touch no atomics at all.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of power-of-two buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))`, except bucket 63 which absorbs the tail.
pub const BUCKETS: usize = 64;

/// A monotonically increasing event counter. `inc`/`add` are single
/// relaxed `fetch_add`s — wait-free from any thread.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, shard count, uptime).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket, wait-free histogram over `u64` values.
///
/// Power-of-two buckets trade resolution (quantiles are exact only to
/// within a factor of two; reported values use the geometric mean of the
/// winning bucket, clamped to the observed maximum) for a `record` that
/// is two relaxed `fetch_add`s and one `fetch_max` with no allocation —
/// the right trade for per-request and per-step instrumentation. Values
/// are unitless; latency users record nanoseconds via
/// [`Histogram::record_duration`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of recorded values (wrapping; overflows after ~584 years of
    /// summed nanoseconds).
    sum: AtomicU64,
    /// Largest recorded value.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// `floor(log2(max(v, 1)))`: the bucket holding `v`.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    (63 - value.max(1).leading_zeros()) as usize
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Wait-free; callable from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record an elapsed time as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded. One pass over the buckets; prefer
    /// [`Histogram::snapshot`] when quantiles are also needed.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Capture the bucket counts once; every quantile/mean/max query on
    /// the returned [`HistogramSnapshot`] is then atomics- and
    /// allocation-free. Concurrent `record`s may straddle the capture —
    /// the snapshot is consistent enough for monitoring, never torn
    /// per-bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Start a timer that records its elapsed nanoseconds here on drop.
    pub fn timer(&self) -> HistogramTimer<'_> {
        HistogramTimer {
            histogram: self,
            start: Instant::now(),
        }
    }
}

/// RAII timer: records elapsed nanoseconds into its histogram on drop.
#[derive(Debug)]
pub struct HistogramTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl HistogramTimer<'_> {
    /// Time elapsed so far (the drop will record the final value).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stop explicitly and return the recorded duration.
    pub fn stop(self) -> Duration {
        let elapsed = self.start.elapsed();
        // Drop records; just return what it will see (re-measured time
        // differs by nanoseconds at most).
        elapsed
    }
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}

/// Plain-data capture of a [`Histogram`]: all queries are pure
/// arithmetic over the captured buckets — no atomic loads, no
/// allocation, no matter how many quantiles are asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Build a snapshot from raw parts — the merge point for windowed
    /// histograms, which sum several epoch buckets into one snapshot.
    /// `count` is derived from the buckets so the two cannot disagree.
    pub fn from_parts(buckets: [u64; BUCKETS], sum: u64, max: u64) -> Self {
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Samples captured.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of captured values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest captured value, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean captured value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The value at quantile `q ∈ [0, 1]`, or `None` when empty.
    ///
    /// Returns the geometric midpoint of the bucket containing the
    /// quantile (within ×√2 of the true value), clamped to the observed
    /// maximum so the tail never reads above a real sample. The top rank
    /// (`q = 1.0`, and every `q` on a single-sample histogram) returns
    /// the exact observed maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric mean of [2^i, 2^(i+1)) = 2^i · √2.
                let mid = (1u128 << i) as f64 * std::f64::consts::SQRT_2;
                return Some((mid.min(u64::MAX as f64) as u64).min(self.max));
            }
        }
        unreachable!("rank is bounded by the captured total")
    }

    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// [`HistogramSnapshot::quantile`] as a [`Duration`] (for
    /// nanosecond-valued histograms).
    pub fn quantile_duration(&self, q: f64) -> Option<Duration> {
        self.quantile(q).map(Duration::from_nanos)
    }

    /// Raw bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// `(lower_bound, count)` for each non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn empty_histogram_has_no_quantiles_mean_or_max() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), None);
        assert_eq!(snap.max(), None);
    }

    #[test]
    fn quantile_bounds_q0_and_q1() {
        let h = Histogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        // q=0 is the first sample's bucket; q=1 is clamped to max.
        assert_eq!(snap.quantile(0.0), Some(1));
        assert_eq!(snap.quantile(1.0), Some(10_000));
        assert!(snap.p50().unwrap() >= snap.quantile(0.0).unwrap());
        assert!(snap.p99().unwrap() <= snap.quantile(1.0).unwrap());
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_out_of_range_panics() {
        let _ = Histogram::new().snapshot().quantile(1.5);
    }

    #[test]
    fn single_sample_every_quantile_is_that_sample() {
        let h = Histogram::new();
        h.record(777);
        let snap = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), Some(777), "q={q}");
        }
        assert_eq!(snap.mean(), Some(777.0));
        assert_eq!(snap.max(), Some(777));
    }

    #[test]
    fn zero_valued_samples_land_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.buckets()[0], 1);
        // Geometric midpoint √2 clamps to the observed max of 0.
        assert_eq!(snap.quantile(0.5), Some(0));
    }

    #[test]
    fn bucket_63_absorbs_the_tail_without_overflow() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        h.record((1u64 << 63) + 12345);
        let snap = h.snapshot();
        assert_eq!(snap.buckets()[63], 3);
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.max(), Some(u64::MAX));
        // Mid-rank answers stay inside bucket 63 without overflowing…
        let p50 = snap.quantile(0.5).unwrap();
        assert!(p50 >= 1u64 << 63, "p50={p50}");
        // …and the top rank is the exact observed maximum.
        assert_eq!(snap.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn quantiles_bracket_true_values_within_a_bucket() {
        let h = Histogram::new();
        for micros in 1..=1000u64 {
            h.record_duration(Duration::from_micros(micros));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        let p50 = snap.quantile_duration(0.5).unwrap();
        // True median is 500µs; a power-of-two bucket answer must land in
        // [256µs, 1024µs], and the geometric-mid rule within ×√2.
        assert!(p50 >= Duration::from_micros(256), "p50={p50:?}");
        assert!(p50 <= Duration::from_micros(1024), "p50={p50:?}");
        let p99 = snap.quantile_duration(0.99).unwrap();
        assert!(p99 >= p50);
        let mean = snap.mean().unwrap();
        assert!((mean - 500_500.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn timer_records_on_drop() {
        let h = Histogram::new();
        {
            let t = h.timer();
            std::hint::black_box(());
            assert!(t.elapsed() < Duration::from_secs(1));
        }
        assert_eq!(h.count(), 1);
        let stopped = {
            let t = h.timer();
            t.stop()
        };
        assert_eq!(h.count(), 2);
        assert!(stopped < Duration::from_secs(1));
    }

    #[test]
    fn concurrent_record_while_snapshotting_stays_consistent() {
        let h = Arc::new(Histogram::new());
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 20_000;
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        h.record((w as u64 * PER_WRITER + i) % 1_000_000 + 1);
                    }
                })
            })
            .collect();
        // Snapshot continuously while writers hammer the histogram:
        // counts must be monotone and every snapshot internally sane.
        let mut last_count = 0u64;
        loop {
            let snap = h.snapshot();
            assert!(
                snap.count() >= last_count,
                "count went backwards: {} -> {}",
                last_count,
                snap.count()
            );
            last_count = snap.count();
            if snap.count() > 0 {
                let p50 = snap.quantile(0.5).unwrap();
                assert!(p50 <= snap.max.max(1), "p50 beyond max");
            }
            if writers.iter().all(|t| t.is_finished()) {
                break;
            }
        }
        for t in writers {
            t.join().unwrap();
        }
        let end = h.snapshot();
        assert_eq!(end.count(), (WRITERS as u64) * PER_WRITER);
        assert!(end.mean().unwrap() > 0.0);
        assert!(end.max().unwrap() <= 1_000_000);
    }
}
