//! Lightweight tracing spans and the thread-safe JSONL event sink.
//!
//! A [`Span`] is an RAII guard: on drop it records its elapsed time into
//! the histogram `span_duration_ns{span="<name>"}` of the registry that
//! opened it, and — when that registry has a [`JsonlSink`] attached —
//! appends one structured `span` event line. Opening and closing a span
//! is two `Instant` reads plus one wait-free histogram record; the sink,
//! when present, takes a short mutex only on the emitting thread.

use crate::json::Json;
use crate::metrics::Histogram;
use std::fmt::Write as _;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A thread-safe, line-buffered sink of structured JSONL events.
///
/// Every line is a self-contained JSON object:
///
/// ```json
/// {"seq":12,"ts_unix_ms":1738000000123,"event":"span","span":"tsppr.train.check","elapsed_ns":48211}
/// ```
///
/// `seq` is a process-local monotonic sequence number so interleaved
/// writers can be totally ordered after the fact.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    seq: AtomicU64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl JsonlSink {
    /// Sink into any writer (buffer it yourself if it is unbuffered).
    pub fn to_writer(out: Box<dyn Write + Send>) -> Arc<JsonlSink> {
        Arc::new(JsonlSink {
            out: Mutex::new(out),
            seq: AtomicU64::new(0),
        })
    }

    /// Sink into a (truncated) file, buffered.
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Arc<JsonlSink>> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(std::io::BufWriter::new(file))))
    }

    /// Sink into stderr (line-buffered by the OS).
    pub fn stderr() -> Arc<JsonlSink> {
        Self::to_writer(Box::new(std::io::stderr()))
    }

    /// Append one event line. `fields` follow the standard `seq` /
    /// `ts_unix_ms` / `event` prefix.
    pub fn event(&self, event: &str, fields: &[(&str, Json)]) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ts_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let mut line = String::with_capacity(96);
        let _ = write!(line, "{{\"seq\":{seq},\"ts_unix_ms\":{ts_unix_ms}");
        let _ = write!(line, ",\"event\":{}", Json::Str(event.to_string()).render());
        for (key, value) in fields {
            let _ = write!(
                line,
                ",{}:{}",
                Json::Str(key.to_string()).render(),
                value.render()
            );
        }
        line.push_str("}\n");
        let mut out = self.out.lock().expect("sink lock");
        let _ = out.write_all(line.as_bytes());
    }

    /// Flush the underlying writer.
    pub fn flush(&self) {
        let _ = self.out.lock().expect("sink lock").flush();
    }

    /// Events emitted so far.
    pub fn events_written(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

/// An open tracing span; see the [module docs](self). Create via
/// [`Registry::span`](crate::Registry::span).
#[derive(Debug)]
pub struct Span {
    name: String,
    histogram: Arc<Histogram>,
    sink: Option<Arc<JsonlSink>>,
    start: Instant,
}

impl Span {
    pub(crate) fn new(name: &str, histogram: Arc<Histogram>, sink: Option<Arc<JsonlSink>>) -> Span {
        Span {
            name: name.to_string(),
            histogram,
            sink,
            start: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Close explicitly and return the elapsed time (drop does the same
    /// recording; this form surfaces the measurement).
    pub fn close(self) -> Duration {
        let elapsed = self.start.elapsed();
        drop(self);
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.histogram.record_duration(elapsed);
        if let Some(sink) = &self.sink {
            let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
            sink.event(
                "span",
                &[
                    ("span", Json::Str(self.name.clone())),
                    ("elapsed_ns", Json::U64(nanos)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    /// A Write that appends into a shared Vec for inspection.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn span_records_into_named_histogram() {
        let reg = Registry::new();
        {
            let span = reg.span("unit.work");
            assert_eq!(span.name(), "unit.work");
        }
        let d = reg.span("unit.work").close();
        assert!(d < Duration::from_secs(1));
        let snap = reg.span_histogram("unit.work").snapshot();
        assert_eq!(snap.count(), 2);
    }

    #[test]
    fn spans_emit_jsonl_events_when_sink_attached() {
        let buf = SharedBuf::default();
        let reg = Registry::new();
        reg.set_sink(Some(JsonlSink::to_writer(Box::new(buf.clone()))));
        drop(reg.span("traced.step"));
        reg.event("custom", &[("answer", Json::U64(42))]);
        reg.sink().unwrap().flush();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        let span_ev = Json::parse(lines[0]).unwrap();
        assert_eq!(span_ev.get("event").and_then(Json::as_str), Some("span"));
        assert_eq!(
            span_ev.get("span").and_then(Json::as_str),
            Some("traced.step")
        );
        assert!(span_ev.get("elapsed_ns").and_then(Json::as_u64).is_some());
        assert_eq!(span_ev.get("seq").and_then(Json::as_u64), Some(0));
        let custom = Json::parse(lines[1]).unwrap();
        assert_eq!(custom.get("event").and_then(Json::as_str), Some("custom"));
        assert_eq!(custom.get("answer").and_then(Json::as_u64), Some(42));
        assert_eq!(custom.get("seq").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn sink_is_safe_from_many_threads() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::to_writer(Box::new(buf.clone()));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        sink.event("tick", &[("thread", Json::U64(t)), ("i", Json::U64(i))]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        sink.flush();
        assert_eq!(sink.events_written(), 400);
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let mut seqs = Vec::new();
        for line in text.lines() {
            let ev = Json::parse(line).expect("every line is valid JSON");
            seqs.push(ev.get("seq").and_then(Json::as_u64).unwrap());
        }
        seqs.sort_unstable();
        assert_eq!(seqs, (0..400).collect::<Vec<_>>());
    }
}
