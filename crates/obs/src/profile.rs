//! Always-on cooperative sampling profiler.
//!
//! Answers *why slow* where the metrics registry answers *how slow*:
//! scoped [`ProfGuard`]s maintain a per-thread **path** (e.g.
//! `serve/shard/score`), a dedicated sampler thread walks every
//! registered thread's current path at a configurable rate (~1 kHz), and
//! a wrapping [`CountingAlloc`] global allocator attributes allocation
//! counts/bytes to the innermost frame of the allocating thread. The
//! accumulated samples export as collapsed-stack text
//! (`flamegraph.pl`/inferno-compatible) and as a JSON `profile` report
//! section with per-path self/total shares — the inputs `rrc-prof top`,
//! `rrc-prof diff`, and `obs-check --profile-share` consume.
//!
//! # Design: no torn paths, near-zero cost when off
//!
//! The classic hazard of sampling a mutator's stack is reading it while
//! it changes. This profiler never stores a stack at all: paths are
//! interned into a global **node tree** (`node = (parent, segment)`), and
//! each thread's entire state is a single `AtomicU32` holding its current
//! node id. [`ProfGuard::enter`] interns the child node (one thread-local
//! cache hit on the hot path) and stores the id; dropping the guard
//! restores the id captured at entry. The sampler reads one atomic per
//! thread per tick — any value it observes is a complete, valid path by
//! construction. Allocation attribution reads a plain
//! const-initialised thread-local `Cell<u32>` mirror, so the allocator
//! hook never locks, never allocates, and never touches lazy TLS.
//!
//! When profiling is disabled (the default), `ProfGuard::enter` is a
//! single relaxed atomic load and the allocator hook adds one relaxed
//! load over the system allocator — cheap enough to leave compiled into
//! every hot path ("always-on": enabling it is a runtime switch, not a
//! rebuild).
//!
//! ```
//! use rrc_obs::profile::{self, ProfGuard, Profiler};
//!
//! let profiler = Profiler::start(1000.0); // enables + samples at ~1 kHz
//! {
//!     let _outer = ProfGuard::enter_path(&["serve", "shard"]);
//!     let _inner = ProfGuard::enter("score");
//!     // ... hot work: samples land on serve/shard/score ...
//! }
//! let snap = profiler.stop(); // disables, joins, snapshots
//! println!("{}", snap.collapsed());
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Hard cap on distinct path nodes. Paths come from a fixed set of
/// instrumentation sites, so this is generous; on overflow new paths
/// collapse into the `(overflow)` node instead of failing.
pub const MAX_NODES: usize = 1024;

/// Node id of the implicit root: a thread outside every guard (idle, or
/// blocked between requests) reads as root and is excluded from work
/// shares.
const ROOT: u32 = 0;
/// Where paths beyond [`MAX_NODES`] are accounted.
const OVERFLOW: u32 = 1;

/// Global on/off switch. Guards, the sampler, and the allocator hook all
/// check this with one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Sampler ticks since the last [`reset`].
static TICKS: AtomicU64 = AtomicU64::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
/// Per-node sample counts (index = node id).
static SAMPLES: [AtomicU64; MAX_NODES] = [ZERO; MAX_NODES];
/// Per-node allocation counts.
static ALLOC_COUNT: [AtomicU64; MAX_NODES] = [ZERO; MAX_NODES];
/// Per-node allocated bytes.
static ALLOC_BYTES: [AtomicU64; MAX_NODES] = [ZERO; MAX_NODES];

/// One profiled thread, shared between the mutator (writes `cur`) and
/// the sampler (reads `cur`). A single u32 is the whole shared state —
/// the reason a sample can never observe a torn path.
struct ThreadSlot {
    cur: AtomicU32,
    active: AtomicBool,
}

/// The node tree: `nodes[id] = (parent, segment)`. Guarded by an RwLock
/// that the hot path avoids entirely via a thread-local intern cache.
struct NodeTable {
    nodes: Vec<(u32, &'static str)>,
    index: HashMap<(u32, &'static str), u32>,
    /// Dedup + leak store for dynamically named segments
    /// ([`ProfGuard::enter_owned`]); bounded by the caller's name
    /// alphabet.
    names: HashMap<String, &'static str>,
}

fn table() -> &'static RwLock<NodeTable> {
    static TABLE: OnceLock<RwLock<NodeTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut index = HashMap::new();
        index.insert((ROOT, "(overflow)"), OVERFLOW);
        RwLock::new(NodeTable {
            nodes: vec![(ROOT, "(root)"), (ROOT, "(overflow)")],
            index,
            names: HashMap::new(),
        })
    })
}

fn slots() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Deactivates this thread's slot when the thread exits, so the sampler
/// stops attributing ticks to it.
struct SlotHandle(Arc<ThreadSlot>);

impl Drop for SlotHandle {
    fn drop(&mut self) {
        self.0.cur.store(ROOT, Ordering::Relaxed);
        self.0.active.store(false, Ordering::Relaxed);
    }
}

/// Entries in the per-thread direct-mapped intern cache. The key space
/// is the fixed set of instrumentation sites (a few dozen), so
/// collisions are rare and merely cost a re-intern through the table.
const FAST_CACHE: usize = 128;

thread_local! {
    /// Const-initialised mirror of the current node, safe to read from
    /// the allocator hook (no lazy init, no destructor).
    static CUR: Cell<u32> = const { Cell::new(ROOT) };
    /// This thread's sampler-visible slot, registered on first guard.
    static SLOT: RefCell<Option<SlotHandle>> = const { RefCell::new(None) };
    /// Hot-path intern cache, direct-mapped on `(key address, parent)`:
    /// entry = `(ptr, len, parent, node)`. Keys are the *addresses* of
    /// `&'static` segment strings (or of whole `&'static [&str]` chains
    /// for [`ProfGuard::enter_path`]), so a lookup is one index + two
    /// compares — no hashing, no borrow-flag traffic, no allocation.
    static FAST: [Cell<(usize, u32, u32, u32)>; FAST_CACHE] =
        const { [const { Cell::new((0, 0, 0, 0)) }; FAST_CACHE] };
    /// Raw pointer to this thread's registered slot, so the per-guard
    /// publish is one atomic store instead of a `RefCell` borrow. The
    /// global registry holds an `Arc` to every slot for the process
    /// lifetime, so the pointer never dangles — at worst (after this
    /// thread's TLS destructors ran) it stores into a slot the sampler
    /// already ignores.
    static SLOT_PTR: Cell<*const ThreadSlot> = const { Cell::new(std::ptr::null()) };
    /// Per-thread allocation batch `(node, count, bytes)`: the allocator
    /// hook accumulates here with two plain `Cell` writes and flushes to
    /// the global atomics only when the thread's node changes (guard
    /// enter/drop, or an allocation under a different frame). At a few
    /// million allocations/second the avoided atomic RMWs are the
    /// difference between "free" and a visible tax on the serve path.
    static ALLOC_PENDING: Cell<(u32, u64, u64)> = const { Cell::new((ROOT, 0, 0)) };
}

#[inline]
fn flush_alloc_batch(node: u32, count: u64, bytes: u64) {
    if count > 0 {
        ALLOC_COUNT[node as usize].fetch_add(count, Ordering::Relaxed);
        ALLOC_BYTES[node as usize].fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Flush the *calling thread's* batched allocation stats. [`snapshot`]
/// and [`reset`] call this so same-thread reads are exact; other
/// threads' in-flight batches land at their next frame change, so a
/// cross-thread snapshot can trail by one batch per thread.
fn flush_pending_allocs() {
    let _ = ALLOC_PENDING.try_with(|p| {
        let (node, count, bytes) = p.replace((ROOT, 0, 0));
        flush_alloc_batch(node, count, bytes);
    });
}

#[inline]
fn cache_index(ptr: usize, parent: u32) -> usize {
    // Static strings are ≥16-byte-ish apart rarely, but the low bits of
    // their addresses are well mixed once the alignment bits are shifted
    // out; xor-ing the parent separates reuses of one segment at
    // different tree positions.
    ((ptr >> 4) ^ parent as usize) & (FAST_CACHE - 1)
}

#[inline]
fn cache_lookup(ptr: usize, len: u32, parent: u32) -> Option<u32> {
    FAST.try_with(|c| {
        let (p, l, par, node) = c[cache_index(ptr, parent)].get();
        (p == ptr && l == len && par == parent).then_some(node)
    })
    .ok()
    .flatten()
}

#[inline]
fn cache_store(ptr: usize, len: u32, parent: u32, node: u32) {
    let _ = FAST.try_with(|c| c[cache_index(ptr, parent)].set((ptr, len, parent, node)));
}

/// Publish `node` as this thread's current path position.
#[inline]
fn set_current(node: u32) {
    // Leaving a frame flushes its allocation batch, keeping attribution
    // exact at frame boundaries.
    let _ = ALLOC_PENDING.try_with(|p| {
        let (pnode, count, bytes) = p.get();
        if pnode != node && count > 0 {
            flush_alloc_batch(pnode, count, bytes);
            p.set((node, 0, 0));
        }
    });
    let _ = CUR.try_with(|c| c.set(node));
    let ptr = SLOT_PTR.try_with(Cell::get).unwrap_or(std::ptr::null());
    if !ptr.is_null() {
        // Safety: slots are owned by the global registry (an Arc clone
        // pushed at registration) and never removed, so a published
        // pointer stays valid for the rest of the process.
        unsafe { (*ptr).cur.store(node, Ordering::Relaxed) };
        return;
    }
    register_slot(node);
}

/// First guard on this thread: create and register its sampler slot,
/// then publish the fast pointer for every later [`set_current`].
#[cold]
fn register_slot(node: u32) {
    let _ = SLOT.try_with(|s| {
        let mut s = s.borrow_mut();
        let handle = s.get_or_insert_with(|| {
            let slot = Arc::new(ThreadSlot {
                cur: AtomicU32::new(ROOT),
                active: AtomicBool::new(true),
            });
            slots().lock().expect("slot registry").push(slot.clone());
            SlotHandle(slot)
        });
        handle.0.cur.store(node, Ordering::Relaxed);
        let _ = SLOT_PTR.try_with(|p| p.set(Arc::as_ptr(&handle.0)));
    });
}

fn current() -> u32 {
    CUR.try_with(Cell::get).unwrap_or(ROOT)
}

/// Intern `segment` as a child of `parent`, hitting the thread-local
/// cache first so steady-state guards never touch the global lock.
#[inline]
fn intern(parent: u32, segment: &'static str) -> u32 {
    let ptr = segment.as_ptr() as usize;
    let len = segment.len() as u32;
    if let Some(id) = cache_lookup(ptr, len, parent) {
        return id;
    }
    let id = intern_global(parent, segment);
    cache_store(ptr, len, parent, id);
    id
}

fn intern_global(parent: u32, segment: &'static str) -> u32 {
    debug_assert!(
        !segment.is_empty() && !segment.contains(['/', ';', ' ', '\n']),
        "profile segment {segment:?} must be a single clean path component"
    );
    {
        let t = table().read().expect("profile node table");
        if let Some(&id) = t.index.get(&(parent, segment)) {
            return id;
        }
    }
    let mut t = table().write().expect("profile node table");
    if let Some(&id) = t.index.get(&(parent, segment)) {
        return id;
    }
    if t.nodes.len() >= MAX_NODES {
        return OVERFLOW;
    }
    let id = t.nodes.len() as u32;
    t.nodes.push((parent, segment));
    t.index.insert((parent, segment), id);
    id
}

/// Intern a dynamic segment name, leaking each unique string once.
fn intern_name(name: &str) -> &'static str {
    let mut t = table().write().expect("profile node table");
    if let Some(&s) = t.names.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    t.names.insert(name.to_string(), leaked);
    leaked
}

/// Turn profiling on. Guards start maintaining paths and the allocator
/// hook starts attributing; typically called via [`Profiler::start`].
pub fn enable() {
    let mut epoch = epoch_lock().lock().expect("profile epoch");
    *epoch = Some(Instant::now());
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn profiling off. Counters keep their values until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Is profiling currently enabled?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch_lock() -> &'static Mutex<Option<Instant>> {
    static EPOCH: OnceLock<Mutex<Option<Instant>>> = OnceLock::new();
    EPOCH.get_or_init(|| Mutex::new(None))
}

/// Zero every sample/allocation counter and restart the measurement
/// epoch. The node tree survives (ids stay stable for live guards).
pub fn reset() {
    flush_pending_allocs();
    for i in 0..MAX_NODES {
        SAMPLES[i].store(0, Ordering::Relaxed);
        ALLOC_COUNT[i].store(0, Ordering::Relaxed);
        ALLOC_BYTES[i].store(0, Ordering::Relaxed);
    }
    TICKS.store(0, Ordering::Relaxed);
    *epoch_lock().lock().expect("profile epoch") = Some(Instant::now());
}

/// RAII frame marker: entering pushes a path segment for the current
/// thread, dropping restores whatever the path was at entry (so early or
/// out-of-order drops degrade to "rewind to my entry point" instead of
/// corrupting the path).
#[must_use = "a ProfGuard marks a frame for its whole lifetime"]
pub struct ProfGuard {
    prev: u32,
    armed: bool,
}

impl ProfGuard {
    /// Push one segment (e.g. `"score"`) under the thread's current
    /// path. Near-free (one relaxed load) while profiling is disabled.
    #[inline]
    pub fn enter(segment: &'static str) -> ProfGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return ProfGuard {
                prev: ROOT,
                armed: false,
            };
        }
        Self::enter_always(segment)
    }

    /// Push a whole path (e.g. `&["serve", "shard"]`) as one guard;
    /// dropping restores the entry point in one step.
    #[inline]
    pub fn enter_path(path: &[&'static str]) -> ProfGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return ProfGuard {
                prev: ROOT,
                armed: false,
            };
        }
        let prev = current();
        // Whole-chain cache hit: the promoted `&'static [&str]` literal
        // has a stable address, so `(slice ptr, prev)` keys the chain's
        // final node directly (slices and strings are distinct objects,
        // so their addresses can't collide in the shared cache).
        let ptr = path.as_ptr() as usize;
        let len = path.len() as u32;
        let node = match cache_lookup(ptr, len, prev) {
            Some(node) => node,
            None => {
                let mut node = prev;
                for segment in path {
                    node = intern(node, segment);
                }
                cache_store(ptr, len, prev, node);
                node
            }
        };
        set_current(node);
        ProfGuard { prev, armed: true }
    }

    /// Like [`enter`](Self::enter) but for a dynamically built segment
    /// name (interned and leaked once per unique string — use bounded
    /// alphabets).
    pub fn enter_owned(segment: &str) -> ProfGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return ProfGuard {
                prev: ROOT,
                armed: false,
            };
        }
        let name = intern_name(segment);
        Self::enter_always(name)
    }

    fn enter_always(segment: &'static str) -> ProfGuard {
        let prev = current();
        let node = intern(prev, segment);
        set_current(node);
        ProfGuard { prev, armed: true }
    }

    /// The node id this guard's frame occupies (for tests).
    pub fn node(&self) -> u32 {
        if self.armed {
            current()
        } else {
            ROOT
        }
    }
}

impl Drop for ProfGuard {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            set_current(self.prev);
        }
    }
}

/// The current thread's path as `/`-joined text (for tests and
/// diagnostics); `None` when at root.
pub fn current_path() -> Option<String> {
    let node = current();
    if node == ROOT {
        return None;
    }
    Some(path_of(node, &table().read().expect("profile node table")))
}

fn path_of(mut node: u32, t: &NodeTable) -> String {
    let mut segments: Vec<&str> = Vec::new();
    while node != ROOT {
        let (parent, name) = t.nodes[node as usize];
        segments.push(name);
        node = parent;
    }
    segments.reverse();
    segments.join("/")
}

/// Record `n` synthetic samples against `path` — deterministic input for
/// golden fixtures and `rrc-prof` self-tests, bypassing the timer.
pub fn record_synthetic(path: &[&str], n: u64) {
    let mut node = ROOT;
    for segment in path {
        node = intern_global(node, intern_name(segment));
    }
    SAMPLES[node as usize].fetch_add(n, Ordering::Relaxed);
}

/// Walk every registered thread slot once, accumulating one sample per
/// active thread. Public so tests can drive deterministic tick counts.
pub fn sample_once() {
    let slots = slots().lock().expect("slot registry");
    for slot in slots.iter() {
        if slot.active.load(Ordering::Relaxed) {
            let node = slot.cur.load(Ordering::Relaxed);
            SAMPLES[node as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
    TICKS.fetch_add(1, Ordering::Relaxed);
}

/// Handle to the background sampler thread; [`Profiler::start`] enables
/// profiling, [`Profiler::stop`] disables it and returns the snapshot.
pub struct Profiler {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    hz: f64,
}

impl Profiler {
    /// Enable profiling and spawn the sampler at `hz` walks per second
    /// (clamped to `[1, 100_000]`).
    pub fn start(hz: f64) -> Profiler {
        let hz = hz.clamp(1.0, 100_000.0);
        enable();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let period = Duration::from_secs_f64(1.0 / hz);
        let thread = std::thread::Builder::new()
            .name("rrc-prof-sampler".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    sample_once();
                    std::thread::sleep(period);
                }
            })
            .expect("spawn profile sampler");
        Profiler {
            stop,
            thread: Some(thread),
            hz,
        }
    }

    /// The configured sampling rate.
    pub fn hz(&self) -> f64 {
        self.hz
    }

    /// Stop sampling, disable profiling, and snapshot what was measured.
    pub fn stop(mut self) -> ProfileSnapshot {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        disable();
        snapshot()
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One profiled path with its accounting.
#[derive(Debug, Clone)]
pub struct ProfileEntry {
    /// `/`-joined path, e.g. `serve/shard/score`.
    pub path: String,
    /// Samples landing exactly on this node.
    pub samples: u64,
    /// Samples on this node or any descendant.
    pub total_samples: u64,
    /// `samples / work_samples` (denominator excludes idle/root).
    pub self_share: f64,
    /// `total_samples / work_samples`.
    pub total_share: f64,
    /// Allocations attributed to this exact frame.
    pub alloc_count: u64,
    /// Bytes attributed to this exact frame.
    pub alloc_bytes: u64,
}

/// Everything the profiler measured since the last [`reset`]/enable.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// Sampler walks performed.
    pub ticks: u64,
    /// Samples that landed inside some guard (the share denominator).
    pub work_samples: u64,
    /// Samples on threads outside every guard (idle or blocked).
    pub idle_samples: u64,
    /// Wall-clock since enable/reset.
    pub duration: Duration,
    /// Per-path accounting, sorted by descending self samples.
    pub entries: Vec<ProfileEntry>,
    /// Allocations that happened outside every guard.
    pub unattributed_alloc_count: u64,
    /// Bytes allocated outside every guard.
    pub unattributed_alloc_bytes: u64,
}

/// Snapshot the current counters (callable while sampling is live — the
/// report thread does).
pub fn snapshot() -> ProfileSnapshot {
    flush_pending_allocs();
    let t = table().read().expect("profile node table");
    let n = t.nodes.len();
    let samples: Vec<u64> = (0..n).map(|i| SAMPLES[i].load(Ordering::Relaxed)).collect();
    let alloc_count: Vec<u64> = (0..n)
        .map(|i| ALLOC_COUNT[i].load(Ordering::Relaxed))
        .collect();
    let alloc_bytes: Vec<u64> = (0..n)
        .map(|i| ALLOC_BYTES[i].load(Ordering::Relaxed))
        .collect();
    // total[i] = samples on i plus every descendant: accumulate each
    // node's self count up its parent chain.
    let mut total = samples.clone();
    for i in (1..n).rev() {
        // Children always have larger ids than their parents (nodes are
        // appended under an existing parent), so a reverse scan adds
        // grandchildren before children.
        let (parent, _) = t.nodes[i];
        let add = total[i];
        if add > 0 && parent as usize != i {
            total[parent as usize] += add;
        }
    }
    let idle_samples = samples[ROOT as usize];
    let work_samples: u64 = total[ROOT as usize] - idle_samples;
    let denom = work_samples.max(1) as f64;
    let mut entries: Vec<ProfileEntry> = (1..n)
        .filter(|&i| samples[i] > 0 || total[i] > 0 || alloc_count[i] > 0)
        .map(|i| ProfileEntry {
            path: path_of(i as u32, &t),
            samples: samples[i],
            total_samples: total[i],
            self_share: samples[i] as f64 / denom,
            total_share: total[i] as f64 / denom,
            alloc_count: alloc_count[i],
            alloc_bytes: alloc_bytes[i],
        })
        .collect();
    entries.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.path.cmp(&b.path)));
    let duration = epoch_lock()
        .lock()
        .expect("profile epoch")
        .map(|e| e.elapsed())
        .unwrap_or_default();
    ProfileSnapshot {
        ticks: TICKS.load(Ordering::Relaxed),
        work_samples,
        idle_samples,
        duration,
        entries,
        unattributed_alloc_count: alloc_count[ROOT as usize],
        unattributed_alloc_bytes: alloc_bytes[ROOT as usize],
    }
}

impl ProfileSnapshot {
    /// Collapsed-stack text: one `a;b;c N` line per path with self
    /// samples, sorted by path — the input format of `flamegraph.pl`,
    /// inferno, and `rrc-prof`.
    pub fn collapsed(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .filter(|e| e.samples > 0)
            .map(|e| format!("{} {}", e.path.replace('/', ";"), e.samples))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Keep only entries whose path starts with `prefix` (tests share
    /// one global profiler, so they filter to their own namespace).
    pub fn filtered(&self, prefix: &str) -> ProfileSnapshot {
        let mut s = self.clone();
        s.entries.retain(|e| {
            e.path == prefix || e.path.starts_with(&format!("{prefix}/")) || prefix.is_empty()
        });
        s
    }

    /// The entry for an exact path, if profiled.
    pub fn entry(&self, path: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// The JSON `profile` report section: summary numbers, every path's
    /// shares keyed by path (addressable by `obs-check` as
    /// `profile.shares.serve/shard/score.self` — path segments contain
    /// no dots), and a `top` array of the `top_n` hottest by self share.
    pub fn to_json(&self, top_n: usize) -> Json {
        let secs = self.duration.as_secs_f64();
        let effective_hz = if secs > 0.0 {
            self.ticks as f64 / secs
        } else {
            0.0
        };
        let total_alloc_count: u64 = self
            .entries
            .iter()
            .map(|e| e.alloc_count)
            .sum::<u64>()
            .saturating_add(self.unattributed_alloc_count);
        let total_alloc_bytes: u64 = self
            .entries
            .iter()
            .map(|e| e.alloc_bytes)
            .sum::<u64>()
            .saturating_add(self.unattributed_alloc_bytes);
        let shares: Vec<(String, Json)> = self
            .entries
            .iter()
            .map(|e| {
                (
                    e.path.clone(),
                    Json::obj([
                        ("samples", Json::from(e.samples)),
                        ("total_samples", Json::from(e.total_samples)),
                        ("self", Json::F64(e.self_share)),
                        ("total", Json::F64(e.total_share)),
                        ("alloc_count", Json::from(e.alloc_count)),
                        ("alloc_bytes", Json::from(e.alloc_bytes)),
                    ]),
                )
            })
            .collect();
        let top: Vec<Json> = self
            .entries
            .iter()
            .take(top_n)
            .map(|e| {
                Json::obj([
                    ("path", Json::Str(e.path.clone())),
                    ("self", Json::F64(e.self_share)),
                    ("total", Json::F64(e.total_share)),
                    ("samples", Json::from(e.samples)),
                    ("alloc_bytes", Json::from(e.alloc_bytes)),
                ])
            })
            .collect();
        Json::obj([
            ("ticks", Json::from(self.ticks)),
            ("samples", Json::from(self.work_samples)),
            ("idle_samples", Json::from(self.idle_samples)),
            ("duration_s", Json::F64(secs)),
            ("effective_hz", Json::F64(effective_hz)),
            (
                "alloc",
                Json::obj([
                    ("count", Json::from(total_alloc_count)),
                    ("bytes", Json::from(total_alloc_bytes)),
                    (
                        "unattributed_count",
                        Json::from(self.unattributed_alloc_count),
                    ),
                    (
                        "unattributed_bytes",
                        Json::from(self.unattributed_alloc_bytes),
                    ),
                ]),
            ),
            ("shares", Json::Obj(shares)),
            ("top", Json::Arr(top)),
        ])
    }
}

/// Classic two-pointer `*` glob with backtracking — the pattern dialect
/// `rrc-prof diff --fail-on-grow` and `obs-check --profile-share` use
/// for profile paths (`*` spans any characters, including `/`).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let (p, t): (Vec<char>, Vec<char>) = (pattern.chars().collect(), text.chars().collect());
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_t) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            star_t = ti;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Parse a profile from either supported on-disk form:
///
/// * **collapsed-stack text** — `a;b;c N` lines; shares are recomputed
///   from the counts (alloc columns come back zero: the collapsed format
///   doesn't carry them), or
/// * **a JSON document** — a full run report with a `profile` section,
///   or a bare profile section object; entries come from its `shares`
///   map verbatim.
///
/// Entries return sorted by descending self samples, ties by path.
pub fn parse_profile_text(text: &str) -> Result<Vec<ProfileEntry>, String> {
    let mut entries = if text.trim_start().starts_with('{') {
        parse_profile_json(text)?
    } else {
        parse_collapsed(text)?
    };
    entries.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.path.cmp(&b.path)));
    Ok(entries)
}

fn parse_collapsed(text: &str) -> Result<Vec<ProfileEntry>, String> {
    let mut counts: Vec<(String, u64)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: expected `path N`, got {line:?}", lineno + 1))?;
        let count: u64 = count
            .parse()
            .map_err(|e| format!("line {}: bad sample count {count:?}: {e}", lineno + 1))?;
        counts.push((stack.replace(';', "/"), count));
    }
    let denom = counts.iter().map(|(_, c)| c).sum::<u64>().max(1) as f64;
    Ok(counts
        .into_iter()
        .map(|(path, samples)| ProfileEntry {
            total_samples: samples, // collapsed lines carry self counts only
            self_share: samples as f64 / denom,
            total_share: samples as f64 / denom,
            path,
            samples,
            alloc_count: 0,
            alloc_bytes: 0,
        })
        .collect())
}

fn parse_profile_json(text: &str) -> Result<Vec<ProfileEntry>, String> {
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let section = doc
        .get("profile")
        .unwrap_or(&doc)
        .get("shares")
        .ok_or("no `profile.shares` (or top-level `shares`) object in JSON input")?;
    let pairs = section.as_object().ok_or("`shares` is not an object")?;
    let mut entries = Vec::with_capacity(pairs.len());
    for (path, v) in pairs {
        let num = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let int = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        entries.push(ProfileEntry {
            path: path.clone(),
            samples: int("samples"),
            total_samples: int("total_samples"),
            self_share: num("self"),
            total_share: num("total"),
            alloc_count: int("alloc_count"),
            alloc_bytes: int("alloc_bytes"),
        });
    }
    Ok(entries)
}

/// Wrapping global allocator: passes straight through to [`System`],
/// adding (only while profiling is enabled) one count and the request
/// size to the allocating thread's innermost frame. Binaries opt in:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: rrc_obs::profile::CountingAlloc = rrc_obs::profile::CountingAlloc::new();
/// ```
pub struct CountingAlloc;

impl CountingAlloc {
    /// `const` constructor for the `#[global_allocator]` static.
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }

    #[inline]
    fn note(&self, size: usize) {
        if ENABLED.load(Ordering::Relaxed) {
            // Const-initialised Cell reads/writes only: safe inside the
            // allocator (no lazy init, no allocation, no locks), and no
            // atomic RMW on the per-allocation path — the batch flushes
            // on the next frame change.
            let node = CUR.try_with(Cell::get).unwrap_or(ROOT);
            let _ = ALLOC_PENDING.try_with(|p| {
                let (pnode, count, bytes) = p.get();
                if pnode == node {
                    p.set((node, count + 1, bytes + size as u64));
                } else {
                    flush_alloc_batch(pnode, count, bytes);
                    p.set((node, 1, size as u64));
                }
            });
        }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: defers every allocation verbatim to `System`; the bookkeeping
// only touches static atomics and a const-initialised thread-local Cell.
unsafe impl GlobalAlloc for CountingAlloc {
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.note(layout.size());
        unsafe { System.alloc(layout) }
    }

    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.note(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count only the growth: a grow-in-place or shrink is not a
        // fresh allocation of `new_size` bytes.
        self.note(new_size.saturating_sub(layout.size()));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise tests that toggle the global switch.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_guards_are_inert() {
        let _g = lock();
        disable();
        let guard = ProfGuard::enter("never");
        assert_eq!(guard.node(), ROOT);
        assert!(current_path().is_none());
    }

    #[test]
    fn nested_guards_build_slash_paths() {
        let _g = lock();
        enable();
        {
            let _a = ProfGuard::enter("unit_a");
            {
                let _b = ProfGuard::enter("unit_b");
                assert_eq!(current_path().as_deref(), Some("unit_a/unit_b"));
            }
            assert_eq!(current_path().as_deref(), Some("unit_a"));
        }
        assert!(current_path().is_none());
        disable();
    }

    #[test]
    fn enter_path_pushes_and_pops_whole_chains() {
        let _g = lock();
        enable();
        {
            let _p = ProfGuard::enter_path(&["unit_chain", "x", "y"]);
            assert_eq!(current_path().as_deref(), Some("unit_chain/x/y"));
        }
        assert!(current_path().is_none());
        disable();
    }

    #[test]
    fn out_of_order_drop_rewinds_to_entry() {
        let _g = lock();
        enable();
        let a = ProfGuard::enter("unit_oo_a");
        let b = ProfGuard::enter("unit_oo_b");
        // Dropping the *outer* guard first rewinds to its entry point
        // (root); the inner guard's later drop rewinds to *its* entry
        // (unit_oo_a) — a degraded but never-corrupt path.
        drop(a);
        assert!(current_path().is_none());
        drop(b);
        assert_eq!(current_path().as_deref(), Some("unit_oo_a"));
        set_current(ROOT);
        disable();
    }

    #[test]
    fn synthetic_samples_roll_up_to_ancestors() {
        let _g = lock();
        enable();
        record_synthetic(&["unit_roll", "leaf1"], 3);
        record_synthetic(&["unit_roll", "leaf2"], 1);
        let snap = snapshot().filtered("unit_roll");
        let parent = snap.entry("unit_roll").expect("parent profiled");
        assert!(parent.total_samples >= 4);
        assert_eq!(snap.entry("unit_roll/leaf1").unwrap().samples, 3);
        disable();
    }

    #[test]
    fn collapsed_is_deterministic_and_semicolon_joined() {
        let _g = lock();
        enable();
        record_synthetic(&["unit_col", "b"], 2);
        record_synthetic(&["unit_col", "a"], 5);
        let snap = snapshot().filtered("unit_col");
        let text = snap.collapsed();
        let a = text.find("unit_col;a 5").expect("a line");
        let b = text.find("unit_col;b 2").expect("b line");
        assert!(a < b, "collapsed output sorts by path:\n{text}");
        disable();
    }

    #[test]
    fn overflow_paths_collapse_instead_of_failing() {
        // Interning beyond MAX_NODES lands on the overflow node; this
        // can't be driven for real without exhausting the table, so just
        // check the sentinel exists and has a printable path.
        let t = table().read().unwrap();
        assert_eq!(path_of(OVERFLOW, &t), "(overflow)");
    }
}
