//! `rrc-top`: a live terminal dashboard over a serving run report.
//!
//! Point it at the JSON file a serving process refreshes (e.g.
//! `loadgen --metrics-json /tmp/live.json`) and it renders the engine's
//! request quantiles, per-shard per-stage latency breakdown, queue
//! depths, user-state cache traffic (hit/miss/evict, resident footprint,
//! spill/load latency), per-model-version online quality, SLO burn-rate
//! verdicts, and the slowest exemplar traces on record, redrawing every
//! `--interval` ms. Optional sections (ustate, quality, slo, forensics)
//! degrade gracefully: an absent section is listed in a "not enabled"
//! footer instead of crashing or rendering an empty panel:
//!
//! ```text
//! rrc-top /tmp/live.json              # live, redraw every 500 ms
//! rrc-top /tmp/live.json --once      # print one frame and exit (CI)
//! ```
//!
//! The poller is deliberately tolerant: writers replace the file
//! atomically (write-to-temp + rename), but if a frame is missing or
//! unparsable the previous frame stays on screen and a staleness note is
//! shown, so a dashboard never dies mid-run. A report whose mtime falls
//! behind `--stale-after` seconds (default `max(6 × interval, 5s)`) gets
//! a `*** STALE ***` banner — a dashboard full of plausible numbers from
//! a dead writer is worse than no dashboard. `--once` is strict instead
//! — a bad file is a non-zero exit, which is what CI wants.
//!
//! Everything is std-only (plus the workspace's own JSON parser); the
//! "UI" is plain ANSI clear-screen + aligned text, so it works in any
//! terminal and its `--once` output pastes directly into docs.

use rrc_obs::Json;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: rrc-top REPORT.json [--interval MILLIS] [--once] [--no-clear] \
         [--stale-after SECS]"
    );
    std::process::exit(2);
}

/// Seconds since the report file was last modified, when the filesystem
/// can tell us.
fn report_age(path: &str) -> Option<f64> {
    let mtime = std::fs::metadata(path).ok()?.modified().ok()?;
    Some(mtime.elapsed().ok()?.as_secs_f64())
}

/// Nanoseconds, humanized to a fixed 9-column cell.
fn ns(v: Option<f64>) -> String {
    match v {
        None => format!("{:>9}", "-"),
        Some(x) if x < 0.0 => format!("{:>9}", "-"),
        Some(x) if x < 1e3 => format!("{:>7.0}ns", x),
        Some(x) if x < 1e6 => format!("{:>7.1}µs", x / 1e3),
        Some(x) if x < 1e9 => format!("{:>7.1}ms", x / 1e6),
        Some(x) => format!("{:>8.2}s", x / 1e9),
    }
}

fn count(v: Option<f64>) -> String {
    match v {
        None => "-".to_string(),
        Some(x) => format!("{x:.0}"),
    }
}

/// One latency-summary row (count + quantiles) from an `engine` section
/// node shaped like `{count, p50_ns, p95_ns, p99_ns, mean_ns, max_ns}`.
fn latency_row(label: &str, node: Option<&Json>) -> String {
    let f = |k: &str| node.and_then(|n| n.get(k)).and_then(Json::as_f64);
    format!(
        "  {label:<14} {:>9} {} {} {} {} {}",
        count(f("count")),
        ns(f("p50_ns")),
        ns(f("p95_ns")),
        ns(f("p99_ns")),
        ns(f("mean_ns")),
        ns(f("max_ns")),
    )
}

/// Look up a labeled series in a registry-snapshot section: the snapshot
/// keys series Prometheus-style (`serve_queue_depth{shard="0"}`), so the
/// exact key is reconstructed from the label pairs.
fn series<'a>(
    doc: &'a Json,
    section: &str,
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a Json> {
    let key = if labels.is_empty() {
        name.to_string()
    } else {
        let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{name}{{{}}}", body.join(","))
    };
    doc.at(&format!("metrics.{section}"))?.get(&key)
}

fn gauge(doc: &Json, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
    series(doc, "gauges", name, labels).and_then(Json::as_i64)
}

/// Byte counts, humanized to a short cell.
fn bytes(v: Option<f64>) -> String {
    const KIB: f64 = 1024.0;
    match v {
        None => "-".to_string(),
        Some(x) if x < 0.0 => "-".to_string(),
        Some(x) if x < KIB => format!("{x:.0}B"),
        Some(x) if x < KIB * KIB => format!("{:.1}KiB", x / KIB),
        Some(x) if x < KIB * KIB * KIB => format!("{:.1}MiB", x / (KIB * KIB)),
        Some(x) => format!("{:.2}GiB", x / (KIB * KIB * KIB)),
    }
}

/// Percentage-style ratio cell.
fn pct(v: Option<f64>) -> String {
    match v {
        None => format!("{:>6}", "-"),
        Some(x) => format!("{x:>6.3}"),
    }
}

/// Render one full frame from a parsed report.
fn render(doc: &Json) -> String {
    let mut out = String::new();
    let name = doc.get("report").and_then(Json::as_str).unwrap_or("?");
    let uptime_ms = doc.at("engine.uptime_ms").and_then(Json::as_f64);
    let version = gauge(doc, "serve_model_version", &[]);
    // 0 = no fingerprinted model installed yet (real fingerprints are
    // 64 random-looking bits).
    let fingerprint = gauge(doc, "serve_model_fingerprint", &[])
        .map(|v| v as u64)
        .filter(|&v| v != 0);
    let shards = doc
        .at("engine.shards")
        .map(|s| match s {
            Json::Arr(a) => a.len(),
            _ => 0,
        })
        .unwrap_or(0);

    out.push_str(&format!("rrc-top · report \"{name}\""));
    if let Some(ms) = uptime_ms {
        out.push_str(&format!(" · uptime {:.1}s", ms / 1e3));
    }
    out.push_str(&format!(" · {shards} shard(s)"));
    if let Some(v) = version {
        out.push_str(&format!(" · model v{v}"));
    }
    if let Some(fp) = fingerprint {
        out.push_str(&format!(" (fp {fp:016x})"));
    }
    out.push('\n');

    let w = doc.at("engine.windowed");
    if let Some(w) = w.filter(|w| !w.is_null()) {
        let g = |k: &str| w.get(k).and_then(Json::as_f64);
        out.push_str(&format!(
            "throughput    windowed {:>8}/s over {:>6.1}s · windowed/cumulative {}\n",
            count(g("rate_per_sec")),
            g("covered_ms").map(|x| x / 1e3).unwrap_or(0.0),
            pct(g("over_cumulative")),
        ));
    }

    out.push_str(&format!(
        "\n  {:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "requests", "n", "p50", "p95", "p99", "mean", "max"
    ));
    out.push_str(&latency_row("observe", doc.at("engine.requests.observe")));
    out.push('\n');
    out.push_str(&latency_row(
        "recommend",
        doc.at("engine.requests.recommend"),
    ));
    out.push('\n');

    if let Some(Json::Arr(stages)) = doc.at("engine.stages") {
        if !stages.is_empty() {
            out.push_str(&format!(
                "\n  {:<14} {:>9} {:>9} {:>9} {:>9} {:>7} {:>8}\n",
                "shard/stage", "n", "p50", "p95", "p99", "queue", "inflight"
            ));
        }
        for st in stages {
            let shard = st.get("shard").and_then(Json::as_u64).unwrap_or(0);
            let label = shard.to_string();
            let depth = gauge(doc, "serve_queue_depth", &[("shard", &label)]);
            let inflight = gauge(doc, "serve_inflight", &[("shard", &label)]);
            for (i, stage) in ["enqueue_wait", "score", "respond"].iter().enumerate() {
                let node = st.get(stage);
                let f = |k: &str| node.and_then(|n| n.get(k)).and_then(Json::as_f64);
                let tail = if i == 0 {
                    format!(
                        " {:>7} {:>8}",
                        depth.map_or("-".into(), |d| d.to_string()),
                        inflight.map_or("-".into(), |d| d.to_string()),
                    )
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "  {:<14} {:>9} {} {} {}{tail}\n",
                    format!("{shard}/{stage}"),
                    count(f("count")),
                    ns(f("p50_ns")),
                    ns(f("p95_ns")),
                    ns(f("p99_ns")),
                ));
            }
        }
    }

    // User-state tier panel: only drawn once the cache has seen traffic,
    // so unbounded runs without a tier workload stay uncluttered.
    let ustate = doc.at("engine.ustate").filter(|u| !u.is_null());
    if let Some(u) = ustate {
        let f = |k: &str| u.at(k).and_then(Json::as_f64);
        if f("cache.hit").unwrap_or(0.0) + f("cache.miss").unwrap_or(0.0) > 0.0 {
            out.push_str(&format!(
                "\n  {:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                "cache", "hit", "miss", "evict", "hitrate", "resident", "spilled"
            ));
            out.push_str(&format!(
                "  {:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                "users",
                count(f("cache.hit")),
                count(f("cache.miss")),
                count(f("cache.evict")),
                f("cache.hit_rate").map_or("-".to_string(), |x| format!("{x:.3}")),
                count(f("resident_users")),
                count(f("spilled_users")),
            ));
            out.push_str(&format!(
                "  resident {} · spill file {}",
                bytes(f("resident_bytes")),
                bytes(f("spill_file_bytes")),
            ));
            if let Some(b) = f("budget_bytes_per_shard") {
                out.push_str(&format!(" · budget {}/shard", bytes(Some(b))));
            }
            out.push('\n');
            out.push_str(&latency_row("spill", u.get("spill")));
            out.push('\n');
            out.push_str(&latency_row("load", u.get("load")));
            out.push('\n');
        }
    }

    if let Some(q) = doc.get("quality").filter(|q| !q.is_null()) {
        out.push_str(&format!(
            "\n  {:<14} {:>9} {:>7} {:>7} {:>7} {:>7}\n",
            "quality", "opps", "hit@1", "hit@5", "hit@10", "mrr"
        ));
        let qrow = |label: String, node: &Json| {
            let f = |k: &str| node.get(k).and_then(Json::as_f64);
            format!(
                "  {label:<14} {:>9} {} {} {} {}\n",
                count(f("opportunities")),
                pct(f("hit1")).to_string() + " ",
                pct(f("hit5")).to_string() + " ",
                pct(f("hit10")).to_string() + " ",
                pct(f("mrr")),
            )
        };
        if let Some(Json::Arr(versions)) = q.get("versions") {
            for v in versions {
                let ver = v.get("version").and_then(Json::as_u64).unwrap_or(0);
                out.push_str(&qrow(format!("v{ver} total"), v));
                if let Some(w) = v.get("windowed") {
                    out.push_str(&qrow(format!("v{ver} window"), w));
                }
            }
        }
        if let Some(overall) = q.get("overall") {
            out.push_str(&qrow("overall".to_string(), overall));
        }
        if let Some(d) = q.get("drift") {
            let f = |k: &str| d.get(k).and_then(Json::as_f64);
            out.push_str(&format!(
                "drift         score {:+.3} · feature {:+.3} (window n={}, since install n={})\n",
                f("score_micro").unwrap_or(0.0) / 1e6,
                f("feature_micro").unwrap_or(0.0) / 1e6,
                count(f("window_samples")),
                count(f("samples_since_install")),
            ));
        }
    }

    // Overload panel: the conservation-law books (offered = admitted +
    // shed, split by kind and reason), queue bounds, and the windowed
    // shed rate an operator watches during an incident.
    if let Some(o) = doc.at("engine.overload").filter(|s| !s.is_null()) {
        let f = |k: &str| o.at(k).and_then(Json::as_f64);
        out.push_str(&format!(
            "\n  {:<14} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "overload", "offered", "admitted", "shed", "queue", "deadline"
        ));
        for (label, kind) in [
            ("observe", "observe"),
            ("recommend", "recommend"),
            ("total", "total"),
        ] {
            let g = |k: &str| f(&format!("{kind}.{k}"));
            out.push_str(&format!(
                "  {label:<14} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                count(g("offered")),
                count(g("admitted")),
                count(g("shed")),
                count(g("shed_queue")),
                count(g("shed_deadline")),
            ));
        }
        let cap = f("queue_cap").map_or("unbounded".to_string(), |c| format!("{c:.0}"));
        let ocap = f("observe_cap").map_or("-".to_string(), |c| format!("{c:.0}"));
        out.push_str(&format!(
            "  cap {cap} (observe {ocap}) · peak depth {} · windowed shed rate {}\n",
            count(f("peak_depth")),
            f("window.shed_rate").map_or("-".to_string(), |r| format!("{r:.3}")),
        ));
    }

    // SLO panel: worst state up top (the thing an operator scans for),
    // then per-objective burn rates.
    if let Some(slo) = doc.at("engine.slo").filter(|s| !s.is_null()) {
        let worst = slo.get("worst").and_then(Json::as_str).unwrap_or("?");
        out.push_str(&format!(
            "\n  {:<22} {:>7} {:>12} {:>7} {:>7} {:>6}   worst: {}\n",
            "slo objective", "state", "target", "short", "long", "ticks", worst,
        ));
        if let Some(Json::Arr(objectives)) = slo.get("objectives") {
            for o in objectives {
                let s = |k: &str| o.get(k).and_then(Json::as_str).unwrap_or("?");
                let f = |k: &str| o.get(k).and_then(Json::as_f64);
                out.push_str(&format!(
                    "  {:<22} {:>7} {:>12} {:>7.2} {:>7.2} {:>6}{}\n",
                    s("name"),
                    s("state"),
                    format!("{} {}", s("cmp"), count(f("bound"))),
                    f("short_burn").unwrap_or(0.0),
                    f("long_burn").unwrap_or(0.0),
                    count(f("ticks")),
                    if o.get("breached_now").and_then(Json::as_bool) == Some(true) {
                        "  BREACHED"
                    } else {
                        ""
                    },
                ));
            }
        }
    }

    // Forensics panel: the slowest exemplar traces on record — the ids
    // an operator greps for in the trace sink.
    if let Some(fx) = doc.at("engine.forensics").filter(|s| !s.is_null()) {
        if let Some(Json::Arr(slowest)) = fx.get("slowest") {
            if !slowest.is_empty() {
                out.push_str(&format!(
                    "\n  {:<14} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
                    "slow trace", "shard", "kind", "total", "wait", "score", "respond"
                ));
                for t in slowest.iter().take(3) {
                    let f = |k: &str| t.get(k).and_then(Json::as_f64);
                    out.push_str(&format!(
                        "  id={:<11} {:>7} {:>10} {} {} {} {}\n",
                        count(f("trace_id")),
                        count(f("shard")),
                        t.get("kind").and_then(Json::as_str).unwrap_or("?"),
                        ns(f("total_ns")),
                        ns(f("enqueue_wait_ns")),
                        ns(f("score_ns")),
                        ns(f("respond_ns")),
                    ));
                }
            }
        }
    }

    // Hot-paths panel: the profiler's top self-share paths with their
    // allocation pressure, normalized to bytes/s so runs of different
    // lengths compare.
    if let Some(p) = doc.get("profile").filter(|s| !s.is_null()) {
        let secs = p.get("duration_s").and_then(Json::as_f64).unwrap_or(0.0);
        let per_sec = |b: Option<f64>| {
            if secs > 0.0 {
                bytes(b.map(|x| x / secs)) + "/s"
            } else {
                "-".to_string()
            }
        };
        if let Some(Json::Arr(top)) = p.get("top") {
            if !top.is_empty() {
                out.push_str(&format!(
                    "\n  {:<14} {:>7} {:>7} {:>9} {:>12}  path\n",
                    "hot path", "self", "total", "samples", "alloc"
                ));
                for entry in top.iter().take(5) {
                    let f = |k: &str| entry.get(k).and_then(Json::as_f64);
                    out.push_str(&format!(
                        "  {:<14} {:>6.1}% {:>6.1}% {:>9} {:>12}  {}\n",
                        "",
                        f("self").unwrap_or(0.0) * 100.0,
                        f("total").unwrap_or(0.0) * 100.0,
                        count(f("samples")),
                        per_sec(f("alloc_bytes")),
                        entry.get("path").and_then(Json::as_str).unwrap_or("?"),
                    ));
                }
            }
        }
        let f = |k: &str| p.at(k).and_then(Json::as_f64);
        out.push_str(&format!(
            "  profile: {} work / {} idle samples @ {:.0}Hz · alloc {}\n",
            count(f("samples")),
            count(f("idle_samples")),
            f("effective_hz").unwrap_or(0.0),
            per_sec(f("alloc.bytes")),
        ));
    }

    // Optional-section footer: say which panels this report can't show,
    // so a blank dashboard region reads as "not enabled" rather than
    // "broken".
    let absent: Vec<&str> = [
        ("ustate", doc.at("engine.ustate")),
        ("quality", doc.get("quality")),
        ("overload", doc.at("engine.overload")),
        ("slo", doc.at("engine.slo")),
        ("forensics", doc.at("engine.forensics")),
        ("profile", doc.get("profile")),
    ]
    .into_iter()
    .filter(|(_, v)| v.is_none_or(Json::is_null))
    .map(|(k, _)| k)
    .collect();
    if !absent.is_empty() {
        out.push_str(&format!("\n(not enabled: {})\n", absent.join(", ")));
    }
    out
}

fn main() {
    let mut path = None;
    let mut interval = Duration::from_millis(500);
    let mut once = false;
    let mut clear = true;
    let mut stale_after: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--interval" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                interval = Duration::from_millis(ms.max(50));
            }
            "--once" => once = true,
            "--no-clear" => clear = false,
            "--stale-after" => {
                let secs: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| usage());
                stale_after = Some(secs);
            }
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let path = path.unwrap_or_else(|| usage());
    // A report older than this many seconds means the writer stopped
    // refreshing: visibly flag it even though the last frame still parses.
    let stale_after = stale_after.unwrap_or((interval.as_secs_f64() * 6.0).max(5.0));

    let mut last_frame: Option<String> = None;
    let mut stale_for = 0u32;
    loop {
        let frame = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .map(|doc| render(&doc));
        match frame {
            Some(f) => {
                last_frame = Some(f);
                stale_for = 0;
            }
            None if once => {
                eprintln!("rrc-top: cannot read a report from {path}");
                std::process::exit(1);
            }
            None => stale_for += 1,
        }
        let age = report_age(&path);
        if once {
            // One clean frame, no escape codes: CI logs and docs.
            print!("{}", last_frame.as_deref().unwrap_or(""));
            if let Some(age) = age.filter(|&a| a > stale_after) {
                println!("*** STALE: report is {age:.1}s old (threshold {stale_after:.0}s) ***");
            }
            return;
        }
        if let Some(f) = &last_frame {
            if clear {
                // Home + clear-to-end redraw (less flicker than full clear).
                print!("\x1b[H\x1b[J");
            }
            print!("{f}");
            match age {
                Some(age) if age > stale_after => println!(
                    "\n*** STALE: report is {age:.1}s old (threshold {stale_after:.0}s) — \
                     is the writer alive? ***"
                ),
                Some(age) => println!("\nreport age {age:.1}s"),
                None => {}
            }
            if stale_for > 0 {
                println!("(stale: {stale_for} failed poll(s) of {path})");
            }
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A report with no optional sections at all renders cleanly and
    /// lists every missing panel — including overload — in the footer
    /// instead of crashing or drawing an empty table.
    #[test]
    fn absent_optional_sections_land_in_the_footer() {
        let doc = Json::parse(r#"{"report": "bare", "engine": {"uptime_ms": 12.5}}"#).unwrap();
        let frame = render(&doc);
        assert!(frame.contains("rrc-top · report \"bare\""));
        assert!(
            frame.contains("(not enabled: ustate, quality, overload, slo, forensics, profile)"),
            "footer must name every absent section, got:\n{frame}"
        );
        assert!(
            !frame.contains("\n  overload"),
            "no overload panel without the section"
        );
    }

    /// An explicit `null` section (the writer's way of saying "feature
    /// off") is treated exactly like a missing one.
    #[test]
    fn null_overload_section_counts_as_absent() {
        let doc =
            Json::parse(r#"{"report": "x", "engine": {"overload": null, "slo": null}}"#).unwrap();
        let frame = render(&doc);
        assert!(frame.contains("overload, slo"));
        assert!(!frame.contains("windowed shed rate"));
    }

    /// With the section present, the panel shows the per-kind books and
    /// the cap/peak/shed-rate summary line, and leaves the footer alone.
    #[test]
    fn overload_panel_renders_the_conservation_books() {
        let doc = Json::parse(
            r#"{
                "report": "hot",
                "engine": {
                    "overload": {
                        "queue_cap": 64,
                        "observe_cap": 48,
                        "peak_depth": 17,
                        "observe": {"offered": 100, "admitted": 80, "shed": 20,
                                    "shed_queue": 15, "shed_deadline": 5},
                        "recommend": {"offered": 10, "admitted": 10, "shed": 0,
                                      "shed_queue": 0, "shed_deadline": 0},
                        "total": {"offered": 110, "admitted": 90, "shed": 20,
                                  "shed_queue": 15, "shed_deadline": 5},
                        "window": {"offered": 40, "shed": 10, "shed_rate": 0.25}
                    }
                }
            }"#,
        )
        .unwrap();
        let frame = render(&doc);
        assert!(frame.contains("overload"));
        assert!(frame.contains("cap 64 (observe 48)"));
        assert!(frame.contains("peak depth 17"));
        assert!(frame.contains("windowed shed rate 0.250"));
        // The total row carries the full books.
        assert!(frame.contains("110"), "total offered missing:\n{frame}");
        assert!(
            !frame.contains("overload, "),
            "present section must not be listed absent:\n{frame}"
        );
    }

    /// The hot-paths panel lists the profiler's top self-share paths
    /// with allocation pressure normalized to bytes/s, and the section
    /// drops out of the "not enabled" footer once present.
    #[test]
    fn profile_panel_renders_hot_paths_and_alloc_rate() {
        let doc = Json::parse(
            r#"{
                "report": "prof",
                "engine": {"uptime_ms": 1000.0},
                "profile": {
                    "ticks": 2000,
                    "samples": 900,
                    "idle_samples": 1100,
                    "duration_s": 2.0,
                    "effective_hz": 1000.0,
                    "alloc": {"count": 5000, "bytes": 4194304},
                    "shares": {
                        "serve/shard/score": {"samples": 600, "total_samples": 600,
                                              "self": 0.667, "total": 0.667,
                                              "alloc_count": 4000, "alloc_bytes": 2097152},
                        "serve/enqueue": {"samples": 300, "total_samples": 300,
                                          "self": 0.333, "total": 0.333,
                                          "alloc_count": 1000, "alloc_bytes": 1048576}
                    },
                    "top": [
                        {"path": "serve/shard/score", "self": 0.667, "total": 0.667,
                         "samples": 600, "alloc_bytes": 2097152},
                        {"path": "serve/enqueue", "self": 0.333, "total": 0.333,
                         "samples": 300, "alloc_bytes": 1048576}
                    ]
                }
            }"#,
        )
        .unwrap();
        let frame = render(&doc);
        assert!(frame.contains("hot path"), "panel header missing:\n{frame}");
        assert!(frame.contains("serve/shard/score"));
        assert!(frame.contains("66.7%"), "self share missing:\n{frame}");
        // 2 MiB over 2 s -> 1 MiB/s for the top path, 2 MiB/s overall.
        assert!(frame.contains("1.0MiB/s"), "alloc rate missing:\n{frame}");
        assert!(frame.contains("2.0MiB/s"), "total alloc rate:\n{frame}");
        assert!(frame.contains("900 work / 1100 idle samples @ 1000Hz"));
        assert!(
            frame.contains("(not enabled: ustate, quality, overload, slo, forensics)"),
            "present profile section must not be listed absent:\n{frame}"
        );
    }
}
