//! `obs-check`: validate a machine-readable [`RunReport`] file.
//!
//! The offline CI image has no `jq`, so report validation is a tiny
//! binary instead: it parses the JSON strictly (our parser rejects
//! `NaN`/`Infinity` outright), checks the standard report envelope, and
//! then enforces caller-specified requirements on dotted paths.
//!
//! ```text
//! obs-check REPORT.json [--require PATH]... [--min PATH VALUE]...
//! ```
//!
//! * `--require a.b.c`  — the path must exist and not be `null`
//! * `--min a.b.c 1.0`  — the path must be a finite number `>= VALUE`
//!
//! Exits 0 when every check passes; prints each failure and exits 1
//! otherwise.
//!
//! [`RunReport`]: rrc_obs::RunReport

use rrc_obs::Json;

fn usage() -> ! {
    eprintln!("usage: obs-check REPORT.json [--require PATH]... [--min PATH VALUE]...");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(p) if !p.starts_with("--") => p,
        _ => usage(),
    };
    let mut requires: Vec<String> = vec![
        "report".to_string(),
        "created_unix_ms".to_string(),
        "config".to_string(),
    ];
    let mut mins: Vec<(String, f64)> = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--require" => requires.push(args.next().unwrap_or_else(|| usage())),
            "--min" => {
                let p = args.next().unwrap_or_else(|| usage());
                let v = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or_else(|| usage());
                mins.push((p, v));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs-check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("obs-check: {path} is not valid JSON: {e}");
            eprintln!("(note: NaN / Infinity are rejected by design)");
            std::process::exit(1);
        }
    };

    let mut failures = Vec::new();
    for p in &requires {
        match doc.at(p) {
            None => failures.push(format!("missing key: {p}")),
            Some(v) if v.is_null() => failures.push(format!("key is null: {p}")),
            Some(_) => {}
        }
    }
    for (p, min) in &mins {
        match doc.at(p).and_then(Json::as_f64) {
            None => failures.push(format!("missing or non-numeric key: {p}")),
            Some(v) if !v.is_finite() => failures.push(format!("non-finite value at {p}: {v}")),
            Some(v) if v < *min => failures.push(format!("{p} = {v} below required minimum {min}")),
            Some(_) => {}
        }
    }

    if failures.is_empty() {
        let name = doc.get("report").and_then(Json::as_str).unwrap_or("?");
        println!(
            "obs-check: {path} OK (report \"{name}\", {} requirement(s))",
            requires.len() + mins.len()
        );
    } else {
        for f in &failures {
            eprintln!("obs-check: {path}: {f}");
        }
        std::process::exit(1);
    }
}
