//! `obs-check`: validate a machine-readable [`RunReport`] file.
//!
//! The offline CI image has no `jq`, so report validation is a tiny
//! binary instead: it parses the JSON strictly (our parser rejects
//! `NaN`/`Infinity` outright), checks the standard report envelope, and
//! then enforces caller-specified requirements on dotted paths.
//!
//! ```text
//! obs-check REPORT.json [--require PATH]... [--min PATH VALUE]... [--max PATH VALUE]...
//! ```
//!
//! * `--require a.b.c`  — the path must exist and not be `null`
//! * `--min a.b.c 1.0`  — the path must be a finite number `>= VALUE`
//! * `--max a.b.c 1.0`  — the path must be a finite number `<= VALUE`
//!
//! Path segments may contain `*` wildcards, which is how labeled metric
//! series are addressed: registry snapshots key series Prometheus-style
//! (`serve_queue_depth{shard="0"}`), so
//!
//! ```text
//! --require 'metrics.gauges.serve_queue_depth{shard=*}'
//! ```
//!
//! matches every shard's gauge (label values are compared with their
//! quotes stripped, so patterns don't need shell-hostile `"` characters).
//! A wildcard segment also fans out over arrays. Wildcard requirements
//! must match **at least one** path, and every match must satisfy the
//! bound — `--max 'serve_queue_depth{shard=*}' 100` bounds all shards.
//!
//! Exits 0 when every check passes; prints each failure and exits 1
//! otherwise.
//!
//! [`RunReport`]: rrc_obs::RunReport

use rrc_obs::Json;

fn usage() -> ! {
    eprintln!(
        "usage: obs-check REPORT.json [--require PATH]... [--min PATH VALUE]... [--max PATH VALUE]..."
    );
    std::process::exit(2);
}

/// `*`-wildcard match (the only metacharacter; everything else literal).
fn glob_match(pattern: &str, text: &str) -> bool {
    let (p, t): (Vec<char>, Vec<char>) = (pattern.chars().collect(), text.chars().collect());
    // Classic two-pointer glob with backtracking over the last `*`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_t) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            star_t = ti;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Does `segment` (possibly wildcarded) select this object key? Metric
/// keys carry quoted label values (`shard="0"`); patterns match against
/// the quote-stripped form so CLI globs stay shell-friendly.
fn segment_matches(segment: &str, key: &str) -> bool {
    if segment == key {
        return true;
    }
    let stripped: String = key.chars().filter(|&c| c != '"').collect();
    if segment == stripped {
        return true;
    }
    segment.contains('*') && (glob_match(segment, key) || glob_match(segment, &stripped))
}

/// All values selected by a dotted path whose segments may contain `*`
/// wildcards, with matched paths (concrete keys) for error messages.
fn resolve<'a>(doc: &'a Json, path: &str) -> Vec<(String, &'a Json)> {
    let mut frontier: Vec<(String, &Json)> = vec![(String::new(), doc)];
    for seg in path.split('.') {
        let mut next = Vec::new();
        for (at, node) in frontier {
            let join = |k: &str| {
                if at.is_empty() {
                    k.to_string()
                } else {
                    format!("{at}.{k}")
                }
            };
            match node {
                Json::Obj(pairs) => {
                    for (k, v) in pairs {
                        if segment_matches(seg, k) {
                            next.push((join(k), v));
                        }
                    }
                }
                Json::Arr(items) => {
                    if seg == "*" {
                        for (i, v) in items.iter().enumerate() {
                            next.push((join(&i.to_string()), v));
                        }
                    } else if let Ok(i) = seg.parse::<usize>() {
                        if let Some(v) = items.get(i) {
                            next.push((join(seg), v));
                        }
                    }
                }
                _ => {}
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

enum Bound {
    Min(f64),
    Max(f64),
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(p) if !p.starts_with("--") => p,
        _ => usage(),
    };
    let mut requires: Vec<String> = vec![
        "report".to_string(),
        "created_unix_ms".to_string(),
        "config".to_string(),
    ];
    let mut bounds: Vec<(String, Bound)> = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--require" => requires.push(args.next().unwrap_or_else(|| usage())),
            "--min" | "--max" => {
                let p = args.next().unwrap_or_else(|| usage());
                let v = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or_else(|| usage());
                bounds.push((
                    p,
                    if flag == "--min" {
                        Bound::Min(v)
                    } else {
                        Bound::Max(v)
                    },
                ));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs-check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("obs-check: {path} is not valid JSON: {e}");
            eprintln!("(note: NaN / Infinity are rejected by design)");
            std::process::exit(1);
        }
    };

    let mut failures = Vec::new();
    for p in &requires {
        let matches = resolve(&doc, p);
        if matches.is_empty() {
            failures.push(format!("missing key: {p}"));
        }
        for (at, v) in matches {
            if v.is_null() {
                failures.push(format!("key is null: {at}"));
            }
        }
    }
    for (p, bound) in &bounds {
        let matches = resolve(&doc, p);
        if matches.is_empty() {
            failures.push(format!("missing key: {p}"));
        }
        for (at, v) in matches {
            match v.as_f64() {
                None => failures.push(format!("non-numeric value at {at}")),
                Some(x) if !x.is_finite() => {
                    failures.push(format!("non-finite value at {at}: {x}"))
                }
                Some(x) => match bound {
                    Bound::Min(min) if x < *min => {
                        failures.push(format!("{at} = {x} below required minimum {min}"))
                    }
                    Bound::Max(max) if x > *max => {
                        failures.push(format!("{at} = {x} above allowed maximum {max}"))
                    }
                    _ => {}
                },
            }
        }
    }

    if failures.is_empty() {
        let name = doc.get("report").and_then(Json::as_str).unwrap_or("?");
        println!(
            "obs-check: {path} OK (report \"{name}\", {} requirement(s))",
            requires.len() + bounds.len()
        );
    } else {
        for f in &failures {
            eprintln!("obs-check: {path}: {f}");
        }
        std::process::exit(1);
    }
}
