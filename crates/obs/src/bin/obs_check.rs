//! `obs-check`: validate a machine-readable [`RunReport`] file.
//!
//! The offline CI image has no `jq`, so report validation is a tiny
//! binary instead: it parses the JSON strictly (our parser rejects
//! `NaN`/`Infinity` outright), checks the standard report envelope, and
//! then enforces caller-specified requirements on dotted paths.
//!
//! ```text
//! obs-check REPORT.json [--require PATH]... [--min PATH VALUE]... [--max PATH VALUE]...
//!           [--histogram-quantile 'name{labels}' pQQ MAX]...
//!           [--profile-share 'path' MAX]... [--flight BUNDLE.jsonl]...
//! ```
//!
//! * `--require a.b.c`  — the path must exist and not be `null`
//! * `--min a.b.c 1.0`  — the path must be a finite number `>= VALUE`
//! * `--max a.b.c 1.0`  — the path must be a finite number `<= VALUE`
//! * `--histogram-quantile 'name{labels}' p99 MAX` — recompute the given
//!   quantile from the exported bucket counts of every matching histogram
//!   (cumulative *and* windowed; the name may contain `*` wildcards) and
//!   require it `<= MAX`. Unlike `--max …p99`, this works for arbitrary
//!   quantiles (`p99.9`) because it reads the raw buckets, and it fails
//!   when no histogram matches — a regression gate that can't silently
//!   pass because a series disappeared.
//! * `--eq-sum TARGET A [B]...` — conservation-law gate: the value at
//!   `TARGET` must equal the sum of the values at the addend paths
//!   (within a tiny float tolerance). Addends are consumed until the
//!   next `--flag`. Wildcarded addends sum over every match, so
//!   `--eq-sum engine.overload.total.offered engine.overload.total.admitted
//!   engine.overload.total.shed` asserts `offered == admitted + shed`.
//! * `--profile-share 'path' MAX` — profiler regression ceiling: every
//!   profile path matching the `*`-glob must have a **self** share
//!   `<= MAX` (a fraction in `[0, 1]`). The input may be a report JSON
//!   with a `profile` section *or* a collapsed-stack file written by
//!   `--profile-out`; like `--histogram-quantile`, the check fails when
//!   no path matches, so a gate can't silently pass because a stage was
//!   renamed or the profiler was left disabled.
//! * `--flight BUNDLE.jsonl` — validate a flight-recorder bundle: header
//!   magic, event ordering, footer count, and CRC32 over the bytes.
//!
//! Path segments may contain `*` wildcards, which is how labeled metric
//! series are addressed: registry snapshots key series Prometheus-style
//! (`serve_queue_depth{shard="0"}`), so
//!
//! ```text
//! --require 'metrics.gauges.serve_queue_depth{shard=*}'
//! ```
//!
//! matches every shard's gauge (label values are compared with their
//! quotes stripped, so patterns don't need shell-hostile `"` characters).
//! A wildcard segment also fans out over arrays. Wildcard requirements
//! must match **at least one** path, and every match must satisfy the
//! bound — `--max 'serve_queue_depth{shard=*}' 100` bounds all shards.
//!
//! Exits 0 when every check passes; prints each failure and exits 1
//! otherwise.
//!
//! [`RunReport`]: rrc_obs::RunReport

use rrc_obs::Json;

fn usage() -> ! {
    eprintln!(
        "usage: obs-check REPORT.json [--require PATH]... [--min PATH VALUE]... \
         [--max PATH VALUE]... [--eq-sum TARGET ADDEND...]... \
         [--histogram-quantile 'name{{labels}}' pQQ MAX]... \
         [--profile-share 'path' MAX]... [--flight BUNDLE.jsonl]..."
    );
    std::process::exit(2);
}

/// `*`-wildcard match (the only metacharacter; everything else literal).
fn glob_match(pattern: &str, text: &str) -> bool {
    let (p, t): (Vec<char>, Vec<char>) = (pattern.chars().collect(), text.chars().collect());
    // Classic two-pointer glob with backtracking over the last `*`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_t) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            star_t = ti;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Does `segment` (possibly wildcarded) select this object key? Metric
/// keys carry quoted label values (`shard="0"`); patterns match against
/// the quote-stripped form so CLI globs stay shell-friendly.
fn segment_matches(segment: &str, key: &str) -> bool {
    if segment == key {
        return true;
    }
    let stripped: String = key.chars().filter(|&c| c != '"').collect();
    if segment == stripped {
        return true;
    }
    segment.contains('*') && (glob_match(segment, key) || glob_match(segment, &stripped))
}

/// All values selected by a dotted path whose segments may contain `*`
/// wildcards, with matched paths (concrete keys) for error messages.
fn resolve<'a>(doc: &'a Json, path: &str) -> Vec<(String, &'a Json)> {
    let mut frontier: Vec<(String, &Json)> = vec![(String::new(), doc)];
    for seg in path.split('.') {
        let mut next = Vec::new();
        for (at, node) in frontier {
            let join = |k: &str| {
                if at.is_empty() {
                    k.to_string()
                } else {
                    format!("{at}.{k}")
                }
            };
            match node {
                Json::Obj(pairs) => {
                    for (k, v) in pairs {
                        if segment_matches(seg, k) {
                            next.push((join(k), v));
                        }
                    }
                }
                Json::Arr(items) => {
                    if seg == "*" {
                        for (i, v) in items.iter().enumerate() {
                            next.push((join(&i.to_string()), v));
                        }
                    } else if let Ok(i) = seg.parse::<usize>() {
                        if let Some(v) = items.get(i) {
                            next.push((join(seg), v));
                        }
                    }
                }
                _ => {}
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

enum Bound {
    Min(f64),
    Max(f64),
}

/// A `--histogram-quantile` assertion: `name{labels}` pattern, quantile
/// in `[0, 1]`, allowed maximum.
struct QuantileCheck {
    pattern: String,
    spec: String,
    q: f64,
    max: f64,
}

/// A `--profile-share` assertion: every profile path matching the glob
/// must spend at most `max` of the sampled work time in its own frame.
struct ProfileShareCheck {
    pattern: String,
    max: f64,
}

/// Run one `--profile-share` assertion against parsed profile entries
/// (from either a report's `profile.shares` section or a collapsed
/// file). A ceiling check with no matching path is a failure: the gate
/// must notice when the stage it guards disappears from the profile.
fn check_profile_share(
    entries: &[rrc_obs::ProfileEntry],
    check: &ProfileShareCheck,
    failures: &mut Vec<String>,
) {
    let mut matched = 0usize;
    for entry in entries {
        if !rrc_obs::profile::glob_match(&check.pattern, &entry.path) {
            continue;
        }
        matched += 1;
        if entry.self_share > check.max {
            failures.push(format!(
                "profile path {} self share = {:.4} above allowed maximum {}",
                entry.path, entry.self_share, check.max
            ));
        }
    }
    if matched == 0 {
        failures.push(format!(
            "no profile path matches {} (for self share <= {})",
            check.pattern, check.max
        ));
    }
}

/// An `--eq-sum` assertion: the target path must equal the sum of the
/// addend paths. This is how CI states conservation laws
/// (`offered == admitted + shed`) without a `jq` dependency.
struct EqSumCheck {
    target: String,
    addends: Vec<String>,
}

/// Sum every numeric value a path resolves to; an empty or non-numeric
/// resolution is an error, not a zero — a conservation gate must not
/// silently pass because a counter disappeared.
fn sum_path(doc: &Json, path: &str, failures: &mut Vec<String>) -> Option<f64> {
    let matches = resolve(doc, path);
    if matches.is_empty() {
        failures.push(format!("missing key: {path}"));
        return None;
    }
    let mut total = 0.0;
    for (at, v) in matches {
        match v.as_f64() {
            Some(x) if x.is_finite() => total += x,
            _ => {
                failures.push(format!("non-numeric value at {at}"));
                return None;
            }
        }
    }
    Some(total)
}

/// Run one `--eq-sum` assertion. Counters arrive as exact integers but
/// travel as JSON numbers, so equality allows a relative 1e-9 slack.
fn check_eq_sum(doc: &Json, check: &EqSumCheck, failures: &mut Vec<String>) {
    let Some(target) = sum_path(doc, &check.target, failures) else {
        return;
    };
    let mut sum = 0.0;
    for addend in &check.addends {
        match sum_path(doc, addend, failures) {
            Some(x) => sum += x,
            None => return,
        }
    }
    let tolerance = 1e-9 * target.abs().max(sum.abs()).max(1.0);
    if (target - sum).abs() > tolerance {
        failures.push(format!(
            "conservation violated: {} = {target} but {} sums to {sum}",
            check.target,
            check.addends.join(" + ")
        ));
    }
}

/// Parse `p99` / `p99.9` / `p50` into a quantile in `[0, 1]`.
fn parse_quantile(spec: &str) -> Option<f64> {
    let pct: f64 = spec.strip_prefix('p')?.parse().ok()?;
    (0.0..=100.0).contains(&pct).then_some(pct / 100.0)
}

/// Recompute a quantile from an exported histogram object
/// (`{"count":…, "max":…, "buckets":[[lower_bound, count],…]}`) using
/// the same rank + geometric-bucket-midpoint rule as the live
/// `HistogramSnapshot::quantile`.
fn quantile_from_buckets(hist: &Json, q: f64) -> Option<f64> {
    let count = hist.get("count").and_then(Json::as_u64)?;
    if count == 0 {
        return None;
    }
    let max = hist.get("max").and_then(Json::as_u64)?;
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    if rank == count {
        return Some(max as f64);
    }
    let buckets = match hist.get("buckets") {
        Some(Json::Arr(items)) => items,
        _ => return None,
    };
    let mut seen = 0u64;
    for entry in buckets {
        let (lo, c) = match entry {
            Json::Arr(pair) if pair.len() == 2 => (
                pair[0].as_u64()?, //
                pair[1].as_u64()?,
            ),
            _ => return None,
        };
        seen += c;
        if seen >= rank {
            // Geometric mean of the power-of-two bucket [lo, 2·lo).
            let mid = lo as f64 * std::f64::consts::SQRT_2;
            return Some(mid.min(max as f64));
        }
    }
    None
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    // The report path is optional when only validating flight bundles
    // (a crash run dies before it can write its report JSON).
    let path = match args.peek() {
        Some(p) if !p.starts_with("--") => args.next(),
        _ => None,
    };
    let mut requires: Vec<String> = vec![
        "report".to_string(),
        "created_unix_ms".to_string(),
        "config".to_string(),
    ];
    let mut bounds: Vec<(String, Bound)> = Vec::new();
    let mut quantiles: Vec<QuantileCheck> = Vec::new();
    let mut eq_sums: Vec<EqSumCheck> = Vec::new();
    let mut profile_shares: Vec<ProfileShareCheck> = Vec::new();
    let mut flights: Vec<String> = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--require" => requires.push(args.next().unwrap_or_else(|| usage())),
            "--min" | "--max" => {
                let p = args.next().unwrap_or_else(|| usage());
                let v = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or_else(|| usage());
                bounds.push((
                    p,
                    if flag == "--min" {
                        Bound::Min(v)
                    } else {
                        Bound::Max(v)
                    },
                ));
            }
            "--histogram-quantile" => {
                let pattern = args.next().unwrap_or_else(|| usage());
                let spec = args.next().unwrap_or_else(|| usage());
                let q = parse_quantile(&spec).unwrap_or_else(|| usage());
                let max = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| v.is_finite())
                    .unwrap_or_else(|| usage());
                quantiles.push(QuantileCheck {
                    pattern,
                    spec,
                    q,
                    max,
                });
            }
            "--eq-sum" => {
                let target = args.next().unwrap_or_else(|| usage());
                let mut addends = Vec::new();
                // Addends run until the next `--flag` (or the end).
                while let Some(next) = args.peek() {
                    if next.starts_with("--") {
                        break;
                    }
                    addends.push(args.next().unwrap());
                }
                if addends.is_empty() {
                    usage();
                }
                eq_sums.push(EqSumCheck { target, addends });
            }
            "--profile-share" => {
                let pattern = args.next().unwrap_or_else(|| usage());
                let max = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| v.is_finite() && (0.0..=1.0).contains(v))
                    .unwrap_or_else(|| usage());
                profile_shares.push(ProfileShareCheck { pattern, max });
            }
            "--flight" => flights.push(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let report_checks =
        requires.len() > 3 || !bounds.is_empty() || !quantiles.is_empty() || !eq_sums.is_empty();
    if path.is_none() && (flights.is_empty() || report_checks || !profile_shares.is_empty()) {
        usage();
    }

    let mut failures = Vec::new();
    let mut checked = flights.len();
    if let Some(path) = &path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-check: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        // A collapsed-stack profile (`--profile-out`) is plain text, not
        // JSON; accept it directly when only profile gates were asked for.
        let collapsed_profile =
            !report_checks && !profile_shares.is_empty() && !text.trim_start().starts_with('{');
        if !profile_shares.is_empty() {
            checked += profile_shares.len();
            match rrc_obs::profile::parse_profile_text(&text) {
                Ok(entries) => {
                    for check in &profile_shares {
                        check_profile_share(&entries, check, &mut failures);
                    }
                }
                Err(e) => failures.push(format!("cannot parse profile from {path}: {e}")),
            }
        }
        if collapsed_profile {
            if failures.is_empty() {
                println!("obs-check: {path} OK (collapsed profile)");
            }
        } else {
            run_report_checks(
                path,
                &text,
                &requires,
                &bounds,
                &quantiles,
                &eq_sums,
                &mut checked,
                &mut failures,
            );
        }
    }

    for bundle in &flights {
        match rrc_obs::validate_flight_bundle(std::path::Path::new(bundle)) {
            Ok(stats) => println!(
                "obs-check: flight bundle {bundle} OK ({} events, crc {:#010x})",
                stats.events, stats.crc32
            ),
            Err(e) => failures.push(format!("flight bundle {bundle}: {e}")),
        }
    }

    if failures.is_empty() {
        println!("obs-check: {checked} requirement(s) satisfied");
    } else {
        for f in &failures {
            eprintln!("obs-check: {f}");
        }
        std::process::exit(1);
    }
}

/// Parse the report JSON and run the envelope / bound / quantile /
/// conservation checks against it.
#[allow(clippy::too_many_arguments)]
fn run_report_checks(
    path: &str,
    text: &str,
    requires: &[String],
    bounds: &[(String, Bound)],
    quantiles: &[QuantileCheck],
    eq_sums: &[EqSumCheck],
    checked: &mut usize,
    failures: &mut Vec<String>,
) {
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("obs-check: {path} is not valid JSON: {e}");
            eprintln!("(note: NaN / Infinity are rejected by design)");
            std::process::exit(1);
        }
    };

    *checked += requires.len() + bounds.len() + quantiles.len() + eq_sums.len();
    for p in requires {
        let matches = resolve(&doc, p);
        if matches.is_empty() {
            failures.push(format!("missing key: {p}"));
        }
        for (at, v) in matches {
            if v.is_null() {
                failures.push(format!("key is null: {at}"));
            }
        }
    }
    for (p, bound) in bounds {
        let matches = resolve(&doc, p);
        if matches.is_empty() {
            failures.push(format!("missing key: {p}"));
        }
        for (at, v) in matches {
            match v.as_f64() {
                None => failures.push(format!("non-numeric value at {at}")),
                Some(x) if !x.is_finite() => {
                    failures.push(format!("non-finite value at {at}: {x}"))
                }
                Some(x) => match bound {
                    Bound::Min(min) if x < *min => {
                        failures.push(format!("{at} = {x} below required minimum {min}"))
                    }
                    Bound::Max(max) if x > *max => {
                        failures.push(format!("{at} = {x} above allowed maximum {max}"))
                    }
                    _ => {}
                },
            }
        }
    }
    for check in quantiles {
        check_quantile(&doc, check, failures);
    }
    for check in eq_sums {
        check_eq_sum(&doc, check, failures);
    }

    if failures.is_empty() {
        let name = doc.get("report").and_then(Json::as_str).unwrap_or("?");
        println!("obs-check: {path} OK (report \"{name}\")");
    }
}

/// Run one `--histogram-quantile` assertion against the report's
/// cumulative and windowed histogram sections.
fn check_quantile(doc: &Json, check: &QuantileCheck, failures: &mut Vec<String>) {
    let mut matched = 0usize;
    for section in ["metrics.histograms", "metrics.windowed_histograms"] {
        let hists = match doc.at(section) {
            Some(Json::Obj(pairs)) => pairs,
            _ => continue,
        };
        for (key, hist) in hists {
            if !segment_matches(&check.pattern, key) {
                continue;
            }
            matched += 1;
            let at = format!("{section}.{key}");
            match quantile_from_buckets(hist, check.q) {
                None => failures.push(format!(
                    "{at}: cannot compute {} (empty histogram or malformed buckets)",
                    check.spec
                )),
                Some(x) if x > check.max => failures.push(format!(
                    "{at} {} = {x} above allowed maximum {}",
                    check.spec, check.max
                )),
                Some(_) => {}
            }
        }
    }
    if matched == 0 {
        failures.push(format!(
            "no histogram matches {} (for {} <= {})",
            check.pattern, check.spec, check.max
        ));
    }
}
