//! `rrc-prof`: inspect and compare profiles from the rrc-obs sampling
//! profiler.
//!
//! Reads either output form the profiler emits — collapsed-stack text
//! (`serve;shard;score 1234` lines, the flamegraph.pl/inferno input
//! format) or a JSON run report carrying a `profile` section — and
//! answers the two questions every perf PR gets asked:
//!
//! * `rrc-prof top FILE` — where do cycles (and allocations) go *now*?
//! * `rrc-prof diff A B` — what moved between two runs? Per-path
//!   self-share deltas in percentage points over the union of paths,
//!   with `--fail-on-grow PATTERN PCT` turning any growth beyond `PCT`
//!   points on matching paths into a non-zero exit — the CI regression
//!   gate.
//!
//! ```text
//! rrc-prof top serve.collapsed -n 10
//! rrc-prof diff base.collapsed pr.collapsed --fail-on-grow '*' 2
//! rrc-prof diff base.json pr.json --fail-on-grow 'serve/shard/score*' 1.5
//! ```
//!
//! Exit status: 0 clean, 1 a `--fail-on-grow` gate fired, 2 usage or
//! input error.

use std::collections::BTreeMap;
use std::process::ExitCode;

use rrc_obs::profile::{glob_match, parse_profile_text, ProfileEntry};

fn usage() -> String {
    [
        "usage: rrc-prof <command> [args]",
        "",
        "commands:",
        "  top FILE [-n N]",
        "      Show the N hottest paths by self share (default 20), with",
        "      total shares and allocation attribution when the input is",
        "      a JSON report (collapsed text carries samples only).",
        "",
        "  diff BASE NEW [-n N] [--fail-on-grow PATTERN PCT]...",
        "      Compare two profiles: per-path self-share delta in",
        "      percentage points (NEW - BASE) over the union of paths",
        "      (a path absent from one side counts as 0). Shows the N",
        "      largest movers (default 20). Each --fail-on-grow gate",
        "      fails the run (exit 1) when any path matching PATTERN",
        "      (two-pointer `*` glob) grew by more than PCT points.",
        "",
        "inputs: collapsed-stack text (`a;b;c N` lines) or a JSON run",
        "report with a `profile.shares` section (bare section also ok).",
    ]
    .join("\n")
}

fn load(path: &str) -> Result<Vec<ProfileEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_profile_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn fmt_share(share: f64) -> String {
    format!("{:6.2}%", share * 100.0)
}

fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

fn cmd_top(file: &str, n: usize) -> Result<(), String> {
    let entries = load(file)?;
    if entries.is_empty() {
        println!("(empty profile: no sampled paths in {file})");
        return Ok(());
    }
    let has_alloc = entries.iter().any(|e| e.alloc_count > 0);
    println!("{:>8} {:>8} {:>10}  path", "self", "total", "samples");
    for e in entries.iter().take(n) {
        let alloc = if has_alloc && e.alloc_count > 0 {
            format!("  [{} allocs, {}]", e.alloc_count, fmt_bytes(e.alloc_bytes))
        } else {
            String::new()
        };
        println!(
            "{:>8} {:>8} {:>10}  {}{}",
            fmt_share(e.self_share),
            fmt_share(e.total_share),
            e.samples,
            e.path,
            alloc
        );
    }
    if entries.len() > n {
        println!("  … {} more paths (-n to widen)", entries.len() - n);
    }
    Ok(())
}

/// One `--fail-on-grow PATTERN PCT` gate.
struct GrowGate {
    pattern: String,
    max_growth_pp: f64,
}

fn cmd_diff(base: &str, new: &str, n: usize, gates: &[GrowGate]) -> Result<bool, String> {
    let base_entries = load(base)?;
    let new_entries = load(new)?;
    // Union of paths; absent side contributes zero share.
    let mut deltas: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    for e in &base_entries {
        deltas.entry(&e.path).or_insert((0.0, 0.0)).0 = e.self_share;
    }
    for e in &new_entries {
        deltas.entry(&e.path).or_insert((0.0, 0.0)).1 = e.self_share;
    }
    let mut rows: Vec<(&str, f64, f64, f64)> = deltas
        .iter()
        .map(|(path, &(a, b))| (*path, a, b, (b - a) * 100.0))
        .collect();
    rows.sort_by(|x, y| {
        y.3.abs()
            .partial_cmp(&x.3.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.0.cmp(y.0))
    });

    println!("profile diff: {base} -> {new} ({} paths)", rows.len());
    println!("{:>8} {:>8} {:>9}  path", "base", "new", "delta");
    for (path, a, b, d) in rows.iter().take(n) {
        println!(
            "{:>8} {:>8} {:>8.2}p  {}",
            fmt_share(*a),
            fmt_share(*b),
            d,
            path
        );
    }
    if rows.len() > n {
        println!("  … {} more paths (-n to widen)", rows.len() - n);
    }

    let mut breached = false;
    for gate in gates {
        let mut matched = false;
        for (path, _, _, d) in &rows {
            if !glob_match(&gate.pattern, path) {
                continue;
            }
            matched = true;
            if *d > gate.max_growth_pp {
                breached = true;
                println!(
                    "FAIL --fail-on-grow {:?} {}: {} grew {:.2}pp (limit {:.2}pp)",
                    gate.pattern, gate.max_growth_pp, path, d, gate.max_growth_pp
                );
            }
        }
        if !matched {
            println!(
                "note: --fail-on-grow {:?} matched no path in either profile",
                gate.pattern
            );
        }
    }
    if breached {
        println!("rrc-prof: FAIL ({} gate(s) configured)", gates.len());
    } else if !gates.is_empty() {
        println!("rrc-prof: OK (all {} gate(s) within limits)", gates.len());
    }
    Ok(breached)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "top" => {
            let mut file = None;
            let mut n = 20usize;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "-n" => {
                        n = it
                            .next()
                            .ok_or("-n needs a value")?
                            .parse()
                            .map_err(|e| format!("-n: {e}"))?;
                    }
                    _ if file.is_none() => file = Some(a.clone()),
                    other => return Err(format!("unexpected argument {other:?}\n\n{}", usage())),
                }
            }
            let file = file.ok_or_else(|| format!("top: missing FILE\n\n{}", usage()))?;
            cmd_top(&file, n.max(1))?;
            Ok(false)
        }
        "diff" => {
            let mut files: Vec<String> = Vec::new();
            let mut n = 20usize;
            let mut gates: Vec<GrowGate> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "-n" => {
                        n = it
                            .next()
                            .ok_or("-n needs a value")?
                            .parse()
                            .map_err(|e| format!("-n: {e}"))?;
                    }
                    "--fail-on-grow" => {
                        let pattern = it
                            .next()
                            .ok_or("--fail-on-grow needs PATTERN and PCT")?
                            .clone();
                        let pct: f64 = it
                            .next()
                            .ok_or("--fail-on-grow needs PCT after PATTERN")?
                            .parse()
                            .map_err(|e| format!("--fail-on-grow PCT: {e}"))?;
                        gates.push(GrowGate {
                            pattern,
                            max_growth_pp: pct,
                        });
                    }
                    _ if files.len() < 2 => files.push(a.clone()),
                    other => return Err(format!("unexpected argument {other:?}\n\n{}", usage())),
                }
            }
            if files.len() != 2 {
                return Err(format!("diff: need BASE and NEW\n\n{}", usage()));
            }
            cmd_diff(&files[0], &files[1], n.max(1), &gates)
        }
        "-h" | "--help" | "help" => {
            println!("{}", usage());
            Ok(false)
        }
        "" => Err(usage()),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("rrc-prof: {msg}");
            ExitCode::from(2)
        }
    }
}
