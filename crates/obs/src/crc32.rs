//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`). Table-driven,
//! built at compile time; hand-rolled because the workspace vendors its
//! dependency set.
//!
//! Lives at the bottom of the workspace graph so every integrity-checked
//! artifact shares one implementation: `rrc-store` section payloads
//! re-export it, and the [`forensics`](crate::forensics) flight-recorder
//! bundle footers use it directly.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes` (same parameters as zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib implementation.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }
}
