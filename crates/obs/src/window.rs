//! Windowed metrics: a ring of epoch buckets behind every rolling rate
//! and rolling quantile.
//!
//! Cumulative counters answer "how much since the process started";
//! operating a serving system needs "how much *lately*". Each windowed
//! metric owns a fixed ring of `slots` epoch buckets of `epoch` duration
//! each, so the live window spans `slots × epoch`. Recording tags the
//! bucket for the current epoch (lazily reclaiming buckets whose epoch
//! has expired — rotation happens on access, there is no background
//! thread); reading sums only buckets whose epoch is still inside the
//! window. Everything stays wait-free: recording is a tag check plus
//! relaxed `fetch_add`s, reading is a pass over the ring.
//!
//! The rotation race is benign by design: when a bucket is reclaimed for
//! a new epoch, samples racing into it from the dying epoch's final
//! nanoseconds may be dropped or counted into the new epoch. That is an
//! error of at most a handful of samples per rotation, invisible next to
//! the factor-of-two bucket resolution of the histograms themselves.
//!
//! Every operation has a deterministic `*_at(now_ns)` twin taking
//! nanoseconds since the metric's creation; the clocked entry points
//! ([`WindowedCounter::add`], …) simply stamp `now_ns` from a monotonic
//! [`Instant`]. Tests drive the `_at` forms directly, which is how the
//! epoch-boundary edge cases stay exactly reproducible.

use crate::metrics::{HistogramSnapshot, BUCKETS};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shape of a windowed metric: `slots` ring buckets of `epoch` each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Number of ring buckets (clamped to ≥ 2 at construction: one live
    /// bucket plus at least one settled one).
    pub slots: usize,
    /// Duration of one bucket.
    pub epoch: Duration,
}

impl WindowSpec {
    /// The rolling horizon: `slots × epoch`.
    pub fn window(&self) -> Duration {
        self.epoch * self.slots as u32
    }
}

impl Default for WindowSpec {
    /// 15 buckets × 4 s = a one-minute rolling window.
    fn default() -> Self {
        WindowSpec {
            slots: 15,
            epoch: Duration::from_secs(4),
        }
    }
}

/// Epoch bookkeeping shared by every windowed metric: which 1-based epoch
/// tag a slot currently holds, and which slots are live at a read.
#[derive(Debug)]
struct Ring {
    epoch_ns: u64,
    /// 1-based epoch tag per slot; 0 = never used.
    tags: Vec<AtomicU64>,
    origin: Instant,
}

impl Ring {
    fn new(spec: WindowSpec) -> Ring {
        let slots = spec.slots.max(2);
        Ring {
            epoch_ns: spec.epoch.as_nanos().clamp(1, u64::MAX as u128) as u64,
            tags: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            origin: Instant::now(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// `now_ns` for a caller-held stamp — hot paths that already took an
    /// [`Instant`] skip the extra clock read (clamped to 0 for stamps
    /// predating the metric).
    fn now_ns_of(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.origin)
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    fn slots(&self) -> usize {
        self.tags.len()
    }

    /// The 1-based epoch tag for `now_ns`.
    fn tag_of(&self, now_ns: u64) -> u64 {
        now_ns / self.epoch_ns + 1
    }

    /// Claim the slot for `now_ns`'s epoch. Returns `(index, reclaimed)`:
    /// when `reclaimed` is true this thread won the rotation race and must
    /// zero the slot's payload before recording into it.
    fn claim(&self, now_ns: u64) -> (usize, bool) {
        let tag = self.tag_of(now_ns);
        let idx = (tag % self.slots() as u64) as usize;
        let seen = self.tags[idx].load(Ordering::Acquire);
        if seen == tag {
            return (idx, false);
        }
        let won = self.tags[idx]
            .compare_exchange(seen, tag, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        (idx, won)
    }

    /// True when `idx`'s bucket belongs to the live window ending at
    /// `now_ns`: its epoch is one of the most recent `slots` epochs.
    fn is_live(&self, idx: usize, now_ns: u64) -> bool {
        let tag = self.tags[idx].load(Ordering::Acquire);
        let now_tag = self.tag_of(now_ns);
        tag != 0 && tag <= now_tag && now_tag - tag < self.slots() as u64
    }

    /// Wall-clock span the live window actually covers at `now_ns`:
    /// `slots − 1` settled epochs plus the partial current one, clamped to
    /// the metric's age (a young metric's window is its whole lifetime).
    fn covered_at(&self, now_ns: u64) -> Duration {
        let full = (self.slots() as u64 - 1).saturating_mul(self.epoch_ns);
        Duration::from_nanos(now_ns.min(full + now_ns % self.epoch_ns))
    }
}

/// A counter over the rolling window: `add` lands in the current epoch
/// bucket; [`WindowedCounter::window_total`] and
/// [`WindowedCounter::rate_per_sec`] read only the live window.
#[derive(Debug)]
pub struct WindowedCounter {
    ring: Ring,
    counts: Vec<AtomicU64>,
}

impl WindowedCounter {
    pub fn new(spec: WindowSpec) -> Self {
        let ring = Ring::new(spec);
        let counts = (0..ring.slots()).map(|_| AtomicU64::new(0)).collect();
        WindowedCounter { ring, counts }
    }

    /// The configured rolling horizon.
    pub fn window(&self) -> Duration {
        Duration::from_nanos(self.ring.epoch_ns.saturating_mul(self.ring.slots() as u64))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.add_at(self.ring.now_ns(), n);
    }

    /// [`WindowedCounter::add`] against a caller-held stamp, saving the
    /// clock read on paths that already have one.
    #[inline]
    pub fn add_at_instant(&self, at: Instant, n: u64) {
        self.add_at(self.ring.now_ns_of(at), n);
    }

    /// Deterministic twin of [`WindowedCounter::add`]: record at
    /// `now_ns` nanoseconds after creation.
    pub fn add_at(&self, now_ns: u64, n: u64) {
        let (idx, reclaimed) = self.ring.claim(now_ns);
        if reclaimed {
            self.counts[idx].store(0, Ordering::Release);
        }
        self.counts[idx].fetch_add(n, Ordering::Relaxed);
    }

    /// Sum over the live window.
    pub fn window_total(&self) -> u64 {
        self.window_total_at(self.ring.now_ns())
    }

    /// Deterministic twin of [`WindowedCounter::window_total`].
    pub fn window_total_at(&self, now_ns: u64) -> u64 {
        (0..self.ring.slots())
            .filter(|&i| self.ring.is_live(i, now_ns))
            .map(|i| self.counts[i].load(Ordering::Relaxed))
            .sum()
    }

    /// Events per second over the covered window span (0 when nothing has
    /// elapsed yet).
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec_at(self.ring.now_ns())
    }

    /// Deterministic twin of [`WindowedCounter::rate_per_sec`].
    pub fn rate_per_sec_at(&self, now_ns: u64) -> f64 {
        let covered = self.covered_at(now_ns).as_secs_f64();
        if covered <= 0.0 {
            0.0
        } else {
            self.window_total_at(now_ns) as f64 / covered
        }
    }

    /// The span the live window covers right now (≤ the configured
    /// window; a young counter's window is its whole lifetime).
    pub fn covered(&self) -> Duration {
        self.covered_at(self.ring.now_ns())
    }

    /// Deterministic twin of [`WindowedCounter::covered`].
    pub fn covered_at(&self, now_ns: u64) -> Duration {
        self.ring.covered_at(now_ns)
    }
}

/// A signed accumulator over the rolling window — the building block for
/// rolling means of quantities that may be negative (predicted scores,
/// feature deltas). Pair it with a [`WindowedCounter`] holding the sample
/// count.
#[derive(Debug)]
pub struct WindowedSum {
    ring: Ring,
    sums: Vec<AtomicI64>,
}

impl WindowedSum {
    pub fn new(spec: WindowSpec) -> Self {
        let ring = Ring::new(spec);
        let sums = (0..ring.slots()).map(|_| AtomicI64::new(0)).collect();
        WindowedSum { ring, sums }
    }

    #[inline]
    pub fn add(&self, v: i64) {
        self.add_at(self.ring.now_ns(), v);
    }

    /// Deterministic twin of [`WindowedSum::add`].
    pub fn add_at(&self, now_ns: u64, v: i64) {
        let (idx, reclaimed) = self.ring.claim(now_ns);
        if reclaimed {
            self.sums[idx].store(0, Ordering::Release);
        }
        self.sums[idx].fetch_add(v, Ordering::Relaxed);
    }

    /// Signed sum over the live window.
    pub fn window_sum(&self) -> i64 {
        self.window_sum_at(self.ring.now_ns())
    }

    /// Deterministic twin of [`WindowedSum::window_sum`].
    pub fn window_sum_at(&self, now_ns: u64) -> i64 {
        (0..self.ring.slots())
            .filter(|&i| self.ring.is_live(i, now_ns))
            .map(|i| self.sums[i].load(Ordering::Relaxed))
            .sum()
    }
}

/// Per-slot histogram payload: power-of-two buckets plus sum and max,
/// mirroring [`crate::metrics::Histogram`].
#[derive(Debug)]
struct HistSlot {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistSlot {
    fn new() -> Self {
        HistSlot {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Release);
    }
}

/// `floor(log2(max(v, 1)))` — same bucketing as the cumulative histogram.
#[inline]
fn bucket_index(value: u64) -> usize {
    (63 - value.max(1).leading_zeros()) as usize
}

/// A histogram over the rolling window: quantiles of only the last
/// `slots × epoch` of samples, merged across live epoch buckets into one
/// [`HistogramSnapshot`].
#[derive(Debug)]
pub struct WindowedHistogram {
    ring: Ring,
    slots: Vec<HistSlot>,
}

impl WindowedHistogram {
    pub fn new(spec: WindowSpec) -> Self {
        let ring = Ring::new(spec);
        let slots = (0..ring.slots()).map(|_| HistSlot::new()).collect();
        WindowedHistogram { ring, slots }
    }

    /// The configured rolling horizon.
    pub fn window(&self) -> Duration {
        Duration::from_nanos(self.ring.epoch_ns.saturating_mul(self.ring.slots() as u64))
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.record_at(self.ring.now_ns(), value);
    }

    /// Record an elapsed time as nanoseconds.
    #[inline]
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// [`WindowedHistogram::record`] against a caller-held stamp, saving
    /// the clock read on paths that already have one.
    #[inline]
    pub fn record_at_instant(&self, at: Instant, value: u64) {
        self.record_at(self.ring.now_ns_of(at), value);
    }

    /// Deterministic twin of [`WindowedHistogram::record`].
    pub fn record_at(&self, now_ns: u64, value: u64) {
        let (idx, reclaimed) = self.ring.claim(now_ns);
        let slot = &self.slots[idx];
        if reclaimed {
            slot.reset();
        }
        slot.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
        slot.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merge the live epoch buckets into one snapshot; quantile queries on
    /// it are then allocation-free, exactly as for the cumulative
    /// histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.snapshot_at(self.ring.now_ns())
    }

    /// Deterministic twin of [`WindowedHistogram::snapshot`].
    pub fn snapshot_at(&self, now_ns: u64) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for i in 0..self.ring.slots() {
            if !self.ring.is_live(i, now_ns) {
                continue;
            }
            let slot = &self.slots[i];
            for (acc, b) in buckets.iter_mut().zip(&slot.buckets) {
                *acc = acc.wrapping_add(b.load(Ordering::Relaxed));
            }
            sum = sum.wrapping_add(slot.sum.load(Ordering::Relaxed));
            max = max.max(slot.max.load(Ordering::Relaxed));
        }
        HistogramSnapshot::from_parts(buckets, sum, max)
    }

    /// The span the live window covers right now.
    pub fn covered(&self) -> Duration {
        self.ring.covered_at(self.ring.now_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const EPOCH: u64 = 1_000; // ns, for readable arithmetic
    fn spec(slots: usize) -> WindowSpec {
        WindowSpec {
            slots,
            epoch: Duration::from_nanos(EPOCH),
        }
    }

    #[test]
    fn empty_window_reads_zero_everywhere() {
        let c = WindowedCounter::new(spec(4));
        assert_eq!(c.window_total_at(0), 0);
        assert_eq!(c.rate_per_sec_at(0), 0.0);
        let h = WindowedHistogram::new(spec(4));
        let snap = h.snapshot_at(0);
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p99(), None);
        assert_eq!(snap.mean(), None);
        let s = WindowedSum::new(spec(4));
        assert_eq!(s.window_sum_at(5 * EPOCH), 0);
    }

    #[test]
    fn samples_expire_after_exactly_slots_epochs() {
        let c = WindowedCounter::new(spec(4));
        c.add_at(0, 7); // epoch 0
                        // Visible through the last instant of epoch 3 (window = 4 epochs)…
        for now in [0, EPOCH, 3 * EPOCH, 4 * EPOCH - 1] {
            assert_eq!(c.window_total_at(now), 7, "now={now}");
        }
        // …and gone the moment epoch 4 starts: the boundary read at
        // exactly `slots × epoch` no longer sees epoch 0.
        assert_eq!(c.window_total_at(4 * EPOCH), 0);
    }

    #[test]
    fn record_exactly_on_epoch_boundary_lands_in_the_new_epoch() {
        let c = WindowedCounter::new(spec(3));
        c.add_at(EPOCH, 1); // first nanosecond of epoch 1
        c.add_at(EPOCH - 1, 10); // last nanosecond of epoch 0
        assert_eq!(c.window_total_at(EPOCH), 11);
        // At epoch 3 the boundary sample (epoch 1) is still live, the
        // epoch-0 sample is not.
        assert_eq!(c.window_total_at(3 * EPOCH), 1);
        assert_eq!(c.window_total_at(4 * EPOCH), 0);
    }

    #[test]
    fn slot_reuse_reclaims_old_epochs() {
        let c = WindowedCounter::new(spec(3));
        c.add_at(0, 5); // epoch 0 → slot 1
                        // Epoch 3 maps onto the same slot; claiming it must discard the
                        // epoch-0 payload, not add to it.
        c.add_at(3 * EPOCH, 2);
        assert_eq!(c.window_total_at(3 * EPOCH), 2);
    }

    #[test]
    fn rate_uses_covered_span_not_full_window() {
        let c = WindowedCounter::new(spec(10));
        // 100 events in the first half-epoch of a young counter: the
        // window has only covered 500ns of wall clock, not 10 epochs.
        c.add_at(0, 50);
        c.add_at(400, 50);
        let rate = c.rate_per_sec_at(500);
        let expect = 100.0 / Duration::from_nanos(500).as_secs_f64();
        assert!((rate - expect).abs() / expect < 1e-9, "rate={rate}");
        // An old counter's covered span saturates at slots-1 full epochs
        // plus the partial current one.
        assert_eq!(
            c.covered_at(100 * EPOCH + 250),
            Duration::from_nanos(9 * EPOCH + 250)
        );
    }

    #[test]
    fn windowed_histogram_rolls_quantiles() {
        let h = WindowedHistogram::new(spec(4));
        for i in 0..100 {
            h.record_at(i, 1_000_000); // epoch 0: 1ms samples
        }
        h.record_at(5 * EPOCH, 1_000); // epoch 5: one 1µs sample
                                       // Read inside epoch 5: epoch 0 has rolled out; only the fresh
                                       // sample remains, so the whole distribution collapses onto it.
        let snap = h.snapshot_at(5 * EPOCH + 10);
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.max(), Some(1_000));
        assert_eq!(snap.quantile(0.99), Some(1_000));
        // Read back inside the window that still contained epoch 0.
        let early = h.snapshot_at(EPOCH);
        assert_eq!(early.count(), 100);
        assert!(early.p50().unwrap() >= 524_288, "{:?}", early.p50());
    }

    #[test]
    fn windowed_sum_tracks_signed_values() {
        let s = WindowedSum::new(spec(4));
        s.add_at(0, -500);
        s.add_at(EPOCH, 200);
        assert_eq!(s.window_sum_at(EPOCH + 1), -300);
        // Epoch 0 rolls out at now = 4·EPOCH; only +200 remains.
        assert_eq!(s.window_sum_at(4 * EPOCH), 200);
        assert_eq!(s.window_sum_at(5 * EPOCH), 0);
    }

    #[test]
    fn concurrent_record_during_rotation_stays_sane() {
        // Writers hammer a 2-slot ring whose epochs rotate every few
        // microseconds while a reader snapshots continuously. The claim
        // race may drop a bounded handful of samples at each rotation;
        // totals must never exceed what was written and nothing may panic
        // or deadlock.
        let spec = WindowSpec {
            slots: 2,
            epoch: Duration::from_micros(50),
        };
        let c = Arc::new(WindowedCounter::new(spec));
        let h = Arc::new(WindowedHistogram::new(spec));
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 50_000;
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        c.inc();
                        h.record(w as u64 * 1_000 + i % 1_000 + 1);
                    }
                })
            })
            .collect();
        while !writers.iter().all(|t| t.is_finished()) {
            let total = c.window_total();
            assert!(total <= WRITERS as u64 * PER_WRITER);
            let snap = h.snapshot();
            if snap.count() > 0 {
                assert!(snap.quantile(0.5).unwrap() <= snap.max().unwrap());
            }
        }
        for t in writers {
            t.join().unwrap();
        }
        // Everything still recorded within the last window is a subset of
        // what was written.
        assert!(c.window_total() <= WRITERS as u64 * PER_WRITER);
    }

    #[test]
    fn clocked_entry_points_agree_with_wall_clock() {
        let c = WindowedCounter::new(WindowSpec::default());
        c.inc();
        c.add(4);
        assert_eq!(c.window_total(), 5);
        assert!(c.rate_per_sec() > 0.0);
        assert!(c.covered() <= WindowSpec::default().window());
        let h = WindowedHistogram::new(WindowSpec::default());
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.snapshot().count(), 1);
        assert_eq!(h.window(), WindowSpec::default().window());
    }

    #[test]
    fn tiny_slot_counts_are_clamped() {
        let c = WindowedCounter::new(WindowSpec {
            slots: 0,
            epoch: Duration::from_nanos(EPOCH),
        });
        c.add_at(0, 3);
        assert_eq!(c.window_total_at(0), 3);
        assert_eq!(c.window(), Duration::from_nanos(2 * EPOCH));
    }
}
