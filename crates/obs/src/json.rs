//! A minimal JSON value: writer **and** parser.
//!
//! The workspace builds offline with no registry access, so there is no
//! `serde`; everything machine-readable (metric snapshots, JSONL events,
//! [`RunReport`](crate::RunReport) files) goes through this one small
//! [`Json`] enum instead. The renderer never emits `NaN`/`Infinity`
//! (non-finite floats become `null`, keeping output parseable by any
//! JSON consumer), and the parser rejects them, which is exactly the
//! property the CI report checker (`obs-check`) relies on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document.
///
/// Integers keep their own variants so `u64` counters render exactly
/// (no `f64` rounding at 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (rendered in the order given).
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Dotted-path lookup (`"results.events_per_sec"`). Array elements are
    /// addressed by decimal index segments (`"shards.0.observes"`).
    pub fn at(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = match cur {
                Json::Obj(_) => cur.get(seg)?,
                Json::Arr(items) => items.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Numeric view of any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::U64(v) => i64::try_from(v).ok(),
            Json::I64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented rendering (for committed report files).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's Display prints the shortest round-trippable
                    // form; force a decimal point so integral floats stay
                    // visibly floats.
                    if *v == v.trunc() && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null"); // NaN/±Inf are not JSON
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected). `NaN`/`Infinity` are not JSON and fail.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogates render as the replacement char;
                            // the workspace never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Convert a `BTreeMap` into an ordered JSON object.
pub fn obj_from_map(map: BTreeMap<String, Json>) -> Json {
    Json::Obj(map.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_round_trip() {
        let doc = Json::obj([
            ("name", Json::from("loadgen")),
            ("count", Json::from(12345u64)),
            ("rate", Json::from(95_805.25f64)),
            ("neg", Json::I64(-3)),
            ("flag", Json::from(true)),
            ("none", Json::Null),
            ("list", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            (
                "nested",
                Json::obj([("quoted \"k\"\n", Json::from("v\\t"))]),
            ),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, doc, "round trip through {text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(2.0).render(), "2.0");
    }

    #[test]
    fn u64_counters_render_exactly() {
        let v = Json::U64(u64::MAX);
        assert_eq!(v.render(), u64::MAX.to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("NaN").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn path_lookup_walks_objects_and_arrays() {
        let doc = Json::parse(r#"{"a":{"b":[{"c":7}]}}"#).unwrap();
        assert_eq!(doc.at("a.b.0.c").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.at("a.b.1.c"), None);
        assert_eq!(doc.at("a.x"), None);
    }
}
