//! Conversion of consumption sequences into survival observations.
//!
//! For every user–item pair, the gap between two consecutive consumptions
//! is an observed **event** (the user returned after `duration` steps); the
//! open gap from the last consumption to the end of the training sequence
//! is **right-censored**. Covariates are measured at the *start* of each
//! gap — the moment from which the return time is being predicted.

use rrc_features::TrainStats;
use rrc_sequence::{Dataset, ItemId, WindowState};
use std::collections::HashMap;

/// Names of the four covariates, in vector order.
pub const COVARIATE_NAMES: [&str; 4] = ["quality", "recon_ratio", "familiarity", "twart"];

/// One survival observation: a (possibly censored) gap with its covariates.
#[derive(Debug, Clone, PartialEq)]
pub struct GapObservation {
    /// Gap length in consumption steps (> 0).
    pub duration: f64,
    /// True for an observed return, false for a censored trailing gap.
    pub event: bool,
    /// Covariates at the gap start: `[quality, recon_ratio, familiarity,
    /// twart]` where `twart` is the inverse time-weighted average return
    /// time of the user–item pair so far (0 when fewer than two prior
    /// consumptions).
    pub covariates: Vec<f64>,
}

/// Per-(user, item) incremental state while walking a sequence.
#[derive(Debug, Clone)]
struct PairState {
    last_step: usize,
    /// Covariates captured at `last_step`, pending the gap closing.
    pending: Vec<f64>,
    /// Incremental time-weighted average return time: Σ wᵢ gᵢ and Σ wᵢ with
    /// wᵢ = i + 1 (later gaps weigh more).
    weighted_gap_sum: f64,
    weight_sum: f64,
    gaps_seen: usize,
}

/// Inverse time-weighted average return time, mapped into `(0, 1]`; 0 when
/// no gaps have been observed yet.
fn twart_covariate(state: &PairState) -> f64 {
    if state.gaps_seen == 0 {
        0.0
    } else {
        let avg = state.weighted_gap_sum / state.weight_sum;
        1.0 / (1.0 + avg)
    }
}

/// Extract gap observations from every user's training sequence.
pub fn gap_observations(
    train: &Dataset,
    stats: &TrainStats,
    window_capacity: usize,
) -> Vec<GapObservation> {
    let mut out = Vec::new();
    for (_, seq) in train.iter() {
        let mut window = WindowState::new(window_capacity);
        let mut pairs: HashMap<ItemId, PairState> = HashMap::new();
        for (step, &item) in seq.events().iter().enumerate() {
            if let Some(state) = pairs.get_mut(&item) {
                let gap = (step - state.last_step) as f64;
                out.push(GapObservation {
                    duration: gap,
                    event: true,
                    covariates: state.pending.clone(),
                });
                state.gaps_seen += 1;
                let w = state.gaps_seen as f64;
                state.weighted_gap_sum += w * gap;
                state.weight_sum += w;
                state.last_step = step;
            } else {
                pairs.insert(
                    item,
                    PairState {
                        last_step: step,
                        pending: Vec::new(),
                        weighted_gap_sum: 0.0,
                        weight_sum: 0.0,
                        gaps_seen: 0,
                    },
                );
            }
            window.push(item);
            // Capture the covariates *after* this consumption: they describe
            // the state from which the next gap starts.
            let state = pairs.get_mut(&item).expect("just inserted or updated");
            state.pending = vec![
                stats.quality(item),
                stats.recon_ratio(item),
                window.familiarity(item),
                twart_covariate(state),
            ];
        }
        // Trailing open gaps are censored at the end of the sequence.
        let end = seq.len();
        for (_, state) in pairs {
            let gap = (end - state.last_step) as f64;
            if gap > 0.0 {
                out.push(GapObservation {
                    duration: gap,
                    event: false,
                    covariates: state.pending,
                });
            }
        }
    }
    out
}

/// Covariates of `item` for a *live* recommendation query, recomputing the
/// time-weighted average return time by scanning the user's full training
/// history — the expensive online step the paper's Fig. 13 measures.
pub fn live_covariates(
    history: &[ItemId],
    item: ItemId,
    stats: &TrainStats,
    window: &WindowState,
) -> Vec<f64> {
    // Full scan of the history for this item's consumption steps.
    let mut last: Option<usize> = None;
    let mut weighted = 0.0;
    let mut weight = 0.0;
    let mut gaps = 0usize;
    for (step, &x) in history.iter().enumerate() {
        if x == item {
            if let Some(prev) = last {
                gaps += 1;
                let w = gaps as f64;
                weighted += w * (step - prev) as f64;
                weight += w;
            }
            last = Some(step);
        }
    }
    let twart = if gaps == 0 {
        0.0
    } else {
        1.0 / (1.0 + weighted / weight)
    };
    vec![
        stats.quality(item),
        stats.recon_ratio(item),
        window.familiarity(item),
        twart,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::Sequence;

    fn fixture() -> (Dataset, TrainStats) {
        // User 0: item 0 at steps 0, 2, 5; item 1 at step 1; item 2 at 3, 4.
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 0, 2, 2, 0])], 3);
        let stats = TrainStats::compute(&d, 10);
        (d, stats)
    }

    #[test]
    fn events_and_censoring_counts() {
        let (d, stats) = fixture();
        let obs = gap_observations(&d, &stats, 10);
        let events: Vec<&GapObservation> = obs.iter().filter(|o| o.event).collect();
        let censored: Vec<&GapObservation> = obs.iter().filter(|o| !o.event).collect();
        // Closed gaps: 0→(2,3 steps), 2→(1 step) = 3 events.
        assert_eq!(events.len(), 3);
        // Censored: item 1 (from step 1), item 2 (from 4), item 0 (from 5)... but
        // item 0's last consumption is the final event: gap = 6-5 = 1 > 0.
        assert_eq!(censored.len(), 3);
        let mut durations: Vec<f64> = events.iter().map(|o| o.duration).collect();
        durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(durations, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn covariates_have_expected_shape_and_range() {
        let (d, stats) = fixture();
        let obs = gap_observations(&d, &stats, 10);
        for o in &obs {
            assert_eq!(o.covariates.len(), COVARIATE_NAMES.len());
            for (c, name) in o.covariates.iter().zip(COVARIATE_NAMES) {
                assert!((0.0..=1.0).contains(c), "{name}={c}");
            }
            assert!(o.duration > 0.0);
        }
    }

    #[test]
    fn twart_appears_after_second_gap() {
        // Item 0 consumed at 0, 2, 5: the observation for the gap starting
        // at step 2 has one prior gap (length 2) → twart = 1/(1+2).
        let (d, stats) = fixture();
        let obs = gap_observations(&d, &stats, 10);
        let second_gap_of_0 = obs
            .iter()
            .find(|o| o.event && o.duration == 3.0)
            .expect("gap of 3 exists");
        assert!((second_gap_of_0.covariates[3] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn live_covariates_match_extraction_semantics() {
        let (d, stats) = fixture();
        let history = d.sequence(rrc_sequence::UserId(0)).events();
        let window = WindowState::warmed(10, history);
        let cov = live_covariates(history, ItemId(0), &stats, &window);
        assert_eq!(cov.len(), 4);
        // Item 0 gaps: 2 then 3 → weighted avg = (1·2 + 2·3)/3 = 8/3.
        assert!((cov[3] - 1.0 / (1.0 + 8.0 / 3.0)).abs() < 1e-12);
        // Never-consumed item: twart 0.
        let cov1 = live_covariates(history, ItemId(1), &stats, &window);
        assert_eq!(cov1[3], 0.0);
    }

    #[test]
    fn empty_dataset_yields_no_observations() {
        let d = Dataset::new(vec![], 0);
        let stats = TrainStats::compute(&d, 10);
        assert!(gap_observations(&d, &stats, 10).is_empty());
    }
}
