//! The **Survival** baseline recommender (§5.2): rank window candidates by
//! how "due" they are under a fitted Cox return-time model.

use crate::cox::{CoxConfig, CoxError, CoxModel};
use crate::data::{gap_observations, live_covariates};
use rrc_features::{RecContext, Recommender, TrainStats};
use rrc_sequence::{Dataset, ItemId};

/// Ranks candidates by the estimated probability that the user has returned
/// to the item by now:
///
/// ```text
/// score(v) = 1 − S(elapsed | x_v) = 1 − exp(−H₀(elapsed) · e^{βᵀx_v})
/// ```
///
/// where `elapsed` is the number of steps since the user's last consumption
/// of `v`. The `twart` covariate is recomputed at query time by scanning the
/// user's full history — deliberately mirroring the online cost profile the
/// paper reports for this baseline (Fig. 13: 2–4 orders slower than the
/// one-pass baselines).
pub struct SurvivalRecommender {
    model: CoxModel,
    /// Full training histories, indexed by dense user id, scanned per query
    /// for the time-weighted average return time.
    histories: Vec<Vec<ItemId>>,
}

impl SurvivalRecommender {
    /// Fit a Cox model on the training split's gap observations and keep
    /// the histories for online covariate computation.
    pub fn fit(
        train: &Dataset,
        stats: &TrainStats,
        window_capacity: usize,
        config: &CoxConfig,
    ) -> Result<Self, CoxError> {
        let observations = gap_observations(train, stats, window_capacity);
        let model = CoxModel::fit(&observations, config)?;
        let histories = train
            .sequences()
            .iter()
            .map(|s| s.events().to_vec())
            .collect();
        Ok(SurvivalRecommender { model, histories })
    }

    /// Borrow the fitted Cox model.
    pub fn model(&self) -> &CoxModel {
        &self.model
    }
}

impl Recommender for SurvivalRecommender {
    fn name(&self) -> &str {
        "Survival"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        let elapsed = match ctx.window.last_seen(item) {
            None => return 0.0,
            Some(last) => (ctx.window.time() - last) as f64,
        };
        let history = self
            .histories
            .get(ctx.user.index())
            .map(|h| h.as_slice())
            .unwrap_or(&[]);
        let x = live_covariates(history, item, ctx.stats, ctx.window);
        1.0 - self.model.survival(elapsed, &x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_datagen::GeneratorConfig;
    use rrc_sequence::{UserId, WindowState};

    fn fitted() -> (Dataset, TrainStats, SurvivalRecommender) {
        let data = GeneratorConfig::tiny().with_seed(6).generate();
        let stats = TrainStats::compute(&data, 30);
        let rec = SurvivalRecommender::fit(&data, &stats, 30, &CoxConfig::default()).unwrap();
        (data, stats, rec)
    }

    #[test]
    fn fits_on_generated_data() {
        let (_, _, rec) = fitted();
        assert_eq!(rec.model().beta().len(), 4);
        assert!(rec.model().beta().iter().all(|b| b.is_finite()));
        assert_eq!(rec.name(), "Survival");
    }

    #[test]
    fn scores_are_probabilities() {
        let (data, stats, rec) = fitted();
        let user = UserId(0);
        let window = WindowState::warmed(30, data.sequence(user).events());
        let ctx = RecContext {
            user,
            window: &window,
            stats: &stats,
            omega: 3,
        };
        for v in ctx.candidates() {
            let s = rec.score(&ctx, v);
            assert!((0.0..=1.0).contains(&s), "score {s} for {v}");
        }
        // A never-consumed item scores 0.
        let unseen = ItemId((data.num_items() - 1) as u32);
        if window.last_seen(unseen).is_none() {
            assert_eq!(rec.score(&ctx, unseen), 0.0);
        }
    }

    #[test]
    fn staleness_increases_score_for_same_covariates() {
        // The cumulative hazard H0(t) is nondecreasing in t, so holding
        // covariates equal, a longer elapsed gap cannot lower the score.
        let (data, stats, rec) = fitted();
        let user = UserId(1);
        let events = data.sequence(user).events();
        let w1 = WindowState::warmed(30, events);
        let probe = w1.eligible_candidates(3).first().copied();
        if let Some(v) = probe {
            let ctx1 = RecContext {
                user,
                window: &w1,
                stats: &stats,
                omega: 3,
            };
            let s1 = rec.score(&ctx1, v);
            // Push unrelated filler to make v staler.
            let mut w2 = w1.clone();
            let filler = ItemId((data.num_items() - 1) as u32);
            for _ in 0..5 {
                w2.push(filler);
            }
            if w2.contains(v) {
                let ctx2 = RecContext {
                    user,
                    window: &w2,
                    stats: &stats,
                    omega: 3,
                };
                let s2 = rec.score(&ctx2, v);
                // Familiarity covariate shrinks slightly as the window
                // grows, so allow equality but the hazard term dominates.
                assert!(s2 >= s1 * 0.5, "s1={s1} s2={s2}");
            }
        }
    }

    #[test]
    fn recommendations_stay_within_candidates() {
        let (data, stats, rec) = fitted();
        let user = UserId(2);
        let window = WindowState::warmed(30, data.sequence(user).events());
        let ctx = RecContext {
            user,
            window: &window,
            stats: &stats,
            omega: 3,
        };
        let top = rec.recommend(&ctx, 10);
        let candidates = ctx.candidates();
        for v in top {
            assert!(candidates.contains(&v));
        }
    }
}
