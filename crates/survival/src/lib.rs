//! Survival-analysis substrate and the **Survival** RRC baseline.
//!
//! The paper's Survival baseline (§5.2) is Kapoor et al.'s hazard-based
//! return-time predictor (KDD 2014), which the authors ran through the
//! Python `lifelines` package. That substrate does not exist in Rust, so
//! this crate implements it from scratch:
//!
//! * [`CoxModel`] — Cox proportional-hazards regression: Breslow partial
//!   likelihood, analytic gradient/Hessian, Newton–Raphson with step
//!   halving, and the Breslow baseline cumulative hazard;
//! * [`KaplanMeier`] — the nonparametric survival-curve estimator, used for
//!   diagnostics and tests;
//! * [`gap_observations`] — converts consumption sequences into
//!   (duration, event, covariates) gap observations: closed gaps between
//!   consecutive consumptions of an item are events, the trailing open gap
//!   is censored;
//! * [`SurvivalRecommender`] — ranks window candidates by how "due" they
//!   are: the estimated probability the user has returned to the item by
//!   now, `1 − exp(−H₀(elapsed)·e^{βᵀx})`.
//!
//! The recommender deliberately recomputes its time-weighted
//! average-return-time covariate by scanning the user's full history at
//! query time — the cost the paper measures in Fig. 13, where Survival is
//! 2–4 orders of magnitude slower than the one-pass baselines.

pub mod cox;
pub mod data;
pub mod km;
pub mod parametric;
pub mod recommender;

pub use cox::{CoxConfig, CoxError, CoxModel};
pub use data::{gap_observations, GapObservation, COVARIATE_NAMES};
pub use km::KaplanMeier;
pub use parametric::{Exponential, Weibull};
pub use recommender::SurvivalRecommender;
