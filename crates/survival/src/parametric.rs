//! Parametric survival models: Exponential and Weibull, fitted by maximum
//! likelihood on (possibly censored) durations.
//!
//! The hazard-based return-time literature the Survival baseline comes from
//! (Kapoor et al., KDD 2014) compares the Cox model against parametric
//! fits; these complete the substrate and serve as smoke references in
//! tests (a Weibull with shape 1 must agree with the Exponential).

/// A fitted Exponential survival model `S(t) = exp(−λt)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Maximum-likelihood fit from `(duration, event)` observations: with
    /// censoring, `λ̂ = #events / Σ durations` (censored spells contribute
    /// exposure but no event).
    ///
    /// Returns `None` when there are no events or no positive exposure.
    pub fn fit(observations: &[(f64, bool)]) -> Option<Self> {
        let events = observations.iter().filter(|o| o.1).count() as f64;
        let exposure: f64 = observations.iter().map(|o| o.0).sum();
        if events == 0.0 || exposure <= 0.0 {
            return None;
        }
        Some(Exponential {
            rate: events / exposure,
        })
    }

    /// The fitted rate λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Survival probability `S(t)`.
    pub fn survival(&self, t: f64) -> f64 {
        (-self.rate * t).exp()
    }

    /// Mean time to event `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// A fitted Weibull survival model `S(t) = exp(−(t/λ)^k)` with shape `k`
/// and scale `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Maximum-likelihood fit by Newton iteration on the profile likelihood
    /// of the shape parameter (the scale has a closed form given the
    /// shape). Handles right-censoring. Returns `None` on degenerate input
    /// (no events, non-positive durations).
    pub fn fit(observations: &[(f64, bool)]) -> Option<Self> {
        let n_events = observations.iter().filter(|o| o.1).count();
        if n_events == 0 || observations.iter().any(|o| o.0 <= 0.0) {
            return None;
        }
        // Profile score in k (see e.g. Lawless 2003 §5.2):
        //   g(k) = Σ_all t^k ln t / Σ_all t^k − 1/k − (1/d) Σ_events ln t = 0
        let d = n_events as f64;
        let mean_event_log: f64 = observations
            .iter()
            .filter(|o| o.1)
            .map(|o| o.0.ln())
            .sum::<f64>()
            / d;
        let mut k = 1.0_f64;
        for _ in 0..100 {
            let mut s0 = 0.0;
            let mut s1 = 0.0;
            let mut s2 = 0.0;
            for &(t, _) in observations {
                let tk = t.powf(k);
                let lt = t.ln();
                s0 += tk;
                s1 += tk * lt;
                s2 += tk * lt * lt;
            }
            let g = s1 / s0 - 1.0 / k - mean_event_log;
            let gp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
            if gp.abs() < 1e-30 {
                break;
            }
            let step = g / gp;
            let next = (k - step).max(1e-6);
            if (next - k).abs() < 1e-12 {
                k = next;
                break;
            }
            k = next;
        }
        if !k.is_finite() || k <= 0.0 {
            return None;
        }
        // Closed-form scale given shape.
        let sum_tk: f64 = observations.iter().map(|o| o.0.powf(k)).sum();
        let scale = (sum_tk / d).powf(1.0 / k);
        Some(Weibull { shape: k, scale })
    }

    /// The fitted shape `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The fitted scale `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Survival probability `S(t)`.
    pub fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        (-(t / self.scale).powf(self.shape)).exp()
    }

    /// Hazard `h(t) = (k/λ)(t/λ)^{k−1}` — increasing for `k > 1`,
    /// decreasing for `k < 1`.
    pub fn hazard(&self, t: f64) -> f64 {
        (self.shape / self.scale) * (t / self.scale).powf(self.shape - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
        -(1.0 - rng.gen::<f64>()).ln() / rate
    }

    #[test]
    fn exponential_recovers_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let obs: Vec<(f64, bool)> = (0..20_000)
            .map(|_| (exp_sample(&mut rng, 0.5), true))
            .collect();
        let m = Exponential::fit(&obs).unwrap();
        assert!((m.rate() - 0.5).abs() < 0.02, "rate {}", m.rate());
        assert!((m.mean() - 2.0).abs() < 0.1);
        assert!((m.survival(0.0) - 1.0).abs() < 1e-12);
        assert!(m.survival(1.0) < 1.0);
    }

    #[test]
    fn exponential_censoring_is_unbiased() {
        // Censor at a horizon: the estimator stays consistent.
        let mut rng = StdRng::seed_from_u64(2);
        let horizon = 3.0;
        let obs: Vec<(f64, bool)> = (0..20_000)
            .map(|_| {
                let t = exp_sample(&mut rng, 0.7);
                if t > horizon {
                    (horizon, false)
                } else {
                    (t, true)
                }
            })
            .collect();
        let m = Exponential::fit(&obs).unwrap();
        assert!((m.rate() - 0.7).abs() < 0.03, "rate {}", m.rate());
    }

    #[test]
    fn weibull_recovers_shape_and_scale() {
        // Inverse-CDF sample from Weibull(k=2, λ=3).
        let mut rng = StdRng::seed_from_u64(3);
        let obs: Vec<(f64, bool)> = (0..20_000)
            .map(|_| {
                let u: f64 = 1.0 - rng.gen::<f64>();
                (3.0 * (-u.ln()).powf(0.5), true)
            })
            .collect();
        let m = Weibull::fit(&obs).unwrap();
        assert!((m.shape() - 2.0).abs() < 0.05, "shape {}", m.shape());
        assert!((m.scale() - 3.0).abs() < 0.05, "scale {}", m.scale());
        // Increasing hazard for k > 1.
        assert!(m.hazard(2.0) > m.hazard(1.0));
    }

    #[test]
    fn weibull_with_unit_shape_matches_exponential() {
        let mut rng = StdRng::seed_from_u64(4);
        let obs: Vec<(f64, bool)> = (0..20_000)
            .map(|_| (exp_sample(&mut rng, 0.4), true))
            .collect();
        let w = Weibull::fit(&obs).unwrap();
        let e = Exponential::fit(&obs).unwrap();
        assert!((w.shape() - 1.0).abs() < 0.03, "shape {}", w.shape());
        assert!((w.scale() - e.mean()).abs() < 0.1);
        for t in [0.5, 1.0, 2.0] {
            assert!((w.survival(t) - e.survival(t)).abs() < 0.02);
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(Exponential::fit(&[]).is_none());
        assert!(Exponential::fit(&[(1.0, false)]).is_none());
        assert!(Weibull::fit(&[(0.0, true)]).is_none());
        assert!(Weibull::fit(&[(1.0, false)]).is_none());
    }
}
