//! Cox proportional-hazards regression, fitted by Newton–Raphson on the
//! Breslow partial log-likelihood — the estimator family behind the
//! `lifelines` package the paper used for its Survival baseline.

use crate::data::GapObservation;
use rrc_linalg::{cholesky_solve, DMatrix};

/// Configuration of the Newton fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoxConfig {
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the partial log-likelihood change.
    pub tol: f64,
    /// Ridge term added to the (negated) Hessian for numerical stability —
    /// equivalently an L2 penalty on β.
    pub ridge: f64,
}

impl Default for CoxConfig {
    fn default() -> Self {
        CoxConfig {
            max_iter: 50,
            tol: 1e-8,
            ridge: 1e-4,
        }
    }
}

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum CoxError {
    /// No observations, or no uncensored events to anchor the likelihood.
    NoEvents,
    /// Observations disagree on covariate dimension.
    DimensionMismatch,
    /// The Newton iteration failed to make progress (degenerate data).
    Degenerate(String),
}

impl std::fmt::Display for CoxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoxError::NoEvents => write!(f, "no uncensored events to fit on"),
            CoxError::DimensionMismatch => write!(f, "covariate dimension mismatch"),
            CoxError::Degenerate(msg) => write!(f, "degenerate fit: {msg}"),
        }
    }
}

impl std::error::Error for CoxError {}

/// A fitted Cox model: `h(t | x) = h₀(t) · exp(βᵀx)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CoxModel {
    beta: Vec<f64>,
    /// Breslow baseline cumulative hazard as a step function:
    /// `(time, H₀(time))`, ascending.
    baseline: Vec<(f64, f64)>,
    final_ll: f64,
    iterations: usize,
}

impl CoxModel {
    /// Fit by Newton–Raphson with step halving.
    pub fn fit(observations: &[GapObservation], config: &CoxConfig) -> Result<Self, CoxError> {
        let p = match observations.first() {
            None => return Err(CoxError::NoEvents),
            Some(o) => o.covariates.len(),
        };
        if observations.iter().any(|o| o.covariates.len() != p) {
            return Err(CoxError::DimensionMismatch);
        }
        if !observations.iter().any(|o| o.event) {
            return Err(CoxError::NoEvents);
        }

        // Sort ascending by duration; the risk set at time t is the suffix.
        let mut order: Vec<usize> = (0..observations.len()).collect();
        order.sort_by(|&a, &b| {
            observations[a]
                .duration
                .partial_cmp(&observations[b].duration)
                .expect("finite durations")
        });
        let sorted: Vec<&GapObservation> = order.iter().map(|&i| &observations[i]).collect();

        let mut beta = vec![0.0; p];
        let mut ll = pll(&sorted, &beta, config.ridge).0;
        let mut iterations = 0;

        for _ in 0..config.max_iter {
            iterations += 1;
            let (_, grad, mut neg_hess) = pll_with_derivatives(&sorted, &beta, config.ridge);
            // Solve (−H + ridge·I) step = grad.
            for i in 0..p {
                neg_hess[(i, i)] += config.ridge;
            }
            let step = cholesky_solve(&neg_hess, &grad)
                .map_err(|e| CoxError::Degenerate(format!("Hessian solve failed: {e}")))?;
            // Step halving: accept the largest damping that improves the
            // penalised likelihood.
            let mut scale = 1.0;
            let mut accepted = false;
            for _ in 0..30 {
                let candidate: Vec<f64> = beta
                    .iter()
                    .zip(step.iter())
                    .map(|(b, s)| b + scale * s)
                    .collect();
                let cand_ll = pll(&sorted, &candidate, config.ridge).0;
                if cand_ll.is_finite() && cand_ll >= ll {
                    let delta = cand_ll - ll;
                    beta = candidate;
                    ll = cand_ll;
                    accepted = true;
                    if delta < config.tol {
                        // Converged.
                        let baseline = breslow_baseline(&sorted, &beta);
                        return Ok(CoxModel {
                            beta,
                            baseline,
                            final_ll: ll,
                            iterations,
                        });
                    }
                    break;
                }
                scale *= 0.5;
            }
            if !accepted {
                // No uphill step found: treat current β as the optimum.
                break;
            }
        }
        let baseline = breslow_baseline(&sorted, &beta);
        Ok(CoxModel {
            beta,
            baseline,
            final_ll: ll,
            iterations,
        })
    }

    /// The fitted coefficients β.
    pub fn beta(&self) -> &[f64] {
        &self.beta
    }

    /// Final (penalised) partial log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.final_ll
    }

    /// Newton iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The log hazard ratio `βᵀx` of a covariate vector.
    pub fn log_hazard_ratio(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.beta.len(), "covariate dimension mismatch");
        self.beta.iter().zip(x).map(|(b, v)| b * v).sum()
    }

    /// Breslow baseline cumulative hazard `H₀(t)` (step function).
    pub fn baseline_cumulative_hazard(&self, t: f64) -> f64 {
        match self
            .baseline
            .partition_point(|&(bt, _)| bt <= t)
            .checked_sub(1)
        {
            None => 0.0,
            Some(idx) => self.baseline[idx].1,
        }
    }

    /// Cumulative hazard `H(t | x) = H₀(t) · exp(βᵀx)`.
    pub fn cumulative_hazard(&self, t: f64, x: &[f64]) -> f64 {
        self.baseline_cumulative_hazard(t) * self.log_hazard_ratio(x).exp()
    }

    /// Survival probability `S(t | x) = exp(−H(t | x))`.
    pub fn survival(&self, t: f64, x: &[f64]) -> f64 {
        (-self.cumulative_hazard(t, x)).exp()
    }
}

/// Penalised Breslow partial log-likelihood (value only).
fn pll(sorted: &[&GapObservation], beta: &[f64], ridge: f64) -> (f64,) {
    let n = sorted.len();
    let xb: Vec<f64> = sorted
        .iter()
        .map(|o| beta.iter().zip(&o.covariates).map(|(b, v)| b * v).sum())
        .collect();
    let exb: Vec<f64> = xb.iter().map(|v| v.exp()).collect();

    // Suffix sums of exp(βᵀx): risk set of the i-th sorted observation is
    // {j : duration_j >= duration_i}; with ties handled Breslow-style the
    // risk set for every event at a tied time is the same suffix starting
    // at the first observation of that time.
    let mut suffix = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + exb[i];
    }
    let mut ll = 0.0;
    let mut i = 0;
    while i < n {
        let t = sorted[i].duration;
        let risk = suffix[i];
        let mut j = i;
        while j < n && sorted[j].duration == t {
            if sorted[j].event {
                ll += xb[j] - risk.ln();
            }
            j += 1;
        }
        i = j;
    }
    let penalty: f64 = 0.5 * ridge * beta.iter().map(|b| b * b).sum::<f64>();
    (ll - penalty,)
}

/// Penalised partial log-likelihood with gradient and negated Hessian.
fn pll_with_derivatives(
    sorted: &[&GapObservation],
    beta: &[f64],
    ridge: f64,
) -> (f64, Vec<f64>, DMatrix) {
    let n = sorted.len();
    let p = beta.len();
    let xb: Vec<f64> = sorted
        .iter()
        .map(|o| beta.iter().zip(&o.covariates).map(|(b, v)| b * v).sum())
        .collect();
    let exb: Vec<f64> = xb.iter().map(|v| v.exp()).collect();

    // Suffix accumulators: S0 = Σ w, S1 = Σ w x, S2 = Σ w x xᵀ.
    let mut s0 = 0.0;
    let mut s1 = vec![0.0; p];
    let mut s2 = DMatrix::zeros(p, p);

    let mut ll = 0.0;
    let mut grad = vec![0.0; p];
    let mut neg_hess = DMatrix::zeros(p, p);

    // Walk from the largest duration downward, extending the risk set, and
    // settle all events of each distinct time against the suffix sums.
    let mut i = n;
    while i > 0 {
        let t = sorted[i - 1].duration;
        let mut j = i;
        // Pull in every observation with this duration.
        while j > 0 && sorted[j - 1].duration == t {
            let o = sorted[j - 1];
            let w = exb[j - 1];
            s0 += w;
            for a in 0..p {
                s1[a] += w * o.covariates[a];
                for b in 0..p {
                    s2[(a, b)] += w * o.covariates[a] * o.covariates[b];
                }
            }
            j -= 1;
        }
        // Settle events at time t.
        for idx in j..i {
            let o = sorted[idx];
            if !o.event {
                continue;
            }
            ll += xb[idx] - s0.ln();
            for a in 0..p {
                let mean_a = s1[a] / s0;
                grad[a] += o.covariates[a] - mean_a;
                for b in 0..p {
                    let mean_b = s1[b] / s0;
                    neg_hess[(a, b)] += s2[(a, b)] / s0 - mean_a * mean_b;
                }
            }
        }
        i = j;
    }
    for a in 0..p {
        ll -= 0.5 * ridge * beta[a] * beta[a];
        grad[a] -= ridge * beta[a];
        neg_hess[(a, a)] += ridge;
    }
    (ll, grad, neg_hess)
}

/// Breslow estimator of the baseline cumulative hazard.
fn breslow_baseline(sorted: &[&GapObservation], beta: &[f64]) -> Vec<(f64, f64)> {
    let n = sorted.len();
    let exb: Vec<f64> = sorted
        .iter()
        .map(|o| {
            beta.iter()
                .zip(&o.covariates)
                .map(|(b, v)| b * v)
                .sum::<f64>()
                .exp()
        })
        .collect();
    let mut suffix = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + exb[i];
    }
    let mut baseline = Vec::new();
    let mut h0 = 0.0;
    let mut i = 0;
    while i < n {
        let t = sorted[i].duration;
        let risk = suffix[i];
        let mut deaths = 0.0;
        let mut j = i;
        while j < n && sorted[j].duration == t {
            if sorted[j].event {
                deaths += 1.0;
            }
            j += 1;
        }
        if deaths > 0.0 {
            h0 += deaths / risk;
            baseline.push((t, h0));
        }
        i = j;
    }
    baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn obs(duration: f64, event: bool, covariates: &[f64]) -> GapObservation {
        GapObservation {
            duration,
            event,
            covariates: covariates.to_vec(),
        }
    }

    #[test]
    fn recovers_hazard_direction_on_synthetic_data() {
        // Generate exponential survival times with hazard exp(2·x): higher
        // x → shorter durations. The fitted β must be clearly positive.
        let mut rng = StdRng::seed_from_u64(7);
        let mut data = Vec::new();
        for _ in 0..2000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let hazard = (2.0 * x).exp();
            let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
            let t = -u.ln() / hazard;
            // Censor ~20% at a fixed horizon.
            let horizon = 3.0;
            if t > horizon {
                data.push(obs(horizon, false, &[x]));
            } else {
                data.push(obs(t, true, &[x]));
            }
        }
        let model = CoxModel::fit(&data, &CoxConfig::default()).unwrap();
        let b = model.beta()[0];
        assert!((b - 2.0).abs() < 0.15, "estimated beta = {b}");
        assert!(model.iterations() < 20);
    }

    #[test]
    fn zero_covariate_effect_yields_small_beta() {
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<GapObservation> = (0..1000)
            .map(|_| {
                let x: f64 = rng.gen_range(-1.0..1.0);
                let t: f64 = rng.gen_range(0.01..5.0);
                obs(t, true, &[x])
            })
            .collect();
        let model = CoxModel::fit(&data, &CoxConfig::default()).unwrap();
        assert!(model.beta()[0].abs() < 0.15, "beta = {}", model.beta()[0]);
    }

    #[test]
    fn baseline_hazard_is_nondecreasing_step_function() {
        let data = vec![
            obs(1.0, true, &[0.0]),
            obs(2.0, true, &[0.5]),
            obs(2.0, false, &[-0.5]),
            obs(3.0, true, &[0.2]),
        ];
        let model = CoxModel::fit(&data, &CoxConfig::default()).unwrap();
        assert_eq!(model.baseline_cumulative_hazard(0.5), 0.0);
        let h1 = model.baseline_cumulative_hazard(1.0);
        let h2 = model.baseline_cumulative_hazard(2.5);
        let h3 = model.baseline_cumulative_hazard(10.0);
        assert!(h1 > 0.0);
        assert!(h2 > h1);
        assert!(h3 > h2);
        // Survival decreases with time and with hazard ratio.
        let x = [0.5];
        assert!(model.survival(1.0, &x) > model.survival(3.0, &x));
        assert!(
            model.cumulative_hazard(3.0, &[1.0]) > model.cumulative_hazard(3.0, &[-1.0]) * 0.99
        );
    }

    #[test]
    fn higher_risk_covariates_mean_lower_survival() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = Vec::new();
        for _ in 0..500 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let t = -(rng.gen_range(0.0f64..1.0).max(1e-9)).ln() / (1.5 * x).exp();
            data.push(obs(t, true, &[x]));
        }
        let model = CoxModel::fit(&data, &CoxConfig::default()).unwrap();
        assert!(model.survival(0.5, &[0.9]) < model.survival(0.5, &[0.1]));
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            CoxModel::fit(&[], &CoxConfig::default()),
            Err(CoxError::NoEvents)
        );
        let all_censored = vec![obs(1.0, false, &[0.1])];
        assert_eq!(
            CoxModel::fit(&all_censored, &CoxConfig::default()),
            Err(CoxError::NoEvents)
        );
        let ragged = vec![obs(1.0, true, &[0.1]), obs(2.0, true, &[0.1, 0.2])];
        assert_eq!(
            CoxModel::fit(&ragged, &CoxConfig::default()),
            Err(CoxError::DimensionMismatch)
        );
    }

    #[test]
    fn ties_are_handled_breslow_style() {
        // Heavily tied data must still fit without blowing up.
        let data = vec![
            obs(1.0, true, &[1.0]),
            obs(1.0, true, &[0.5]),
            obs(1.0, true, &[-0.5]),
            obs(2.0, true, &[0.0]),
            obs(2.0, false, &[1.0]),
        ];
        let model = CoxModel::fit(&data, &CoxConfig::default()).unwrap();
        assert!(model.beta()[0].is_finite());
        assert!(model.log_likelihood().is_finite());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data = [
            obs(1.0, true, &[0.3, -0.2]),
            obs(1.5, false, &[0.1, 0.9]),
            obs(2.0, true, &[-0.5, 0.4]),
            obs(3.0, true, &[0.7, 0.1]),
        ];
        let sorted: Vec<&GapObservation> = data.iter().collect();
        let beta = vec![0.3, -0.1];
        let ridge = 1e-3;
        let (_, grad, _) = pll_with_derivatives(&sorted, &beta, ridge);
        let eps = 1e-6;
        for a in 0..2 {
            let mut bp = beta.clone();
            bp[a] += eps;
            let mut bm = beta.clone();
            bm[a] -= eps;
            let fd = (pll(&sorted, &bp, ridge).0 - pll(&sorted, &bm, ridge).0) / (2.0 * eps);
            assert!((grad[a] - fd).abs() < 1e-6, "grad[{a}]={} fd={fd}", grad[a]);
        }
    }
}
