//! The Kaplan–Meier product-limit estimator of the survival function.

/// A fitted Kaplan–Meier curve: step function `S(t)` over event times.
#[derive(Debug, Clone, PartialEq)]
pub struct KaplanMeier {
    /// Distinct event times, ascending.
    times: Vec<f64>,
    /// `S(t)` immediately after each event time.
    survival: Vec<f64>,
}

impl KaplanMeier {
    /// Fit from `(duration, event)` observations; `event = false` marks a
    /// right-censored observation.
    ///
    /// # Panics
    /// Panics if any duration is negative or non-finite.
    pub fn fit(observations: &[(f64, bool)]) -> Self {
        for &(d, _) in observations {
            assert!(
                d >= 0.0 && d.is_finite(),
                "durations must be finite and >= 0"
            );
        }
        let mut sorted: Vec<(f64, bool)> = observations.to_vec();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite durations"));

        let mut times = Vec::new();
        let mut survival = Vec::new();
        let n = sorted.len();
        let mut at_risk = n as f64;
        let mut s = 1.0;
        let mut i = 0;
        while i < n {
            let t = sorted[i].0;
            let mut deaths = 0.0;
            let mut leaving = 0.0;
            while i < n && sorted[i].0 == t {
                if sorted[i].1 {
                    deaths += 1.0;
                }
                leaving += 1.0;
                i += 1;
            }
            if deaths > 0.0 {
                s *= 1.0 - deaths / at_risk;
                times.push(t);
                survival.push(s);
            }
            at_risk -= leaving;
        }
        KaplanMeier { times, survival }
    }

    /// `S(t)`: the estimated probability of surviving beyond `t`.
    pub fn survival_at(&self, t: f64) -> f64 {
        // Last event time <= t.
        match self.times.partition_point(|&et| et <= t).checked_sub(1) {
            None => 1.0,
            Some(idx) => self.survival[idx],
        }
    }

    /// The estimated median survival time, if the curve crosses 0.5.
    pub fn median(&self) -> Option<f64> {
        self.times
            .iter()
            .zip(self.survival.iter())
            .find(|(_, &s)| s <= 0.5)
            .map(|(&t, _)| t)
    }

    /// The event times with their survival values (for plotting).
    pub fn curve(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times
            .iter()
            .copied()
            .zip(self.survival.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_censoring_matches_empirical_distribution() {
        // Events at 1, 2, 3, 4: S(t) steps down by 1/4 each.
        let obs = [(1.0, true), (2.0, true), (3.0, true), (4.0, true)];
        let km = KaplanMeier::fit(&obs);
        assert!((km.survival_at(0.5) - 1.0).abs() < 1e-12);
        assert!((km.survival_at(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(2.5) - 0.5).abs() < 1e-12);
        assert!((km.survival_at(10.0) - 0.0).abs() < 1e-12);
        assert_eq!(km.median(), Some(2.0));
    }

    #[test]
    fn censoring_reduces_risk_set_without_stepping() {
        // Classic example: events at 1 and 3, censored at 2.
        let obs = [(1.0, true), (2.0, false), (3.0, true)];
        let km = KaplanMeier::fit(&obs);
        // After t=1: 1 - 1/3 = 2/3. After t=3: risk set is 1 → S = 0.
        assert!((km.survival_at(1.5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((km.survival_at(2.5) - 2.0 / 3.0).abs() < 1e-12); // censor: no step
        assert!((km.survival_at(3.5) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn tied_events_handled_together() {
        let obs = [(2.0, true), (2.0, true), (5.0, true), (5.0, false)];
        let km = KaplanMeier::fit(&obs);
        // t=2: 1 - 2/4 = 0.5; t=5: one death among 2 at risk → 0.25.
        assert!((km.survival_at(2.0) - 0.5).abs() < 1e-12);
        assert!((km.survival_at(5.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_censored_gives_flat_curve() {
        let obs = [(1.0, false), (2.0, false)];
        let km = KaplanMeier::fit(&obs);
        assert_eq!(km.survival_at(100.0), 1.0);
        assert_eq!(km.median(), None);
        assert_eq!(km.curve().count(), 0);
    }

    #[test]
    fn empty_input_is_trivial() {
        let km = KaplanMeier::fit(&[]);
        assert_eq!(km.survival_at(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "durations must be finite")]
    fn negative_duration_rejected() {
        KaplanMeier::fit(&[(-1.0, true)]);
    }
}
