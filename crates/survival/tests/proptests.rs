//! Property-based tests for the survival substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrc_survival::{CoxConfig, CoxModel, GapObservation, KaplanMeier};

fn observations() -> impl Strategy<Value = Vec<(f64, bool)>> {
    prop::collection::vec(((0.01f64..50.0), any::<bool>()), 1..60)
}

proptest! {
    #[test]
    fn km_survival_is_monotone_nonincreasing(obs in observations()) {
        let km = KaplanMeier::fit(&obs);
        let mut prev = 1.0;
        for t in 0..60 {
            let s = km.survival_at(t as f64);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn km_no_events_before_first_duration(obs in observations()) {
        let min = obs.iter().map(|o| o.0).fold(f64::INFINITY, f64::min);
        let km = KaplanMeier::fit(&obs);
        prop_assert_eq!(km.survival_at(min * 0.5), 1.0);
    }

    #[test]
    fn cox_baseline_hazard_monotone(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<GapObservation> = (0..80)
            .map(|_| {
                let x: f64 = rng.gen_range(-1.0..1.0);
                GapObservation {
                    duration: rng.gen_range(0.1..20.0),
                    event: rng.gen_bool(0.8),
                    covariates: vec![x],
                }
            })
            .collect();
        if !data.iter().any(|o| o.event) {
            return Ok(()); // NoEvents is a legal rejection
        }
        let model = CoxModel::fit(&data, &CoxConfig::default()).unwrap();
        let mut prev = 0.0;
        for t in 0..25 {
            let h = model.baseline_cumulative_hazard(t as f64);
            prop_assert!(h >= prev - 1e-12);
            prop_assert!(h.is_finite());
            prev = h;
        }
        // Survival in [0, 1] and decreasing in t for any covariates.
        for &x in &[-0.5, 0.0, 0.5] {
            let mut sprev = 1.0;
            for t in 0..25 {
                let s = model.survival(t as f64, &[x]);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert!(s <= sprev + 1e-12);
                sprev = s;
            }
        }
    }

    #[test]
    fn cox_hazard_ratio_is_linear_in_beta(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<GapObservation> = (0..60)
            .map(|_| GapObservation {
                duration: rng.gen_range(0.1..10.0),
                event: true,
                covariates: vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)],
            })
            .collect();
        let model = CoxModel::fit(&data, &CoxConfig::default()).unwrap();
        let a = [0.3, -0.7];
        let b = [0.1, 0.2];
        let sum = [0.4, -0.5];
        let lhs = model.log_hazard_ratio(&sum);
        let rhs = model.log_hazard_ratio(&a) + model.log_hazard_ratio(&b);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }
}
