//! A deterministic Zipf sampler over ranks `0..n`.

use rand::Rng;

/// Samples ranks with probability `P(k) ∝ 1 / (k+1)^s` via a precomputed
/// CDF and binary search (O(log n) per draw, O(n) setup).
///
/// Item popularity in implicit-feedback logs is famously heavy-tailed; the
/// generator draws novel consumptions from this distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n` ranks with exponent `s ≥ 0` (`s = 0` is
    /// uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff there is exactly one rank (always sampled).
    pub fn is_empty(&self) -> bool {
        false // construction requires n > 0
    }

    /// Draw one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2);
        let sum: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.0);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_respect_support_and_skew() {
        let z = Zipf::new(20, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 20];
        for _ in 0..50_000 {
            let k = z.sample(&mut rng);
            assert!(k < 20);
            counts[k] += 1;
        }
        // Rank 0 should dominate rank 10 decisively under s = 1.5.
        assert!(counts[0] > counts[10] * 5, "counts: {counts:?}");
        // Empirical mass of rank 0 within 2% of pmf.
        let emp = counts[0] as f64 / 50_000.0;
        assert!((emp - z.pmf(0)).abs() < 0.02);
    }

    #[test]
    fn singleton_always_samples_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_support_rejected() {
        Zipf::new(0, 1.0);
    }
}
