//! Generator configuration and the two dataset presets.

use crate::profile::ProfileDistribution;

/// Which real-world log a configuration imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Gowalla-like LBSN check-ins: shorter sequences, very steep
    /// repeat-choice distributions (people revisit a few places heavily),
    /// strong recency effect.
    Gowalla,
    /// Last.fm-like listening: long sequences, high overall repeat rate
    /// (~77%), but flatter in-window choice distributions.
    Lastfm,
    /// Free-form configuration.
    Custom,
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetKind::Gowalla => write!(f, "gowalla"),
            DatasetKind::Lastfm => write!(f, "lastfm"),
            DatasetKind::Custom => write!(f, "custom"),
        }
    }
}

/// Full configuration for [`crate::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Which preset this config came from (for labelling output).
    pub kind: DatasetKind,
    /// Number of users to generate.
    pub num_users: usize,
    /// Size of the global item universe.
    pub num_items: usize,
    /// Sequence length range `[lo, hi]` (inclusive), drawn uniformly per
    /// user.
    pub events_per_user: (usize, usize),
    /// Window capacity assumed by the repeat process (how far back a user
    /// "remembers" things to reconsume).
    pub window: usize,
    /// Zipf exponent of global item popularity for novel consumption.
    pub zipf_exponent: f64,
    /// Zipf exponent used when drawing each user's personal pool. A value
    /// well below `zipf_exponent` makes personal favourites diverge from
    /// global popularity — the regime where personalized models beat Pop
    /// decisively (the paper's Gowalla Top-1 result).
    pub pool_zipf_exponent: f64,
    /// Distribution of per-user behavioural profiles.
    pub profiles: ProfileDistribution,
    /// Zipf exponent of per-user *activity* skew. `0.0` (the default)
    /// keeps every user's sequence length an independent uniform draw
    /// from `events_per_user` — byte-identical to the historical
    /// generator. Positive values scale each user's drawn length by a
    /// rank-based Zipf multiplier (user 0 is the most active), normalised
    /// so the mean multiplier is 1 and clamped to `[0.05, 20]`; the
    /// expected event total stays roughly constant while head users
    /// dominate the traffic — the regime that stresses a bounded
    /// user-state cache with a realistic hot set.
    pub user_skew: f64,
    /// Concept-drift magnitude in `[0, 1]`. `0.0` (the default) disables
    /// drift and is byte-identical to the historical generator. Positive
    /// values install a piecewise changepoint at the `drift_at` fraction
    /// of every user's sequence: from that event on, the item-popularity
    /// head rotates by a seed-derived shift (novel draws land on a
    /// different slice of the catalog, and with it the quality /
    /// reconsumability signals move), personal-pool favourites migrate to
    /// the rotated items, and the repeat probability stretches so
    /// inter-consumption gaps lengthen. Everything stays a pure function
    /// of the seed — two runs of the same config are identical — which is
    /// exactly the "something to chase" a continuous trainer needs while
    /// a frozen model goes stale.
    pub drift: f64,
    /// Where the drift changepoint sits, as a fraction of each user's
    /// sequence length. Ignored when `drift == 0`.
    pub drift_at: f64,
    /// RNG seed — generation is fully deterministic given this.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Gowalla-like preset. `scale ∈ (0, 1]` shrinks users/items/sequence
    /// lengths together; `scale = 1.0` approaches the paper's 14,742 users
    /// (sequence lengths stay laptop-friendly).
    ///
    /// Calibration targets (cf. Table 2 and Fig. 4 of the paper):
    /// * moderate repeat fraction, *steep* feature-rank curves (low softmax
    ///   temperature, large weights),
    /// * strong recency (largest weight on the recency signal),
    /// * many items relative to events (sparse reconsumption pool).
    pub fn gowalla_like(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let num_users = ((14_742.0 * scale) as usize).max(20);
        // The real log has ~64 items per user (936,883 items); keeping that
        // ratio starves pure item factors exactly as real sparsity does,
        // which is what makes the behavioral features load-bearing (Fig. 7).
        let num_items = ((936_883.0 * scale) as usize).max(2_000);
        GeneratorConfig {
            kind: DatasetKind::Gowalla,
            num_users,
            num_items,
            events_per_user: (220, 420),
            window: 100,
            zipf_exponent: 0.9,
            pool_zipf_exponent: 0.45,
            profiles: ProfileDistribution {
                repeat_prob_mean: 0.55,
                repeat_prob_spread: 0.2,
                // recency, quality, familiarity: strong and heterogeneous.
                weight_scale: [4.0, 2.2, 3.0],
                pool_affinity_scale: 12.0, // strong, item-specific personal taste
                recon_weight_scale: 6.0,   // reconsumability matters a lot (IR)
                temperature: (0.2, 0.5),   // steep choice curves
                pool_size: 40,
                global_novel_prob: 0.25,
            },
            user_skew: 0.0,
            drift: 0.0,
            drift_at: 0.5,
            seed: 0x9077a11a,
        }
    }

    /// Last.fm-like preset. Fewer users with much longer sequences, ~77%
    /// repeat rate, flatter in-window choice distributions (higher softmax
    /// temperature, smaller weights) — the regime where the paper's features
    /// are *less* discriminative and TS-PPR's margin shrinks.
    pub fn lastfm_like(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let num_users = ((964.0 * scale) as usize).max(12);
        // The real log has ~1,000 items per user (958,847 items); one fifth
        // of that ratio keeps laptop-scale runs tractable while remaining
        // deeply sparse.
        let num_items = ((191_769.0 * scale) as usize).max(3_000);
        GeneratorConfig {
            kind: DatasetKind::Lastfm,
            num_users,
            num_items,
            events_per_user: (900, 1600),
            window: 100,
            zipf_exponent: 0.9,
            pool_zipf_exponent: 0.6,
            profiles: ProfileDistribution {
                repeat_prob_mean: 0.77,
                repeat_prob_spread: 0.12,
                weight_scale: [5.0, 1.0, 1.5],
                pool_affinity_scale: 2.2, // weaker personal taste
                recon_weight_scale: 1.5,
                temperature: (0.9, 1.9), // flat choice curves
                pool_size: 120,
                global_novel_prob: 0.25,
            },
            user_skew: 0.0,
            drift: 0.0,
            drift_at: 0.5,
            seed: 0x1a57f3,
        }
    }

    /// A tiny configuration for unit tests: fast, but with every mechanism
    /// active.
    pub fn tiny() -> Self {
        GeneratorConfig {
            kind: DatasetKind::Custom,
            num_users: 8,
            num_items: 60,
            events_per_user: (120, 180),
            window: 30,
            zipf_exponent: 1.0,
            pool_zipf_exponent: 0.5,
            profiles: ProfileDistribution {
                repeat_prob_mean: 0.6,
                repeat_prob_spread: 0.2,
                weight_scale: [4.0, 2.0, 3.0],
                pool_affinity_scale: 3.0,
                recon_weight_scale: 2.0,
                temperature: (0.5, 1.2),
                pool_size: 15,
                global_novel_prob: 0.4,
            },
            user_skew: 0.0,
            drift: 0.0,
            drift_at: 0.5,
            seed: 42,
        }
    }

    /// Replace the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the user count (builder style).
    pub fn with_users(mut self, num_users: usize) -> Self {
        self.num_users = num_users;
        self
    }

    /// Replace the item-universe size (builder style).
    pub fn with_items(mut self, num_items: usize) -> Self {
        self.num_items = num_items;
        self
    }

    /// Replace the per-user event range (builder style).
    pub fn with_events_per_user(mut self, lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "event range must satisfy lo <= hi");
        self.events_per_user = (lo, hi);
        self
    }

    /// Replace the drift magnitude (builder style). `0.0` disables drift;
    /// see [`GeneratorConfig::drift`].
    pub fn with_drift(mut self, drift: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drift),
            "drift magnitude must be in [0, 1]"
        );
        self.drift = drift;
        self
    }

    /// Replace the drift changepoint fraction (builder style); see
    /// [`GeneratorConfig::drift_at`].
    pub fn with_drift_at(mut self, drift_at: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drift_at),
            "drift changepoint must be a fraction in [0, 1)"
        );
        self.drift_at = drift_at;
        self
    }

    /// Replace the per-user activity-skew exponent (builder style).
    /// `0.0` disables skew; see [`GeneratorConfig::user_skew`].
    pub fn with_user_skew(mut self, user_skew: f64) -> Self {
        assert!(
            user_skew >= 0.0 && user_skew.is_finite(),
            "user skew must be a finite non-negative exponent"
        );
        self.user_skew = user_skew;
        self
    }

    /// Generate the dataset described by this configuration.
    pub fn generate(&self) -> rrc_sequence::Dataset {
        crate::generator::generate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_user_counts() {
        let small = GeneratorConfig::gowalla_like(0.01);
        let big = GeneratorConfig::gowalla_like(0.5);
        assert!(small.num_users < big.num_users);
        assert!(small.num_items < big.num_items);
        assert_eq!(small.kind, DatasetKind::Gowalla);
    }

    #[test]
    fn lastfm_has_longer_sequences_and_higher_repeat() {
        let g = GeneratorConfig::gowalla_like(0.1);
        let l = GeneratorConfig::lastfm_like(0.1);
        assert!(l.events_per_user.0 > g.events_per_user.1);
        assert!(l.profiles.repeat_prob_mean > g.profiles.repeat_prob_mean);
        // Gowalla is steeper: lower temperature ceiling, stronger personal
        // taste.
        assert!(g.profiles.temperature.1 < l.profiles.temperature.1);
        assert!(g.profiles.pool_affinity_scale > l.profiles.pool_affinity_scale);
    }

    #[test]
    fn builder_methods() {
        let c = GeneratorConfig::tiny()
            .with_seed(9)
            .with_users(3)
            .with_items(10)
            .with_events_per_user(5, 6);
        assert_eq!(c.seed, 9);
        assert_eq!(c.num_users, 3);
        assert_eq!(c.num_items, 10);
        assert_eq!(c.events_per_user, (5, 6));
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        GeneratorConfig::gowalla_like(0.0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(DatasetKind::Gowalla.to_string(), "gowalla");
        assert_eq!(DatasetKind::Lastfm.to_string(), "lastfm");
    }
}
