//! Synthetic repeat-consumption workload generators.
//!
//! The paper evaluates on two real logs — Gowalla check-ins and Last.fm
//! listens — that are not redistributable here, so this crate generates
//! event streams from the *mechanisms* those logs are known to exhibit
//! (Anderson et al., "The dynamics of repeat consumption", WWW 2014, and
//! the statistics quoted in the paper itself):
//!
//! * each user is a mixture of **repeat** and **novelty-seeking** behaviour
//!   (≈77% repeats for the Last.fm-like preset);
//! * novel choices follow a **Zipfian** global popularity plus a personal
//!   item pool (users have tastes);
//! * repeat choices within the window are driven by **recency**, **item
//!   quality**, and **familiarity**, with *per-user* weights — the
//!   heterogeneity TS-PPR's personalised `A_u` is designed to exploit;
//! * the [`gowalla_like`](GeneratorConfig::gowalla_like) preset concentrates
//!   repeat probability mass (steep feature-rank curves, strong recency),
//!   while [`lastfm_like`](GeneratorConfig::lastfm_like) is flatter and
//!   longer-sequence — reproducing the qualitative contrast of the paper's
//!   Fig. 4 that drives every accuracy conclusion in §5.
//!
//! Generation is fully deterministic given the seed.
//!
//! ```
//! use rrc_datagen::GeneratorConfig;
//!
//! let data = GeneratorConfig::gowalla_like(0.05).with_seed(7).generate();
//! assert!(data.num_users() > 0);
//! assert!(data.total_consumptions() > 0);
//! ```

pub mod config;
pub mod generator;
pub mod profile;
pub mod zipf;

pub use config::{DatasetKind, GeneratorConfig};
pub use generator::generate;
pub use profile::UserProfile;
pub use zipf::Zipf;
