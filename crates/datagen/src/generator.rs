//! The event-stream generator.

use crate::config::GeneratorConfig;
use crate::profile::UserProfile;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrc_sequence::{Dataset, ItemId, Sequence, WindowState};

/// Mix a user index into the master seed (SplitMix64 finaliser) so each
/// user's stream is deterministic and independent of generation order.
fn user_seed(master: u64, user: usize) -> u64 {
    let mut z = master ^ (user as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Intrinsic quality of an item, decreasing in its popularity rank (item id
/// doubles as rank: id 0 is the head of the Zipf distribution). Normalised
/// to `(0, 1]`.
fn intrinsic_quality(item: usize, num_items: usize) -> f64 {
    1.0 - (1.0 + item as f64).ln() / (1.0 + num_items as f64).ln()
}

/// Minimum window fill before the repeat process can fire; below this the
/// user is still "discovering".
const MIN_WINDOW_FILL: usize = 5;

/// Intrinsic reconsumability of an item in [0, 1]: how inherently
/// repeatable it is, independent of popularity and of any single user.
/// Deterministic per (item, dataset seed) via a SplitMix64 hash.
fn reconsumability(item: usize, master_seed: u64) -> f64 {
    let mut z = master_seed ^ 0xC0FFEE ^ (item as u64).wrapping_mul(0x2545F4914F6CDD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The post-changepoint regime of a drifting stream: a seed-derived
/// rotation of the item catalog plus a stretch of inter-consumption gaps.
/// Pure function of the config — no RNG draws — so a `drift == 0` run
/// stays byte-identical to the historical generator.
#[derive(Debug, Clone, Copy)]
struct DriftRegime {
    /// Catalog rotation applied to novel/pool draws after the changepoint.
    shift: usize,
    /// Multiplier on the user's repeat probability after the changepoint
    /// (< 1: repeats thin out, inter-consumption gaps lengthen).
    repeat_stretch: f64,
}

impl DriftRegime {
    fn from_config(config: &GeneratorConfig) -> Option<DriftRegime> {
        if config.drift <= 0.0 || config.num_items < 2 {
            return None;
        }
        // Derive the rotation from the seed so different seeds drift to
        // different corners of the catalog; scale it with the magnitude so
        // small drifts move the popularity head only slightly.
        let mixed = user_seed(config.seed ^ 0xD21F7, config.num_items);
        let base = 1 + (mixed as usize % (config.num_items - 1));
        let shift = ((base as f64 * config.drift).round() as usize).clamp(1, config.num_items - 1);
        Some(DriftRegime {
            shift,
            repeat_stretch: 1.0 - 0.35 * config.drift,
        })
    }

    /// Rotate an item into the post-changepoint catalog.
    fn rotate(&self, item: usize, num_items: usize) -> usize {
        (item + self.shift) % num_items
    }

    /// Invert [`DriftRegime::rotate`] (for affinity lookups: a rotated
    /// pool favourite keeps its pre-drift affinity).
    fn unrotate(&self, item: usize, num_items: usize) -> usize {
        (item + num_items - self.shift % num_items) % num_items
    }
}

/// Generate one user's consumption sequence.
fn generate_user(
    rng: &mut StdRng,
    profile: &UserProfile,
    config: &GeneratorConfig,
    zipf: &Zipf,
    pool_zipf: &Zipf,
    len_scale: f64,
    regime: Option<DriftRegime>,
) -> Sequence {
    let (lo, hi) = config.events_per_user;
    // The length draw stays the FIRST draw from the user's RNG, and the
    // skew multiplier is applied deterministically afterwards — with
    // `len_scale == 1.0` every later draw (and thus the whole stream) is
    // byte-identical to the unskewed generator.
    let len = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
    let len = if len_scale == 1.0 {
        len
    } else {
        ((len as f64 * len_scale).round() as usize).max(1)
    };
    // Personal pool of items the user returns to for "novel" exploration
    // and favours when reconsuming. Each pool item gets its *own* affinity
    // — a per-(user, item) taste that varies within the pool, so the
    // in-window repeat choice carries a personalised signal that no global
    // statistic (popularity, recency rank) can express.
    let pool: Vec<usize> = (0..profile.pool_size.max(1))
        .map(|_| pool_zipf.sample(rng))
        .collect();
    let mut affinities: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for &item in &pool {
        // Cube a uniform draw: most pool items get a mild bonus, a few get
        // a dominant one — every user has a small set of true favourites,
        // which is what makes Top-1 strongly personalised.
        let u: f64 = rng.gen_range(0.0..=1.0);
        let a = profile.pool_affinity * u * u * u;
        affinities
            .entry(item as u32)
            .and_modify(|cur| *cur = cur.max(a))
            .or_insert(a);
    }

    let mut window = WindowState::new(config.window);
    let mut events = Vec::with_capacity(len);
    // Scratch buffers reused across steps.
    let mut candidates: Vec<ItemId> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();

    // Every drift effect is gated on `drifted`, and the pre-changepoint
    // prefix takes exactly the historical draw sequence — so a drifting
    // stream agrees byte-for-byte with its undrifted twin until the
    // changepoint, and `drift == 0` agrees everywhere.
    let changepoint = match regime {
        Some(_) => (len as f64 * config.drift_at) as usize,
        None => usize::MAX,
    };

    for step in 0..len {
        let drifted = step >= changepoint;
        let repeat_prob = match regime {
            Some(r) if drifted => (profile.repeat_prob * r.repeat_stretch).clamp(0.0, 1.0),
            _ => profile.repeat_prob,
        };
        let is_repeat = window.len() >= MIN_WINDOW_FILL && rng.gen::<f64>() < repeat_prob;
        let item = if is_repeat {
            candidates.clear();
            candidates.extend(window.distinct_items());
            candidates.sort_unstable(); // determinism: HashMap order varies
            weights.clear();
            let t = window.time() as f64;
            let mut max_score = f64::NEG_INFINITY;
            for &v in &candidates {
                let last = window.last_seen(v).expect("candidate is in window") as f64;
                let gap = (t - last).max(1.0);
                // A rotated pool favourite keeps its pre-drift affinity:
                // post-changepoint the user's taste has *moved*, not
                // vanished, so the repeat dynamics stay strong but point
                // at different items than any pre-drift model learned.
                let affinity = match regime {
                    Some(r) if drifted => affinities.get(&v.0).copied().unwrap_or(0.0).max(
                        affinities
                            .get(&(r.unrotate(v.index(), config.num_items) as u32))
                            .copied()
                            .unwrap_or(0.0),
                    ),
                    _ => affinities.get(&v.0).copied().unwrap_or(0.0),
                };
                let score = profile.recency_weight / gap
                    + profile.quality_weight * intrinsic_quality(v.index(), config.num_items)
                    + profile.familiarity_weight * window.familiarity(v)
                    + profile.recon_weight * reconsumability(v.index(), config.seed)
                    + affinity;
                let s = score / profile.temperature;
                weights.push(s);
                max_score = max_score.max(s);
            }
            // Softmax sample (max-shifted for stability).
            let mut total = 0.0;
            for w in &mut weights {
                *w = (*w - max_score).exp();
                total += *w;
            }
            let mut u = rng.gen::<f64>() * total;
            let mut chosen = *candidates.last().expect("window is non-empty");
            for (v, w) in candidates.iter().zip(weights.iter()) {
                if u < *w {
                    chosen = *v;
                    break;
                }
                u -= *w;
            }
            chosen
        } else if rng.gen::<f64>() < profile.global_novel_prob {
            let raw = zipf.sample(rng);
            match regime {
                Some(r) if drifted => ItemId(r.rotate(raw, config.num_items) as u32),
                _ => ItemId(raw as u32),
            }
        } else {
            let raw = pool[rng.gen_range(0..pool.len())];
            match regime {
                Some(r) if drifted => ItemId(r.rotate(raw, config.num_items) as u32),
                _ => ItemId(raw as u32),
            }
        };
        window.push(item);
        events.push(item);
    }
    Sequence::from_events(events)
}

/// Per-user sequence-length multipliers for `user_skew` (see
/// [`GeneratorConfig::user_skew`]): rank-Zipf weights normalised to mean
/// 1 and clamped to `[0.05, 20]`, so the expected event total is roughly
/// preserved while head users dominate. Returns `None` when skew is off.
fn skew_multipliers(config: &GeneratorConfig) -> Option<Vec<f64>> {
    if config.user_skew == 0.0 {
        return None;
    }
    assert!(
        config.user_skew > 0.0 && config.user_skew.is_finite(),
        "user skew must be a finite non-negative exponent"
    );
    let n = config.num_users;
    let weights: Vec<f64> = (1..=n)
        .map(|r| (r as f64).powf(-config.user_skew))
        .collect();
    let mean = weights.iter().sum::<f64>() / n as f64;
    Some(
        weights
            .into_iter()
            .map(|w| (w / mean).clamp(0.05, 20.0))
            .collect(),
    )
}

/// Generate the full dataset described by `config`.
pub fn generate(config: &GeneratorConfig) -> Dataset {
    assert!(config.num_users > 0, "need at least one user");
    assert!(config.num_items > 0, "need at least one item");
    assert!(
        (0.0..=1.0).contains(&config.drift),
        "drift magnitude must be in [0, 1]"
    );
    assert!(
        (0.0..1.0).contains(&config.drift_at),
        "drift changepoint must be a fraction in [0, 1)"
    );
    let zipf = Zipf::new(config.num_items, config.zipf_exponent);
    let pool_zipf = Zipf::new(config.num_items, config.pool_zipf_exponent);
    let scales = skew_multipliers(config);
    let regime = DriftRegime::from_config(config);
    let mut sequences = Vec::with_capacity(config.num_users);
    for u in 0..config.num_users {
        let mut rng = StdRng::seed_from_u64(user_seed(config.seed, u));
        let profile = config.profiles.sample(&mut rng);
        let len_scale = scales.as_ref().map_or(1.0, |s| s[u]);
        sequences.push(generate_user(
            &mut rng, &profile, config, &zipf, &pool_zipf, len_scale, regime,
        ));
    }
    Dataset::new(sequences, config.num_items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::{DatasetStats, RepeatSummary};

    #[test]
    fn deterministic_given_seed() {
        let c = GeneratorConfig::tiny();
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.num_users(), b.num_users());
        for (u, seq) in a.iter() {
            assert_eq!(seq.events(), b.sequence(u).events());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorConfig::tiny().with_seed(1).generate();
        let b = GeneratorConfig::tiny().with_seed(2).generate();
        let same = a
            .iter()
            .all(|(u, seq)| seq.events() == b.sequence(u).events());
        assert!(!same);
    }

    #[test]
    fn respects_counts_and_ranges() {
        let c = GeneratorConfig::tiny();
        let d = generate(&c);
        assert_eq!(d.num_users(), c.num_users);
        assert_eq!(d.num_items(), c.num_items);
        for (_, seq) in d.iter() {
            assert!(seq.len() >= c.events_per_user.0);
            assert!(seq.len() <= c.events_per_user.1);
        }
    }

    #[test]
    fn repeat_fraction_tracks_profile_mean() {
        // With a high repeat probability the generated repeat fraction
        // (measured with the generator's own window) should be high.
        let mut c = GeneratorConfig::tiny().with_seed(7);
        c.profiles.repeat_prob_mean = 0.8;
        c.profiles.repeat_prob_spread = 0.05;
        let d = generate(&c);
        let stats = DatasetStats::compute(&d, c.window, 1);
        assert!(
            stats.repeat_fraction() > 0.55,
            "repeat fraction {}",
            stats.repeat_fraction()
        );

        let mut c2 = GeneratorConfig::tiny().with_seed(7);
        c2.profiles.repeat_prob_mean = 0.1;
        c2.profiles.repeat_prob_spread = 0.05;
        let d2 = generate(&c2);
        let s2 = DatasetStats::compute(&d2, c2.window, 1);
        assert!(
            s2.repeat_fraction() < stats.repeat_fraction(),
            "low-repeat config should repeat less"
        );
    }

    #[test]
    fn lastfm_preset_is_repeat_heavy() {
        let c = GeneratorConfig::lastfm_like(0.02).with_users(6);
        let d = generate(&c);
        let stats = DatasetStats::compute(&d, c.window, 1);
        assert!(
            stats.repeat_fraction() > 0.5,
            "lastfm-like repeat fraction {}",
            stats.repeat_fraction()
        );
    }

    #[test]
    fn eligible_repeats_exist_for_training() {
        // The models need eligible (≥ Ω old) repeats to train on.
        let c = GeneratorConfig::tiny();
        let d = generate(&c);
        let mut eligible = 0;
        for (_, seq) in d.iter() {
            eligible += RepeatSummary::of(seq.events(), c.window, 10).eligible_repeat;
        }
        assert!(eligible > 50, "only {eligible} eligible repeats generated");
    }

    #[test]
    fn zero_skew_is_byte_identical_to_the_unskewed_generator() {
        // `with_user_skew(0.0)` must not perturb a single draw.
        let plain = GeneratorConfig::tiny().generate();
        let skewed_off = GeneratorConfig::tiny().with_user_skew(0.0).generate();
        for (u, seq) in plain.iter() {
            assert_eq!(seq.events(), skewed_off.sequence(u).events());
        }
    }

    #[test]
    fn user_skew_concentrates_activity_at_the_head() {
        let c = GeneratorConfig::tiny().with_users(40).with_user_skew(0.9);
        let d = generate(&c);
        let lens: Vec<usize> = d.iter().map(|(_, s)| s.len()).collect();
        assert!(
            lens[0] > 2 * lens[39],
            "head user ({}) should dwarf the tail ({})",
            lens[0],
            lens[39]
        );
        // Multipliers are mean-normalised: the total stays in the same
        // ballpark as the unskewed range midpoint times the user count.
        let total: usize = lens.iter().sum();
        let (lo, hi) = c.events_per_user;
        let expected = 40 * (lo + hi) / 2;
        assert!(
            total > expected / 2 && total < expected * 2,
            "total {total} drifted from ~{expected}"
        );
        // Deterministic and strictly rank-monotone in expectation: the
        // same config generates the same lengths again.
        let again: Vec<usize> = generate(&c).iter().map(|(_, s)| s.len()).collect();
        assert_eq!(lens, again);
    }

    #[test]
    fn zero_drift_is_byte_identical_to_the_undrifted_generator() {
        // `with_drift(0.0)` must not perturb a single draw.
        let plain = GeneratorConfig::tiny().generate();
        let drift_off = GeneratorConfig::tiny().with_drift(0.0).generate();
        for (u, seq) in plain.iter() {
            assert_eq!(seq.events(), drift_off.sequence(u).events());
        }
    }

    #[test]
    fn drift_is_deterministic_and_prefix_preserving() {
        let c = GeneratorConfig::tiny().with_drift(0.8).with_drift_at(0.5);
        let a = generate(&c);
        let b = generate(&c);
        let plain = GeneratorConfig::tiny().generate();
        let mut diverged = false;
        for (u, seq) in a.iter() {
            // Same config twice: identical streams.
            assert_eq!(seq.events(), b.sequence(u).events());
            // The pre-changepoint prefix agrees byte-for-byte with the
            // undrifted twin; the suffix is where drift lives.
            let undrifted = plain.sequence(u).events();
            let cp = (seq.len() as f64 * c.drift_at) as usize;
            assert_eq!(&seq.events()[..cp.min(undrifted.len())], &undrifted[..cp]);
            if seq.events()[cp..] != undrifted[cp..] {
                diverged = true;
            }
        }
        assert!(diverged, "drift changed nothing after the changepoint");
    }

    #[test]
    fn drift_shifts_the_consumed_item_distribution() {
        // Post-changepoint the popularity head rotates: the sets of items
        // consumed before and after the changepoint should overlap far
        // less than in an undrifted stream.
        let overlap = |d: &Dataset, at: f64| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for (_, seq) in d.iter() {
                let cp = (seq.len() as f64 * at) as usize;
                let pre: std::collections::HashSet<_> = seq.events()[..cp].iter().collect();
                let post: std::collections::HashSet<_> = seq.events()[cp..].iter().collect();
                num += pre.intersection(&post).count() as f64;
                den += post.len() as f64;
            }
            num / den.max(1.0)
        };
        let plain = GeneratorConfig::tiny().with_seed(11).generate();
        let drifted = GeneratorConfig::tiny()
            .with_seed(11)
            .with_drift(0.9)
            .with_drift_at(0.5)
            .generate();
        let plain_overlap = overlap(&plain, 0.5);
        let drift_overlap = overlap(&drifted, 0.5);
        assert!(
            drift_overlap < 0.6 * plain_overlap,
            "drifted pre/post overlap {drift_overlap:.3} not clearly below \
             undrifted {plain_overlap:.3}"
        );
    }

    #[test]
    fn intrinsic_quality_is_monotone() {
        let n = 100;
        for i in 1..n {
            assert!(intrinsic_quality(i, n) < intrinsic_quality(i - 1, n));
        }
        assert!(intrinsic_quality(0, n) <= 1.0);
        assert!(intrinsic_quality(n - 1, n) > 0.0);
    }

    #[test]
    fn user_seed_spreads() {
        let s: Vec<u64> = (0..100).map(|u| user_seed(42, u)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100);
    }
}
