//! Per-user behavioural profiles.
//!
//! The whole point of TS-PPR's personalised mapping `A_u` is that different
//! users weight recency, quality, and familiarity differently when they
//! reconsume. The generator therefore samples an explicit profile per user;
//! a recommender that learns per-user weights can in principle recover it,
//! while single-signal baselines (Pop, Recency) cannot.

use rand::Rng;

/// One user's generative parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Probability that the next consumption is a repeat from the window
    /// (given the window is non-trivial).
    pub repeat_prob: f64,
    /// Weight on the recency signal `1/gap` when choosing what to repeat.
    pub recency_weight: f64,
    /// Weight on (log-)item-quality when choosing what to repeat.
    pub quality_weight: f64,
    /// Weight on in-window familiarity when choosing what to repeat.
    pub familiarity_weight: f64,
    /// Weight on the item's intrinsic *reconsumability* (how inherently
    /// repeatable the item is — a coffee shop vs. an airport). This is the
    /// causal channel behind the paper's item-reconsumption-ratio feature,
    /// whose removal hurts TS-PPR the most (Fig. 7).
    pub recon_weight: f64,
    /// Bonus added to the repeat score of items in the user's personal
    /// pool — stable personal taste that only *personalized* models (the
    /// static `uᵀv` term of TS-PPR, FPMC's user factors) can capture;
    /// population-level baselines (Pop, DYRC) cannot.
    pub pool_affinity: f64,
    /// Softmax temperature over the combined repeat score; lower is more
    /// deterministic (steeper rank curves).
    pub temperature: f64,
    /// Size of the user's personal item pool for novel consumption.
    pub pool_size: usize,
    /// Probability a novel consumption comes from the global Zipf popularity
    /// rather than the personal pool.
    pub global_novel_prob: f64,
}

/// Ranges from which user profiles are drawn.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDistribution {
    /// Mean repeat probability (per-user value jittered around this).
    pub repeat_prob_mean: f64,
    /// Half-width of the uniform jitter on `repeat_prob`.
    pub repeat_prob_spread: f64,
    /// Upper bound of the uniform draw for each of the three repeat-score
    /// weights (lower bound 0) — larger ⇒ steeper, more learnable signal.
    pub weight_scale: [f64; 3],
    /// Upper bound of the uniform draw for the personal pool-affinity
    /// bonus.
    pub pool_affinity_scale: f64,
    /// Upper bound of the uniform draw for the reconsumability weight.
    pub recon_weight_scale: f64,
    /// Softmax temperature range `[lo, hi]`.
    pub temperature: (f64, f64),
    /// Personal pool size.
    pub pool_size: usize,
    /// Probability of sampling a novel item globally instead of from the
    /// personal pool.
    pub global_novel_prob: f64,
}

impl ProfileDistribution {
    /// Draw one user profile.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> UserProfile {
        let jitter = rng.gen_range(-self.repeat_prob_spread..=self.repeat_prob_spread);
        let repeat_prob = (self.repeat_prob_mean + jitter).clamp(0.02, 0.98);
        let (tlo, thi) = self.temperature;
        UserProfile {
            repeat_prob,
            recency_weight: rng.gen_range(0.0..=self.weight_scale[0]),
            quality_weight: rng.gen_range(0.0..=self.weight_scale[1]),
            familiarity_weight: rng.gen_range(0.0..=self.weight_scale[2]),
            recon_weight: rng.gen_range(0.0..=self.recon_weight_scale),
            pool_affinity: rng.gen_range(0.0..=self.pool_affinity_scale),
            temperature: rng.gen_range(tlo..=thi),
            pool_size: self.pool_size,
            global_novel_prob: self.global_novel_prob,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dist() -> ProfileDistribution {
        ProfileDistribution {
            repeat_prob_mean: 0.7,
            repeat_prob_spread: 0.2,
            weight_scale: [4.0, 2.0, 3.0],
            pool_affinity_scale: 2.0,
            recon_weight_scale: 2.0,
            temperature: (0.5, 1.5),
            pool_size: 30,
            global_novel_prob: 0.4,
        }
    }

    #[test]
    fn sampled_profiles_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = dist();
        for _ in 0..1000 {
            let p = d.sample(&mut rng);
            assert!((0.02..=0.98).contains(&p.repeat_prob));
            assert!((0.5..=0.7 + 0.2 + 1e-9).contains(&p.repeat_prob) || p.repeat_prob < 0.5);
            assert!((0.0..=4.0).contains(&p.recency_weight));
            assert!((0.0..=2.0).contains(&p.quality_weight));
            assert!((0.0..=3.0).contains(&p.familiarity_weight));
            assert!((0.5..=1.5).contains(&p.temperature));
            assert!((0.0..=2.0).contains(&p.pool_affinity));
            assert!((0.0..=2.0).contains(&p.recon_weight));
            assert_eq!(p.pool_size, 30);
        }
    }

    #[test]
    fn profiles_are_heterogeneous() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = dist();
        let a = d.sample(&mut rng);
        let b = d.sample(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = dist();
        let a = d.sample(&mut StdRng::seed_from_u64(9));
        let b = d.sample(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
