//! Property-based tests for the workload generator.

use proptest::prelude::*;
use rrc_datagen::{GeneratorConfig, Zipf};
use rrc_sequence::DatasetStats;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_datasets_are_structurally_valid(seed in 0u64..10_000) {
        let cfg = GeneratorConfig::tiny()
            .with_seed(seed)
            .with_users(5)
            .with_events_per_user(40, 80);
        let d = cfg.generate();
        prop_assert_eq!(d.num_users(), 5);
        prop_assert_eq!(d.num_items(), cfg.num_items);
        for (_, seq) in d.iter() {
            prop_assert!(seq.len() >= 40 && seq.len() <= 80);
            for &item in seq.events() {
                prop_assert!(item.index() < cfg.num_items);
            }
        }
    }

    #[test]
    fn repeat_probability_orders_repeat_fractions(seed in 0u64..300) {
        let mut low = GeneratorConfig::tiny().with_seed(seed).with_users(6);
        low.profiles.repeat_prob_mean = 0.15;
        low.profiles.repeat_prob_spread = 0.05;
        let mut high = low.clone();
        high.profiles.repeat_prob_mean = 0.85;
        let ld = low.generate();
        let hd = high.generate();
        let lf = DatasetStats::compute(&ld, low.window, 1).repeat_fraction();
        let hf = DatasetStats::compute(&hd, high.window, 1).repeat_fraction();
        prop_assert!(hf > lf, "high {hf} <= low {lf}");
    }

    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let sum: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
        prop_assert_eq!(z.pmf(n), 0.0);
    }

    #[test]
    fn zipf_samples_in_support(n in 1usize..50, s in 0.0f64..2.5, seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
